//! Node identifiers and node records for the arena-backed document tree.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node inside a [`Document`](crate::Document).
///
/// Node ids are assigned by **pre-order traversal** of the XML tree, with the
/// root having id `0`, exactly matching the superscript numbering used in
/// Figures 1 and 2 of the paper. Ids are only meaningful relative to the
/// document they were created in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The root node id (`0`).
    pub const ROOT: NodeId = NodeId(0);

    /// Construct a node id from a raw index.
    ///
    /// Mostly useful in tests and when reconstructing ids that round-tripped
    /// through the relational layer.
    pub fn from_raw(raw: u32) -> Self {
        NodeId(raw)
    }

    /// The raw pre-order index of this node.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// The raw index as `usize`, for slice indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The kind of a node.
///
/// The MMQJP engine only needs element structure and leaf string values, so
/// the model is deliberately small: elements carry a tag and attributes, and
/// text is attached to elements rather than modeled as separate child nodes.
/// Attribute values participate in value joins through
/// [`Document::string_value`](crate::Document::string_value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// An element node (the only kind that receives a pre-order id).
    Element,
}

/// A single element node stored in a [`Document`](crate::Document) arena.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    pub(crate) id: NodeId,
    pub(crate) kind: NodeKind,
    pub(crate) tag: String,
    pub(crate) parent: Option<NodeId>,
    pub(crate) children: Vec<NodeId>,
    pub(crate) attributes: Vec<(String, String)>,
    pub(crate) text: Option<String>,
}

impl Node {
    pub(crate) fn new_element(id: NodeId, tag: impl Into<String>, parent: Option<NodeId>) -> Self {
        Node {
            id,
            kind: NodeKind::Element,
            tag: tag.into(),
            parent,
            children: Vec::new(),
            attributes: Vec::new(),
            text: None,
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node kind.
    pub fn kind(&self) -> NodeKind {
        self.kind
    }

    /// The element tag name.
    pub fn tag(&self) -> &str {
        &self.tag
    }

    /// The parent node id, or `None` for the root.
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// Child element ids in document order.
    pub fn children(&self) -> &[NodeId] {
        &self.children
    }

    /// `true` when the node has no element children.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// The text directly contained in this element (concatenated), if any.
    pub fn text(&self) -> Option<&str> {
        self.text.as_deref()
    }

    /// All attributes in document order.
    pub fn attributes(&self) -> &[(String, String)] {
        &self.attributes
    }

    /// Look up an attribute value by name.
    pub fn attribute(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_basics() {
        let id = NodeId::from_raw(5);
        assert_eq!(id.raw(), 5);
        assert_eq!(id.index(), 5);
        assert_eq!(id.to_string(), "n5");
        assert_eq!(NodeId::ROOT.raw(), 0);
        assert!(NodeId::from_raw(1) < NodeId::from_raw(2));
    }

    #[test]
    fn node_accessors() {
        let mut n = Node::new_element(NodeId::from_raw(3), "title", Some(NodeId::ROOT));
        n.text = Some("hello".into());
        n.attributes.push(("lang".into(), "en".into()));

        assert_eq!(n.id().raw(), 3);
        assert_eq!(n.kind(), NodeKind::Element);
        assert_eq!(n.tag(), "title");
        assert_eq!(n.parent(), Some(NodeId::ROOT));
        assert!(n.is_leaf());
        assert_eq!(n.text(), Some("hello"));
        assert_eq!(n.attribute("lang"), Some("en"));
        assert_eq!(n.attribute("missing"), None);
        assert_eq!(n.attributes().len(), 1);
    }

    #[test]
    fn node_with_children_not_leaf() {
        let mut n = Node::new_element(NodeId::ROOT, "root", None);
        n.children.push(NodeId::from_raw(1));
        assert!(!n.is_leaf());
        assert_eq!(n.children(), &[NodeId::from_raw(1)]);
    }
}
