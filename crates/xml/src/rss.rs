//! RSS/Atom feed-item helpers.
//!
//! The paper's Section 6.3 experiment processes a stream of RSS and Atom feed
//! items collected from 418 channels. Each feed item has a simple, flat
//! document schema with five leaf nodes tagged `item_url`, `channel_url`,
//! `title`, `timestamp` and `description`. This module provides a typed
//! representation of such items and conversion to/from the generic
//! [`Document`] model, so workload generators and examples can construct feed
//! events without repeating boilerplate.

use crate::builder::DocumentBuilder;
use crate::document::{DocId, Document, Timestamp};
use crate::node::NodeId;
use serde::{Deserialize, Serialize};

/// Tag of the root element of a feed item document.
pub const ITEM_TAG: &str = "item";
/// The leaf field tags of a feed item, in document order.
pub const ITEM_FIELDS: [&str; 5] = [
    "item_url",
    "channel_url",
    "title",
    "timestamp",
    "description",
];

/// A single RSS/Atom feed item with the five leaf fields used in the paper's
/// RSS experiment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeedItem {
    /// URL of the individual item (unique per item).
    pub item_url: String,
    /// URL of the channel (blog / news source) the item belongs to.
    pub channel_url: String,
    /// Item title.
    pub title: String,
    /// Publication timestamp, also used as the event timestamp.
    pub timestamp: u64,
    /// Free-text description / summary.
    pub description: String,
}

impl FeedItem {
    /// Convert the feed item into a [`Document`] with the flat five-leaf
    /// schema. The document timestamp is set from the item timestamp.
    pub fn to_document(&self, doc_id: DocId) -> Document {
        let mut b = DocumentBuilder::new(ITEM_TAG);
        b.doc_id(doc_id);
        b.timestamp(Timestamp(self.timestamp));
        b.child_text("item_url", &self.item_url);
        b.child_text("channel_url", &self.channel_url);
        b.child_text("title", &self.title);
        b.child_text("timestamp", self.timestamp.to_string());
        b.child_text("description", &self.description);
        b.finish()
    }

    /// Reconstruct a feed item from a document with the feed-item schema.
    /// Returns `None` if the document does not have the expected shape.
    pub fn from_document(doc: &Document) -> Option<FeedItem> {
        if doc.root().tag() != ITEM_TAG {
            return None;
        }
        let field = |tag: &str| -> Option<String> {
            doc.first_with_tag(tag).map(|id| doc.string_value(id))
        };
        Some(FeedItem {
            item_url: field("item_url")?,
            channel_url: field("channel_url")?,
            title: field("title")?,
            timestamp: field("timestamp")?.parse().ok()?,
            description: field("description")?,
        })
    }
}

/// Build a minimal blog-article document in the shape of the paper's Figure 2
/// (`blog` root with `author`, `channel_url`, `title`, `category`,
/// `description` leaves). Used in examples and tests that replay the paper's
/// running example.
pub fn blog_article(
    author: &str,
    channel_url: &str,
    title: &str,
    category: &str,
    description: &str,
) -> Document {
    let mut b = DocumentBuilder::new("blog");
    b.child_text("author", author);
    b.child_text("channel_url", channel_url);
    b.child_text("title", title);
    b.child_text("category", category);
    b.child_text("description", description);
    b.finish()
}

/// Build a book-announcement document in the shape of the paper's Figure 1
/// (`book` root with `author`*, `title`, `category`*, `publisher`, `isbn`
/// leaves).
pub fn book_announcement(
    authors: &[&str],
    title: &str,
    categories: &[&str],
    publisher: &str,
    isbn: &str,
) -> Document {
    let mut b = DocumentBuilder::new("book");
    for a in authors {
        b.child_text("author", *a);
    }
    b.child_text("title", title);
    for c in categories {
        b.child_text("category", *c);
    }
    b.child_text("publisher", publisher);
    b.child_text("isbn", isbn);
    b.finish()
}

/// Convenience accessor: the string value of the first element with `tag`, or
/// an empty string if absent.
pub fn leaf_value(doc: &Document, tag: &str) -> String {
    doc.first_with_tag(tag)
        .map(|id| doc.string_value(id))
        .unwrap_or_default()
}

/// `true` when a document conforms to the flat feed-item schema (root tag
/// `item`, all children are leaves and drawn from [`ITEM_FIELDS`]).
pub fn is_feed_item(doc: &Document) -> bool {
    if doc.root().tag() != ITEM_TAG {
        return false;
    }
    doc.root().children().iter().all(|&c| {
        let n = doc.node(c);
        n.is_leaf() && ITEM_FIELDS.contains(&n.tag())
    })
}

/// The node id of the leaf holding a given feed-item field, if present.
pub fn field_node(doc: &Document, field: &str) -> Option<NodeId> {
    doc.first_with_tag(field)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_item() -> FeedItem {
        FeedItem {
            item_url: "http://dannyayers.com/2006/07/rss-book".into(),
            channel_url: "http://dannyayers.com/feed".into(),
            title: "Beginning RSS and Atom Programming".into(),
            timestamp: 1234,
            description: "Just heard ...".into(),
        }
    }

    #[test]
    fn feed_item_document_roundtrip() {
        let item = sample_item();
        let doc = item.to_document(DocId(7));
        assert_eq!(doc.id(), DocId(7));
        assert_eq!(doc.timestamp(), Timestamp(1234));
        assert_eq!(doc.len(), 6);
        assert!(is_feed_item(&doc));
        let back = FeedItem::from_document(&doc).unwrap();
        assert_eq!(back, item);
    }

    #[test]
    fn from_document_rejects_wrong_shape() {
        let doc = blog_article("a", "b", "c", "d", "e");
        assert!(FeedItem::from_document(&doc).is_none());
        assert!(!is_feed_item(&doc));
    }

    #[test]
    fn blog_article_shape() {
        let doc = blog_article(
            "Danny Ayers",
            "http://dannyayers.com/topics/books/rss-book",
            "Beginning RSS and Atom Programming",
            "Book Announcement",
            "Just heard ...",
        );
        assert_eq!(doc.root().tag(), "blog");
        assert_eq!(leaf_value(&doc, "author"), "Danny Ayers");
        assert_eq!(leaf_value(&doc, "category"), "Book Announcement");
        assert_eq!(leaf_value(&doc, "missing"), "");
    }

    #[test]
    fn book_announcement_shape() {
        let doc = book_announcement(
            &["Danny Ayers", "Andrew Watt"],
            "Beginning RSS and Atom Programming",
            &["Scripting & Programming", "Web Site Development"],
            "Wrox",
            "0764579169",
        );
        assert_eq!(doc.root().tag(), "book");
        assert_eq!(doc.nodes_with_tag("author").len(), 2);
        assert_eq!(doc.nodes_with_tag("category").len(), 2);
        assert_eq!(leaf_value(&doc, "publisher"), "Wrox");
        // Matches the Figure 1 numbering: node 4 is the first category.
        assert_eq!(doc.node(NodeId::from_raw(4)).tag(), "category");
    }

    #[test]
    fn field_node_lookup() {
        let doc = sample_item().to_document(DocId(1));
        let title = field_node(&doc, "title").unwrap();
        assert_eq!(
            doc.string_value(title),
            "Beginning RSS and Atom Programming"
        );
        assert!(field_node(&doc, "nope").is_none());
    }

    #[test]
    fn is_feed_item_rejects_extra_nested_children() {
        let mut b = DocumentBuilder::new("item");
        b.open("title");
        b.child_text("inner", "x");
        b.close();
        let doc = b.finish();
        assert!(!is_feed_item(&doc));
    }
}
