//! Error types for the XML substrate.

use std::fmt;

/// Convenience result alias used throughout the crate.
pub type XmlResult<T> = Result<T, XmlError>;

/// Errors produced while parsing or manipulating XML documents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// The input ended before the document was complete.
    UnexpectedEof {
        /// What the parser was in the middle of reading.
        context: &'static str,
    },
    /// A character that is not legal at the current position.
    UnexpectedChar {
        /// Byte offset of the offending character.
        offset: usize,
        /// The character found.
        found: char,
        /// Human readable description of what was expected.
        expected: &'static str,
    },
    /// A closing tag did not match the currently open element.
    MismatchedTag {
        /// The tag that was open.
        open: String,
        /// The closing tag encountered.
        close: String,
        /// Byte offset of the closing tag.
        offset: usize,
    },
    /// The document contained no root element.
    EmptyDocument,
    /// More than one root element was found at the top level.
    MultipleRoots {
        /// Byte offset of the second root.
        offset: usize,
    },
    /// An entity reference (`&name;`) that the parser does not understand.
    UnknownEntity {
        /// The entity name, without `&` and `;`.
        name: String,
        /// Byte offset of the entity.
        offset: usize,
    },
    /// A node id that does not exist in the target document.
    InvalidNodeId {
        /// The offending node id (raw index).
        id: u32,
        /// Number of nodes in the document.
        len: usize,
    },
    /// Attempt to add a child to a node of a kind that cannot have children.
    NotAnElement {
        /// The offending node id (raw index).
        id: u32,
    },
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::UnexpectedEof { context } => {
                write!(f, "unexpected end of input while reading {context}")
            }
            XmlError::UnexpectedChar {
                offset,
                found,
                expected,
            } => write!(
                f,
                "unexpected character {found:?} at byte {offset}: expected {expected}"
            ),
            XmlError::MismatchedTag {
                open,
                close,
                offset,
            } => write!(
                f,
                "mismatched closing tag </{close}> at byte {offset}: currently open element is <{open}>"
            ),
            XmlError::EmptyDocument => write!(f, "document contains no root element"),
            XmlError::MultipleRoots { offset } => {
                write!(f, "second root element at byte {offset}")
            }
            XmlError::UnknownEntity { name, offset } => {
                write!(f, "unknown entity reference &{name}; at byte {offset}")
            }
            XmlError::InvalidNodeId { id, len } => {
                write!(f, "node id {id} out of range for document with {len} nodes")
            }
            XmlError::NotAnElement { id } => {
                write!(f, "node {id} is not an element and cannot have children")
            }
        }
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_unexpected_eof() {
        let e = XmlError::UnexpectedEof { context: "a tag" };
        assert!(e.to_string().contains("a tag"));
    }

    #[test]
    fn display_unexpected_char() {
        let e = XmlError::UnexpectedChar {
            offset: 7,
            found: '<',
            expected: "attribute name",
        };
        let s = e.to_string();
        assert!(s.contains('7'));
        assert!(s.contains("attribute name"));
    }

    #[test]
    fn display_mismatched_tag() {
        let e = XmlError::MismatchedTag {
            open: "book".into(),
            close: "blog".into(),
            offset: 42,
        };
        let s = e.to_string();
        assert!(s.contains("book"));
        assert!(s.contains("blog"));
    }

    #[test]
    fn display_other_variants() {
        assert!(!XmlError::EmptyDocument.to_string().is_empty());
        assert!(XmlError::MultipleRoots { offset: 3 }
            .to_string()
            .contains('3'));
        assert!(XmlError::UnknownEntity {
            name: "bogus".into(),
            offset: 1
        }
        .to_string()
        .contains("bogus"));
        assert!(XmlError::InvalidNodeId { id: 9, len: 4 }
            .to_string()
            .contains('9'));
        assert!(XmlError::NotAnElement { id: 2 }.to_string().contains('2'));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&XmlError::EmptyDocument);
    }
}
