//! Serialization of documents back to XML text.

use crate::document::Document;
use crate::node::NodeId;
use std::fmt::Write as _;

/// Serialize a whole document to compact (single-line) XML.
pub fn serialize(doc: &Document) -> String {
    let mut out = String::new();
    write_node(doc, NodeId::ROOT, &mut out, None, 0);
    out
}

/// Serialize a whole document with two-space indentation, one element per
/// line. Text content keeps elements on a single line.
pub fn serialize_pretty(doc: &Document) -> String {
    let mut out = String::new();
    write_node(doc, NodeId::ROOT, &mut out, Some(2), 0);
    out
}

/// Serialize only the subtree rooted at `root` (compact form). Used when
/// constructing output documents for matched queries, which embed subtrees of
/// the joined input documents.
pub fn serialize_subtree(doc: &Document, root: NodeId) -> String {
    let mut out = String::new();
    write_node(doc, root, &mut out, None, 0);
    out
}

fn write_node(doc: &Document, id: NodeId, out: &mut String, indent: Option<usize>, depth: usize) {
    let node = doc.node(id);
    if let Some(width) = indent {
        if depth > 0 {
            out.push('\n');
        }
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
    out.push('<');
    out.push_str(node.tag());
    for (name, value) in node.attributes() {
        let _ = write!(out, " {}=\"{}\"", name, escape_attr(value));
    }
    let has_text = node.text().map(|t| !t.is_empty()).unwrap_or(false);
    if node.children().is_empty() && !has_text {
        out.push_str("/>");
        return;
    }
    out.push('>');
    if let Some(t) = node.text() {
        out.push_str(&escape_text(t));
    }
    for &c in node.children() {
        write_node(doc, c, out, indent, depth + 1);
    }
    if indent.is_some() && !node.children().is_empty() {
        out.push('\n');
        for _ in 0..depth * indent.unwrap_or(0) {
            out.push(' ');
        }
    }
    out.push_str("</");
    out.push_str(node.tag());
    out.push('>');
}

fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DocumentBuilder;
    use crate::parser::parse_document;

    fn sample() -> Document {
        let mut b = DocumentBuilder::new("book");
        b.attribute("isbn", "0764579169");
        b.child_text("title", "RSS & Atom");
        b.open("authors");
        b.child_text("author", "Danny Ayers");
        b.close();
        b.finish()
    }

    #[test]
    fn compact_roundtrip() {
        let d = sample();
        let xml = serialize(&d);
        assert!(xml.starts_with("<book isbn=\"0764579169\">"));
        assert!(xml.contains("<title>RSS &amp; Atom</title>"));
        let d2 = parse_document(&xml).unwrap();
        assert_eq!(d2.len(), d.len());
        assert_eq!(
            d2.string_value(crate::NodeId::from_raw(1)),
            d.string_value(crate::NodeId::from_raw(1))
        );
    }

    #[test]
    fn pretty_has_indentation() {
        let d = sample();
        let xml = serialize_pretty(&d);
        assert!(xml.contains("\n  <title>"));
        assert!(xml.contains("\n  <authors>"));
        // pretty output must still be parseable
        parse_document(&xml).unwrap();
    }

    #[test]
    fn subtree_serialization() {
        let d = sample();
        let authors = d.first_with_tag("authors").unwrap();
        let xml = serialize_subtree(&d, authors);
        assert_eq!(xml, "<authors><author>Danny Ayers</author></authors>");
    }

    #[test]
    fn empty_elements_self_close() {
        let d = parse_document("<a><b/><c></c></a>").unwrap();
        let xml = serialize(&d);
        assert_eq!(xml, "<a><b/><c/></a>");
    }

    #[test]
    fn attribute_escaping() {
        let mut b = DocumentBuilder::new("n");
        b.attribute("q", "say \"hi\" & <bye>");
        let xml = serialize(&b.finish());
        assert!(xml.contains("&quot;hi&quot;"));
        assert!(xml.contains("&amp;"));
        assert!(xml.contains("&lt;bye&gt;"));
        parse_document(&xml).unwrap();
    }

    #[test]
    fn roundtrip_parse_serialize_parse() {
        let src = "<feed><item><title>a &lt; b</title><id>1</id></item><item><title>c</title><id>2</id></item></feed>";
        let d1 = parse_document(src).unwrap();
        let ser = serialize(&d1);
        let d2 = parse_document(&ser).unwrap();
        assert_eq!(d1.len(), d2.len());
        for id in d1.node_ids() {
            assert_eq!(d1.node(id).tag(), d2.node(id).tag());
            assert_eq!(d1.string_value(id), d2.string_value(id));
        }
    }
}
