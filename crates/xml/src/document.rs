//! The arena-backed XML document with pre-order node ids.

use crate::error::{XmlError, XmlResult};
use crate::node::{Node, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a document within a stream.
///
/// Documents are identified by a monotonically increasing `u64` assigned by
/// the publisher or by the engine at ingestion time (the paper's `docid`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct DocId(pub u64);

impl DocId {
    /// The raw numeric id.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for DocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// Event timestamp, in abstract time units.
///
/// The paper assumes timestamps are assigned either by publishers or by the
/// pub/sub system itself; the window constraint `T` of `FOLLOWED BY` / `JOIN`
/// is expressed in the same units.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The raw numeric timestamp.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Saturating difference `self - other`.
    pub fn delta(self, other: Timestamp) -> u64 {
        self.0.saturating_sub(other.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// An XML document (event) flowing through the publish/subscribe system.
///
/// Nodes live in a flat arena (`Vec<Node>`), indexed by their pre-order id.
/// This makes witnesses produced by the XPath Evaluator cheap to encode (a
/// `NodeId` is a `u32`) and ancestor checks cheap to evaluate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Document {
    pub(crate) id: DocId,
    pub(crate) timestamp: Timestamp,
    pub(crate) nodes: Vec<Node>,
}

impl Document {
    /// Create a document with a single root element.
    pub fn new(root_tag: impl Into<String>) -> Self {
        Document {
            id: DocId::default(),
            timestamp: Timestamp::default(),
            nodes: vec![Node::new_element(NodeId::ROOT, root_tag, None)],
        }
    }

    /// The document id.
    pub fn id(&self) -> DocId {
        self.id
    }

    /// Set the document id, returning `self` for chaining.
    pub fn with_id(mut self, id: DocId) -> Self {
        self.id = id;
        self
    }

    /// Set the document id in place.
    pub fn set_id(&mut self, id: DocId) {
        self.id = id;
    }

    /// The event timestamp.
    pub fn timestamp(&self) -> Timestamp {
        self.timestamp
    }

    /// Set the event timestamp, returning `self` for chaining.
    pub fn with_timestamp(mut self, ts: Timestamp) -> Self {
        self.timestamp = ts;
        self
    }

    /// Set the event timestamp in place.
    pub fn set_timestamp(&mut self, ts: Timestamp) {
        self.timestamp = ts;
    }

    /// Number of element nodes in the document.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the document contains only the root (never truly empty).
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// The root node.
    pub fn root(&self) -> &Node {
        &self.nodes[0]
    }

    /// Access a node by id.
    ///
    /// # Panics
    /// Panics if the id does not belong to this document.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Access a node by id, returning an error for out-of-range ids.
    pub fn try_node(&self, id: NodeId) -> XmlResult<&Node> {
        self.nodes.get(id.index()).ok_or(XmlError::InvalidNodeId {
            id: id.raw(),
            len: self.nodes.len(),
        })
    }

    /// Iterate over all nodes in pre-order (i.e. ascending id).
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// Iterate over all node ids in pre-order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId::from_raw)
    }

    /// The *string value* of a node as defined by XPath semantics: the
    /// concatenation of all text content in the subtree rooted at the node.
    ///
    /// Value joins in XSCL compare these string values (Section 2 of the
    /// paper). For leaf elements this is simply the element text.
    pub fn string_value(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.collect_text(id, &mut out);
        out
    }

    fn collect_text(&self, id: NodeId, out: &mut String) {
        let node = self.node(id);
        if let Some(t) = node.text() {
            out.push_str(t);
        }
        for &c in node.children() {
            self.collect_text(c, out);
        }
    }

    /// `true` if `ancestor` is a proper ancestor of `descendant`.
    pub fn is_ancestor(&self, ancestor: NodeId, descendant: NodeId) -> bool {
        if ancestor == descendant {
            return false;
        }
        let mut cur = self.node(descendant).parent();
        while let Some(p) = cur {
            if p == ancestor {
                return true;
            }
            cur = self.node(p).parent();
        }
        false
    }

    /// `true` if `ancestor` equals `descendant` or is a proper ancestor.
    pub fn is_ancestor_or_self(&self, ancestor: NodeId, descendant: NodeId) -> bool {
        ancestor == descendant || self.is_ancestor(ancestor, descendant)
    }

    /// The depth of a node (root has depth 0).
    pub fn depth(&self, id: NodeId) -> usize {
        let mut depth = 0;
        let mut cur = self.node(id).parent();
        while let Some(p) = cur {
            depth += 1;
            cur = self.node(p).parent();
        }
        depth
    }

    /// Ids of all descendants of `id` (excluding `id` itself), in pre-order.
    pub fn descendants(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack: Vec<NodeId> = self.node(id).children().iter().rev().copied().collect();
        while let Some(n) = stack.pop() {
            out.push(n);
            for &c in self.node(n).children().iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Ids of all descendants-or-self of `id`, in pre-order.
    pub fn descendants_or_self(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = vec![id];
        out.extend(self.descendants(id));
        out
    }

    /// The least common ancestor of two nodes.
    pub fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        let mut a_chain = Vec::new();
        let mut cur = Some(a);
        while let Some(n) = cur {
            a_chain.push(n);
            cur = self.node(n).parent();
        }
        let mut cur = Some(b);
        while let Some(n) = cur {
            if a_chain.contains(&n) {
                return n;
            }
            cur = self.node(n).parent();
        }
        NodeId::ROOT
    }

    /// All leaf node ids (elements with no element children), in pre-order.
    pub fn leaves(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.is_leaf())
            .map(|n| n.id())
            .collect()
    }

    /// All node ids whose tag equals `tag`, in pre-order.
    pub fn nodes_with_tag(&self, tag: &str) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.tag() == tag)
            .map(|n| n.id())
            .collect()
    }

    /// Find the first node (in pre-order) matching tag, if any.
    pub fn first_with_tag(&self, tag: &str) -> Option<NodeId> {
        self.nodes.iter().find(|n| n.tag() == tag).map(|n| n.id())
    }

    /// Append a child element to `parent` and return the new child id.
    ///
    /// Children must be appended in document order: because ids are pre-order
    /// indices, a child may only be added to a node that is currently the
    /// *last* node on the rightmost path of the tree. The [`DocumentBuilder`]
    /// upholds this automatically; direct users get an error otherwise.
    ///
    /// [`DocumentBuilder`]: crate::DocumentBuilder
    pub fn append_child(&mut self, parent: NodeId, tag: impl Into<String>) -> XmlResult<NodeId> {
        if parent.index() >= self.nodes.len() {
            return Err(XmlError::InvalidNodeId {
                id: parent.raw(),
                len: self.nodes.len(),
            });
        }
        // Pre-order constraint: the parent must be an ancestor-or-self of the
        // most recently added node, so that the new node's id is the next
        // pre-order index.
        let last = NodeId::from_raw(self.nodes.len() as u32 - 1);
        if !self.is_ancestor_or_self(parent, last) {
            return Err(XmlError::NotAnElement { id: parent.raw() });
        }
        let id = NodeId::from_raw(self.nodes.len() as u32);
        self.nodes.push(Node::new_element(id, tag, Some(parent)));
        self.nodes[parent.index()].children.push(id);
        Ok(id)
    }

    /// Set the text content of a node.
    pub fn set_text(&mut self, id: NodeId, text: impl Into<String>) {
        self.nodes[id.index()].text = Some(text.into());
    }

    /// Append text content to a node (used by the parser for mixed content).
    pub fn push_text(&mut self, id: NodeId, text: &str) {
        match &mut self.nodes[id.index()].text {
            Some(existing) => existing.push_str(text),
            slot @ None => *slot = Some(text.to_owned()),
        }
    }

    /// Add an attribute to a node.
    pub fn set_attribute(&mut self, id: NodeId, name: impl Into<String>, value: impl Into<String>) {
        self.nodes[id.index()]
            .attributes
            .push((name.into(), value.into()));
    }

    /// Validate internal structural invariants (parent/child symmetry and
    /// pre-order id assignment). Used by tests and debug assertions.
    pub fn check_invariants(&self) -> XmlResult<()> {
        for (i, node) in self.nodes.iter().enumerate() {
            if node.id().index() != i {
                return Err(XmlError::InvalidNodeId {
                    id: node.id().raw(),
                    len: self.nodes.len(),
                });
            }
            for &c in node.children() {
                let child = self.try_node(c)?;
                if child.parent() != Some(node.id()) {
                    return Err(XmlError::InvalidNodeId {
                        id: c.raw(),
                        len: self.nodes.len(),
                    });
                }
                if c.raw() <= node.id().raw() {
                    return Err(XmlError::InvalidNodeId {
                        id: c.raw(),
                        len: self.nodes.len(),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_doc() -> Document {
        // <book><author>..</author><author>..</author><title>..</title>
        //       <category>..</category><category>..</category>
        //       <publisher>Wrox</publisher><isbn>..</isbn></book>
        let mut d = Document::new("book");
        let a1 = d.append_child(NodeId::ROOT, "author").unwrap();
        d.set_text(a1, "Danny Ayers");
        let a2 = d.append_child(NodeId::ROOT, "author").unwrap();
        d.set_text(a2, "Andrew Watt");
        let t = d.append_child(NodeId::ROOT, "title").unwrap();
        d.set_text(t, "Beginning RSS and Atom Programming");
        let c1 = d.append_child(NodeId::ROOT, "category").unwrap();
        d.set_text(c1, "Scripting & Programming");
        let c2 = d.append_child(NodeId::ROOT, "category").unwrap();
        d.set_text(c2, "Web Site Development");
        let p = d.append_child(NodeId::ROOT, "publisher").unwrap();
        d.set_text(p, "Wrox");
        let i = d.append_child(NodeId::ROOT, "isbn").unwrap();
        d.set_text(i, "0764579169");
        d
    }

    #[test]
    fn preorder_ids_match_figure1() {
        let d = figure1_doc();
        assert_eq!(d.len(), 8);
        assert_eq!(d.node(NodeId::from_raw(0)).tag(), "book");
        assert_eq!(d.node(NodeId::from_raw(1)).tag(), "author");
        assert_eq!(d.node(NodeId::from_raw(2)).tag(), "author");
        assert_eq!(d.node(NodeId::from_raw(3)).tag(), "title");
        assert_eq!(d.node(NodeId::from_raw(4)).tag(), "category");
        assert_eq!(d.node(NodeId::from_raw(7)).tag(), "isbn");
        d.check_invariants().unwrap();
    }

    #[test]
    fn string_value_of_leaf_and_subtree() {
        let d = figure1_doc();
        assert_eq!(d.string_value(NodeId::from_raw(1)), "Danny Ayers");
        // string value of the root concatenates all text in document order
        let root_sv = d.string_value(NodeId::ROOT);
        assert!(root_sv.starts_with("Danny AyersAndrew Watt"));
        assert!(root_sv.ends_with("0764579169"));
    }

    #[test]
    fn ancestor_relationships() {
        let d = figure1_doc();
        assert!(d.is_ancestor(NodeId::ROOT, NodeId::from_raw(3)));
        assert!(!d.is_ancestor(NodeId::from_raw(3), NodeId::ROOT));
        assert!(!d.is_ancestor(NodeId::from_raw(1), NodeId::from_raw(1)));
        assert!(d.is_ancestor_or_self(NodeId::from_raw(1), NodeId::from_raw(1)));
        assert_eq!(d.depth(NodeId::ROOT), 0);
        assert_eq!(d.depth(NodeId::from_raw(5)), 1);
    }

    #[test]
    fn descendants_and_leaves() {
        let d = figure1_doc();
        let desc = d.descendants(NodeId::ROOT);
        assert_eq!(desc.len(), 7);
        assert_eq!(desc[0], NodeId::from_raw(1));
        let dos = d.descendants_or_self(NodeId::ROOT);
        assert_eq!(dos.len(), 8);
        assert_eq!(dos[0], NodeId::ROOT);
        assert_eq!(d.leaves().len(), 7);
    }

    #[test]
    fn lca_flat_document() {
        let d = figure1_doc();
        assert_eq!(
            d.lca(NodeId::from_raw(1), NodeId::from_raw(3)),
            NodeId::ROOT
        );
        assert_eq!(
            d.lca(NodeId::from_raw(2), NodeId::from_raw(2)),
            NodeId::from_raw(2)
        );
        assert_eq!(d.lca(NodeId::ROOT, NodeId::from_raw(4)), NodeId::ROOT);
    }

    #[test]
    fn lca_nested_document() {
        let mut d = Document::new("r");
        let a = d.append_child(NodeId::ROOT, "a").unwrap();
        let b = d.append_child(a, "b").unwrap();
        let c = d.append_child(a, "c").unwrap();
        let e = d.append_child(NodeId::ROOT, "e").unwrap();
        assert_eq!(d.lca(b, c), a);
        assert_eq!(d.lca(b, e), NodeId::ROOT);
        assert_eq!(d.lca(a, b), a);
    }

    #[test]
    fn nodes_with_tag_lookup() {
        let d = figure1_doc();
        assert_eq!(d.nodes_with_tag("author").len(), 2);
        assert_eq!(d.nodes_with_tag("isbn").len(), 1);
        assert!(d.nodes_with_tag("missing").is_empty());
        assert_eq!(d.first_with_tag("title"), Some(NodeId::from_raw(3)));
        assert_eq!(d.first_with_tag("missing"), None);
    }

    #[test]
    fn append_child_rejects_out_of_order() {
        let mut d = Document::new("r");
        let a = d.append_child(NodeId::ROOT, "a").unwrap();
        let _b = d.append_child(NodeId::ROOT, "b").unwrap();
        // `a` is no longer on the rightmost path; appending to it would break
        // the pre-order id invariant.
        assert!(d.append_child(a, "c").is_err());
    }

    #[test]
    fn append_child_rejects_bad_parent() {
        let mut d = Document::new("r");
        assert!(d.append_child(NodeId::from_raw(10), "x").is_err());
    }

    #[test]
    fn id_and_timestamp_builders() {
        let d = Document::new("r")
            .with_id(DocId(7))
            .with_timestamp(Timestamp(99));
        assert_eq!(d.id().raw(), 7);
        assert_eq!(d.timestamp().raw(), 99);
        assert_eq!(d.id().to_string(), "d7");
        assert_eq!(d.timestamp().to_string(), "t99");
    }

    #[test]
    fn timestamp_delta_saturates() {
        assert_eq!(Timestamp(10).delta(Timestamp(3)), 7);
        assert_eq!(Timestamp(3).delta(Timestamp(10)), 0);
    }

    #[test]
    fn push_text_concatenates() {
        let mut d = Document::new("r");
        d.push_text(NodeId::ROOT, "foo");
        d.push_text(NodeId::ROOT, "bar");
        assert_eq!(d.string_value(NodeId::ROOT), "foobar");
    }

    #[test]
    fn attributes_roundtrip() {
        let mut d = Document::new("r");
        d.set_attribute(NodeId::ROOT, "href", "http://example.org");
        assert_eq!(d.root().attribute("href"), Some("http://example.org"));
    }

    #[test]
    fn try_node_out_of_range() {
        let d = Document::new("r");
        assert!(d.try_node(NodeId::from_raw(5)).is_err());
        assert!(d.try_node(NodeId::ROOT).is_ok());
    }

    #[test]
    fn is_empty_only_root() {
        let mut d = Document::new("r");
        assert!(d.is_empty());
        d.append_child(NodeId::ROOT, "a").unwrap();
        assert!(!d.is_empty());
    }
}
