//! Streaming (pull) XML parsing.
//!
//! [`PullParser`] scans the input bytes once and emits
//! [`StartElement`](XmlEvent::StartElement) / [`Text`](XmlEvent::Text) /
//! [`EndElement`](XmlEvent::EndElement) events without building a tree. It
//! accepts exactly the XML subset of [`parse_document`](crate::parse_document)
//! — same prolog/comment/PI/DOCTYPE skipping, same entity and CDATA handling,
//! same errors — so the DOM parser stays the executable specification and the
//! two are checked against each other differentially.
//!
//! Consumers that do need a tree can use [`parse_document_streaming`], which
//! folds the event stream back into a [`Document`]; it is the equivalence
//! bridge used by tests and by `retain_documents` code paths.

use crate::document::Document;
use crate::error::{XmlError, XmlResult};
use crate::node::NodeId;
use crate::parser::Parser;

/// One event of a streaming parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent {
    /// An element opened. Attribute values are entity-decoded, in document
    /// order. A self-closing element emits `StartElement` immediately
    /// followed by `EndElement`.
    StartElement {
        /// The element tag (namespace prefixes kept verbatim).
        tag: String,
        /// The attributes, in document order.
        attributes: Vec<(String, String)>,
    },
    /// A text run (entity-decoded) or CDATA section (raw). Whitespace-only
    /// text runs between elements are suppressed, exactly as the DOM parser
    /// suppresses them; CDATA content is forwarded verbatim.
    Text(String),
    /// An element closed.
    EndElement {
        /// The tag of the element being closed.
        tag: String,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Prolog not yet consumed.
    Init,
    /// Inside the document (or just after the root closed, with an empty
    /// open-element stack: the next call checks the epilogue).
    Content,
    /// Epilogue verified; the stream is exhausted.
    Done,
}

/// A byte-level pull parser over a complete XML document.
///
/// Call [`next_event`](PullParser::next_event) until it returns `Ok(None)`.
/// Errors are fatal: the parser stays in its error position and repeated
/// calls keep failing.
#[derive(Debug)]
pub struct PullParser<'a> {
    parser: Parser<'a>,
    state: State,
    /// Stack of currently open element tags.
    open: Vec<String>,
    /// End event owed for a self-closing element.
    pending_end: Option<String>,
}

impl<'a> PullParser<'a> {
    /// Create a pull parser over `input`.
    pub fn new(input: &'a str) -> Self {
        PullParser {
            parser: Parser::new(input),
            state: State::Init,
            open: Vec::new(),
            pending_end: None,
        }
    }

    /// Current element nesting depth (0 outside the root element).
    pub fn depth(&self) -> usize {
        self.open.len() + usize::from(self.pending_end.is_some())
    }

    /// The next event, `Ok(None)` at a well-formed end of input.
    pub fn next_event(&mut self) -> XmlResult<Option<XmlEvent>> {
        if let Some(tag) = self.pending_end.take() {
            return Ok(Some(XmlEvent::EndElement { tag }));
        }
        match self.state {
            State::Init => self.root_start().map(Some),
            State::Content if self.open.is_empty() => {
                // The root element has closed: only misc content may follow.
                self.parser.skip_misc();
                if !self.parser.at_eof() {
                    return Err(XmlError::MultipleRoots {
                        offset: self.parser.pos,
                    });
                }
                self.state = State::Done;
                Ok(None)
            }
            State::Content => self.content_event().map(Some),
            State::Done => Ok(None),
        }
    }

    /// Consume the prolog and the root start tag (mirrors the DOM parser's
    /// `skip_prolog` / `skip_misc` / `parse_root` preamble).
    fn root_start(&mut self) -> XmlResult<XmlEvent> {
        self.parser.skip_prolog()?;
        self.parser.skip_misc();
        self.parser.skip_whitespace();
        if self.parser.at_eof() {
            return Err(XmlError::EmptyDocument);
        }
        if self.parser.peek() != Some(b'<') {
            return Err(XmlError::UnexpectedChar {
                offset: self.parser.pos,
                found: self.parser.input[self.parser.pos..]
                    .chars()
                    .next()
                    .unwrap_or('\0'),
                expected: "start of root element",
            });
        }
        self.parser.expect_literal("<")?;
        self.state = State::Content;
        self.start_tag_body()
    }

    /// Parse a start tag after its `<`, pushing the element (or recording a
    /// pending end for a self-closing one).
    fn start_tag_body(&mut self) -> XmlResult<XmlEvent> {
        let tag = self.parser.parse_name()?;
        let attributes = self.parser.parse_attribute_list()?;
        self.parser.skip_whitespace();
        if self.parser.starts_with("/>") {
            self.parser.pos += 2;
            self.pending_end = Some(tag.clone());
        } else {
            self.parser.expect_literal(">")?;
            self.open.push(tag.clone());
        }
        Ok(XmlEvent::StartElement { tag, attributes })
    }

    /// Produce the next event inside element content (mirrors the DOM
    /// parser's `parse_content` loop, yielding instead of building).
    fn content_event(&mut self) -> XmlResult<XmlEvent> {
        loop {
            if self.parser.at_eof() {
                return Err(XmlError::UnexpectedEof {
                    context: "element content",
                });
            }
            if self.parser.starts_with("</") {
                self.parser.pos += 2;
                let close = self.parser.parse_name()?;
                self.parser.skip_whitespace();
                self.parser.expect_literal(">")?;
                let matched = self.open.last().is_some_and(|open| *open == close);
                if !matched {
                    return Err(XmlError::MismatchedTag {
                        open: self.open.last().cloned().unwrap_or_default(),
                        close,
                        offset: self.parser.pos,
                    });
                }
                self.open.pop();
                return Ok(XmlEvent::EndElement { tag: close });
            } else if self.parser.starts_with("<!--") {
                self.parser.skip_comment()?;
            } else if self.parser.starts_with("<![CDATA[") {
                let start = self.parser.pos + 9;
                match self.parser.input[start..].find("]]>") {
                    Some(rel) => {
                        let text = &self.parser.input[start..start + rel];
                        self.parser.pos = start + rel + 3;
                        if !text.is_empty() {
                            return Ok(XmlEvent::Text(text.to_owned()));
                        }
                    }
                    None => {
                        return Err(XmlError::UnexpectedEof {
                            context: "CDATA section",
                        })
                    }
                }
            } else if self.parser.starts_with("<?") {
                match self.parser.input[self.parser.pos..].find("?>") {
                    Some(rel) => self.parser.pos += rel + 2,
                    None => {
                        return Err(XmlError::UnexpectedEof {
                            context: "processing instruction",
                        })
                    }
                }
            } else if self.parser.peek() == Some(b'<') {
                self.parser.pos += 1;
                return self.start_tag_body();
            } else {
                let start = self.parser.pos;
                while let Some(b) = self.parser.peek() {
                    if b == b'<' {
                        break;
                    }
                    self.parser.pos += 1;
                }
                let raw = &self.parser.input[start..self.parser.pos];
                let text = crate::parser::decode_entities(raw, start)?;
                // Whitespace-only runs between elements are formatting, not
                // data — same rule as the DOM parser.
                if !text.trim().is_empty() {
                    return Ok(XmlEvent::Text(text));
                }
            }
        }
    }
}

/// Parse a complete XML document through the streaming event path, folding
/// the events back into a [`Document`]. Accepts exactly the inputs of
/// [`parse_document`](crate::parse_document) and produces an identical tree.
pub fn parse_document_streaming(input: &str) -> XmlResult<Document> {
    let mut p = PullParser::new(input);
    let mut doc: Option<Document> = None;
    let mut stack: Vec<NodeId> = Vec::new();
    while let Some(ev) = p.next_event()? {
        match ev {
            XmlEvent::StartElement { tag, attributes } => match doc.as_mut() {
                None => {
                    let mut d = Document::new(tag);
                    for (name, value) in attributes {
                        d.set_attribute(NodeId::ROOT, name, value);
                    }
                    stack.push(NodeId::ROOT);
                    doc = Some(d);
                }
                Some(d) => {
                    let Some(&parent) = stack.last() else {
                        // Unreachable: the pull parser rejects content after
                        // the root closes before emitting another start.
                        return Err(XmlError::MultipleRoots { offset: 0 });
                    };
                    let child = d.append_child(parent, tag)?;
                    for (name, value) in attributes {
                        d.set_attribute(child, name, value);
                    }
                    stack.push(child);
                }
            },
            XmlEvent::Text(text) => {
                if let (Some(d), Some(&node)) = (doc.as_mut(), stack.last()) {
                    d.push_text(node, &text);
                }
            }
            XmlEvent::EndElement { .. } => {
                stack.pop();
            }
        }
    }
    doc.ok_or(XmlError::EmptyDocument)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    fn events(input: &str) -> Vec<XmlEvent> {
        let mut p = PullParser::new(input);
        let mut out = Vec::new();
        while let Some(ev) = p.next_event().unwrap() {
            out.push(ev);
        }
        out
    }

    fn start(tag: &str) -> XmlEvent {
        XmlEvent::StartElement {
            tag: tag.into(),
            attributes: Vec::new(),
        }
    }

    fn end(tag: &str) -> XmlEvent {
        XmlEvent::EndElement { tag: tag.into() }
    }

    #[test]
    fn simple_event_stream() {
        let evs = events("<a><b>x</b></a>");
        assert_eq!(
            evs,
            vec![
                start("a"),
                start("b"),
                XmlEvent::Text("x".into()),
                end("b"),
                end("a"),
            ]
        );
    }

    #[test]
    fn self_closing_emits_start_and_end() {
        let evs = events("<a><b/></a>");
        assert_eq!(evs, vec![start("a"), start("b"), end("b"), end("a")]);
    }

    #[test]
    fn self_closing_root() {
        let evs = events("<only/>");
        assert_eq!(evs, vec![start("only"), end("only")]);
    }

    #[test]
    fn attributes_are_decoded_in_order() {
        let evs = events(r#"<a x="1&amp;2" y='b'/>"#);
        assert_eq!(
            evs[0],
            XmlEvent::StartElement {
                tag: "a".into(),
                attributes: vec![("x".into(), "1&2".into()), ("y".into(), "b".into())],
            }
        );
    }

    #[test]
    fn cdata_is_raw_and_whitespace_text_suppressed() {
        let evs = events("<a>\n  <![CDATA[ <raw>&amp; ]]>\n</a>");
        assert_eq!(
            evs,
            vec![start("a"), XmlEvent::Text(" <raw>&amp; ".into()), end("a")]
        );
    }

    #[test]
    fn comments_pis_and_prolog_are_skipped() {
        let evs = events("<?xml version=\"1.0\"?><!-- c --><a><?pi data?><!-- d -->t</a>");
        assert_eq!(evs, vec![start("a"), XmlEvent::Text("t".into()), end("a")]);
    }

    #[test]
    fn depth_tracks_nesting() {
        let mut p = PullParser::new("<a><b/></a>");
        assert_eq!(p.depth(), 0);
        p.next_event().unwrap(); // <a>
        assert_eq!(p.depth(), 1);
        p.next_event().unwrap(); // <b/> start (end pending)
        assert_eq!(p.depth(), 2);
        p.next_event().unwrap(); // </b>
        assert_eq!(p.depth(), 1);
        p.next_event().unwrap(); // </a>
        assert_eq!(p.depth(), 0);
    }

    #[test]
    fn errors_match_dom_parser_kinds() {
        for src in [
            "<a><b></a></b>",
            "<a><b>",
            "<a/><b/>",
            "   ",
            "<a>&bogus;</a>",
            "hello <a/>",
            "<a><!-- unterminated</a>",
            "<a><![CDATA[ unterminated</a>",
        ] {
            let dom = parse_document(src).unwrap_err();
            let mut p = PullParser::new(src);
            let stream = loop {
                match p.next_event() {
                    Ok(Some(_)) => {}
                    Ok(None) => panic!("stream accepted input the DOM parser rejects: {src}"),
                    Err(e) => break e,
                }
            };
            assert_eq!(
                std::mem::discriminant(&dom),
                std::mem::discriminant(&stream),
                "error kind diverged on {src:?}: dom={dom:?} stream={stream:?}"
            );
        }
    }

    #[test]
    fn streaming_document_equals_dom_document() {
        for src in [
            "<book><title>Rust</title><author>Someone</author></book>",
            r#"<?xml version="1.0"?><item><title>Hello &amp; goodbye</title><link href="http://e/a?b=1&amp;c=2"/></item>"#,
            "<a><b><c>x</c></b><d>y</d></a>",
            "<empty/>",
            r#"<n a="1" b='two' c="with 'mixed'"/>"#,
            "<x><![CDATA[<not><parsed>&amp;]]></x>",
            "<x>&#65;&#x42;</x>",
            "<!DOCTYPE html><x>ok</x>",
            "<p>one <b>bold</b> two</p>",
            "<a>\n  <b>x</b>\n</a>",
        ] {
            let dom = parse_document(src).unwrap();
            let streamed = parse_document_streaming(src).unwrap();
            assert_eq!(dom, streamed, "trees diverged on {src:?}");
        }
    }

    #[test]
    fn exhausted_parser_keeps_returning_none() {
        let mut p = PullParser::new("<a/>");
        while p.next_event().unwrap().is_some() {}
        assert!(p.next_event().unwrap().is_none());
    }
}
