//! A small, dependency-free XML parser for publish/subscribe messages.
//!
//! Supports the subset of XML actually used by feed items and event
//! messages: elements, attributes (single or double quoted), text content,
//! the five predefined entities, numeric character references, comments,
//! CDATA sections, processing instructions and an XML declaration. DTDs and
//! namespace resolution are intentionally out of scope (prefixes are kept as
//! part of the tag name).

use crate::document::Document;
use crate::error::{XmlError, XmlResult};
use crate::node::NodeId;

/// Parse a complete XML document (a single root element, optionally preceded
/// by an XML declaration, comments and processing instructions).
pub fn parse_document(input: &str) -> XmlResult<Document> {
    let mut p = Parser::new(input);
    p.skip_prolog()?;
    p.skip_misc();
    let doc = p.parse_root()?;
    p.skip_misc();
    if !p.at_eof() {
        return Err(XmlError::MultipleRoots { offset: p.pos });
    }
    Ok(doc)
}

/// Parse an XML fragment: like [`parse_document`] but tolerates trailing
/// whitespace-only content and does not require a prolog. Provided mainly for
/// tests and tools.
pub fn parse_fragment(input: &str) -> XmlResult<Document> {
    parse_document(input.trim())
}

#[derive(Debug)]
pub(crate) struct Parser<'a> {
    pub(crate) input: &'a str,
    bytes: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Parser<'a> {
    pub(crate) fn new(input: &'a str) -> Self {
        Parser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    pub(crate) fn at_eof(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    pub(crate) fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    pub(crate) fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    pub(crate) fn skip_whitespace(&mut self) {
        while let Some(b) = self.peek() {
            if b == b' ' || b == b'\t' || b == b'\r' || b == b'\n' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    pub(crate) fn expect_literal(&mut self, s: &str) -> XmlResult<()> {
        if self.starts_with(s) {
            self.pos += s.len();
            Ok(())
        } else if self.at_eof() {
            Err(XmlError::UnexpectedEof { context: "markup" })
        } else {
            Err(XmlError::UnexpectedChar {
                offset: self.pos,
                found: self.input[self.pos..].chars().next().unwrap_or('\0'),
                expected: "markup",
            })
        }
    }

    pub(crate) fn skip_prolog(&mut self) -> XmlResult<()> {
        self.skip_whitespace();
        if self.starts_with("<?xml") {
            match self.input[self.pos..].find("?>") {
                Some(rel) => self.pos += rel + 2,
                None => {
                    return Err(XmlError::UnexpectedEof {
                        context: "XML declaration",
                    })
                }
            }
        }
        Ok(())
    }

    /// Skip whitespace, comments, PIs and DOCTYPE at the top level.
    pub(crate) fn skip_misc(&mut self) {
        loop {
            self.skip_whitespace();
            if self.starts_with("<!--") {
                if self.skip_comment().is_err() {
                    return;
                }
            } else if self.starts_with("<?") {
                match self.input[self.pos..].find("?>") {
                    Some(rel) => self.pos += rel + 2,
                    None => return,
                }
            } else if self.starts_with("<!DOCTYPE") {
                // Skip a (non-nested) DOCTYPE declaration.
                match self.input[self.pos..].find('>') {
                    Some(rel) => self.pos += rel + 1,
                    None => return,
                }
            } else {
                return;
            }
        }
    }

    pub(crate) fn skip_comment(&mut self) -> XmlResult<()> {
        debug_assert!(self.starts_with("<!--"));
        match self.input[self.pos + 4..].find("-->") {
            Some(rel) => {
                self.pos += 4 + rel + 3;
                Ok(())
            }
            None => Err(XmlError::UnexpectedEof { context: "comment" }),
        }
    }

    fn parse_root(&mut self) -> XmlResult<Document> {
        self.skip_whitespace();
        if self.at_eof() {
            return Err(XmlError::EmptyDocument);
        }
        if self.peek() != Some(b'<') {
            return Err(XmlError::UnexpectedChar {
                offset: self.pos,
                found: self.input[self.pos..].chars().next().unwrap_or('\0'),
                expected: "start of root element",
            });
        }
        // Parse the root start tag to learn the root tag name.
        self.expect_literal("<")?;
        let tag = self.parse_name()?;
        let mut doc = Document::new(tag.clone());
        let root = NodeId::ROOT;
        self.parse_attributes_into(&mut doc, root)?;
        self.skip_whitespace();
        if self.starts_with("/>") {
            self.pos += 2;
            return Ok(doc);
        }
        self.expect_literal(">")?;
        self.parse_content(&mut doc, root, &tag)?;
        Ok(doc)
    }

    pub(crate) fn parse_name(&mut self) -> XmlResult<String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let c = b as char;
            if c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | ':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            if self.at_eof() {
                return Err(XmlError::UnexpectedEof { context: "name" });
            }
            return Err(XmlError::UnexpectedChar {
                offset: self.pos,
                found: self.input[self.pos..].chars().next().unwrap_or('\0'),
                expected: "name",
            });
        }
        Ok(self.input[start..self.pos].to_owned())
    }

    fn parse_attributes_into(&mut self, doc: &mut Document, node: NodeId) -> XmlResult<()> {
        let attrs = self.parse_attribute_list()?;
        for (name, value) in attrs {
            doc.set_attribute(node, name, value);
        }
        Ok(())
    }

    /// Parse the attribute list of a start tag up to (but not including) the
    /// closing `>` or `/>`, in document order. Shared by the DOM parser and
    /// the streaming [`PullParser`](crate::stream::PullParser).
    pub(crate) fn parse_attribute_list(&mut self) -> XmlResult<Vec<(String, String)>> {
        let mut out = Vec::new();
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'>') | Some(b'/') | None => return Ok(out),
                _ => {}
            }
            let name = self.parse_name()?;
            self.skip_whitespace();
            self.expect_literal("=")?;
            self.skip_whitespace();
            let quote = match self.bump() {
                Some(q @ (b'"' | b'\'')) => q,
                Some(other) => {
                    return Err(XmlError::UnexpectedChar {
                        offset: self.pos - 1,
                        found: other as char,
                        expected: "quoted attribute value",
                    })
                }
                None => {
                    return Err(XmlError::UnexpectedEof {
                        context: "attribute value",
                    })
                }
            };
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == quote {
                    break;
                }
                self.pos += 1;
            }
            if self.at_eof() {
                return Err(XmlError::UnexpectedEof {
                    context: "attribute value",
                });
            }
            let raw = &self.input[start..self.pos];
            self.pos += 1; // closing quote
            let value = decode_entities(raw, start)?;
            out.push((name, value));
        }
    }

    fn parse_content(&mut self, doc: &mut Document, node: NodeId, open_tag: &str) -> XmlResult<()> {
        loop {
            if self.at_eof() {
                return Err(XmlError::UnexpectedEof {
                    context: "element content",
                });
            }
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.parse_name()?;
                self.skip_whitespace();
                self.expect_literal(">")?;
                if close != open_tag {
                    return Err(XmlError::MismatchedTag {
                        open: open_tag.to_owned(),
                        close,
                        offset: self.pos,
                    });
                }
                return Ok(());
            } else if self.starts_with("<!--") {
                self.skip_comment()?;
            } else if self.starts_with("<![CDATA[") {
                let start = self.pos + 9;
                match self.input[start..].find("]]>") {
                    Some(rel) => {
                        let text = &self.input[start..start + rel];
                        if !text.is_empty() {
                            doc.push_text(node, text);
                        }
                        self.pos = start + rel + 3;
                    }
                    None => {
                        return Err(XmlError::UnexpectedEof {
                            context: "CDATA section",
                        })
                    }
                }
            } else if self.starts_with("<?") {
                match self.input[self.pos..].find("?>") {
                    Some(rel) => self.pos += rel + 2,
                    None => {
                        return Err(XmlError::UnexpectedEof {
                            context: "processing instruction",
                        })
                    }
                }
            } else if self.peek() == Some(b'<') {
                // Child element.
                self.pos += 1;
                let tag = self.parse_name()?;
                let child = doc
                    .append_child(node, tag.clone())
                    .map_err(|_| XmlError::NotAnElement { id: node.raw() })?;
                self.parse_attributes_into(doc, child)?;
                self.skip_whitespace();
                if self.starts_with("/>") {
                    self.pos += 2;
                } else {
                    self.expect_literal(">")?;
                    self.parse_content(doc, child, &tag)?;
                }
            } else {
                // Text run up to the next '<'.
                let start = self.pos;
                while let Some(b) = self.peek() {
                    if b == b'<' {
                        break;
                    }
                    self.pos += 1;
                }
                let raw = &self.input[start..self.pos];
                let text = decode_entities(raw, start)?;
                // Whitespace-only runs between elements are ignored; they are
                // formatting, not data.
                if !text.trim().is_empty() {
                    doc.push_text(node, &text);
                }
            }
        }
    }
}

/// Decode the predefined XML entities and numeric character references in a
/// text or attribute-value run.
pub(crate) fn decode_entities(raw: &str, base_offset: usize) -> XmlResult<String> {
    if !raw.contains('&') {
        return Ok(raw.to_owned());
    }
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.char_indices().peekable();
    while let Some((i, c)) = chars.next() {
        if c != '&' {
            out.push(c);
            continue;
        }
        // Collect up to ';'
        let mut name = String::new();
        let mut terminated = false;
        for (_, c2) in chars.by_ref() {
            if c2 == ';' {
                terminated = true;
                break;
            }
            name.push(c2);
            if name.len() > 12 {
                break;
            }
        }
        if !terminated {
            return Err(XmlError::UnknownEntity {
                name,
                offset: base_offset + i,
            });
        }
        let decoded = match name.as_str() {
            "amp" => Some('&'),
            "lt" => Some('<'),
            "gt" => Some('>'),
            "quot" => Some('"'),
            "apos" => Some('\''),
            _ if name.starts_with("#x") || name.starts_with("#X") => {
                u32::from_str_radix(&name[2..], 16)
                    .ok()
                    .and_then(char::from_u32)
            }
            _ if name.starts_with('#') => name[1..].parse::<u32>().ok().and_then(char::from_u32),
            _ => None,
        };
        match decoded {
            Some(ch) => out.push(ch),
            None => {
                return Err(XmlError::UnknownEntity {
                    name,
                    offset: base_offset + i,
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;

    #[test]
    fn parse_simple_document() {
        let d = parse_document("<book><title>Rust</title><author>Someone</author></book>").unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.root().tag(), "book");
        assert_eq!(d.string_value(NodeId::from_raw(1)), "Rust");
        assert_eq!(d.string_value(NodeId::from_raw(2)), "Someone");
        d.check_invariants().unwrap();
    }

    #[test]
    fn parse_with_declaration_and_comments() {
        let src = r#"<?xml version="1.0" encoding="UTF-8"?>
            <!-- a feed item -->
            <item>
              <title>Hello &amp; goodbye</title>
              <!-- inner comment -->
              <link href="http://example.org/a?b=1&amp;c=2"/>
            </item>"#;
        let d = parse_document(src).unwrap();
        assert_eq!(d.root().tag(), "item");
        assert_eq!(d.string_value(NodeId::from_raw(1)), "Hello & goodbye");
        assert_eq!(
            d.node(NodeId::from_raw(2)).attribute("href"),
            Some("http://example.org/a?b=1&c=2")
        );
    }

    #[test]
    fn parse_nested_structure() {
        let d = parse_document("<a><b><c>x</c></b><d>y</d></a>").unwrap();
        // pre-order: a=0, b=1, c=2, d=3
        assert_eq!(d.node(NodeId::from_raw(1)).tag(), "b");
        assert_eq!(d.node(NodeId::from_raw(2)).tag(), "c");
        assert_eq!(d.node(NodeId::from_raw(3)).tag(), "d");
        assert!(d.is_ancestor(NodeId::from_raw(1), NodeId::from_raw(2)));
        assert_eq!(d.node(NodeId::from_raw(3)).parent(), Some(NodeId::ROOT));
    }

    #[test]
    fn parse_self_closing_root() {
        let d = parse_document("<empty/>").unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.root().tag(), "empty");
    }

    #[test]
    fn parse_attributes_single_and_double_quotes() {
        let d = parse_document(r#"<n a="1" b='two' c="with 'mixed'"/>"#).unwrap();
        assert_eq!(d.root().attribute("a"), Some("1"));
        assert_eq!(d.root().attribute("b"), Some("two"));
        assert_eq!(d.root().attribute("c"), Some("with 'mixed'"));
    }

    #[test]
    fn parse_cdata() {
        let d = parse_document("<x><![CDATA[<not><parsed>&amp;]]></x>").unwrap();
        assert_eq!(d.string_value(NodeId::ROOT), "<not><parsed>&amp;");
    }

    #[test]
    fn parse_numeric_entities() {
        let d = parse_document("<x>&#65;&#x42;</x>").unwrap();
        assert_eq!(d.string_value(NodeId::ROOT), "AB");
    }

    #[test]
    fn parse_doctype_skipped() {
        let d = parse_document("<!DOCTYPE html><x>ok</x>").unwrap();
        assert_eq!(d.string_value(NodeId::ROOT), "ok");
    }

    #[test]
    fn mixed_content_concatenates_text() {
        let d = parse_document("<p>one <b>bold</b> two</p>").unwrap();
        // Text directly under <p> is "one  two" (joined), <b> holds "bold".
        assert_eq!(d.node(NodeId::ROOT).text(), Some("one  two"));
        assert_eq!(d.string_value(NodeId::from_raw(1)), "bold");
    }

    #[test]
    fn error_mismatched_tag() {
        let err = parse_document("<a><b></a></b>").unwrap_err();
        assert!(matches!(err, XmlError::MismatchedTag { .. }));
    }

    #[test]
    fn error_unexpected_eof() {
        let err = parse_document("<a><b>").unwrap_err();
        assert!(matches!(err, XmlError::UnexpectedEof { .. }));
    }

    #[test]
    fn error_multiple_roots() {
        let err = parse_document("<a/><b/>").unwrap_err();
        assert!(matches!(err, XmlError::MultipleRoots { .. }));
    }

    #[test]
    fn error_empty_document() {
        let err = parse_document("   ").unwrap_err();
        assert!(matches!(err, XmlError::EmptyDocument));
    }

    #[test]
    fn error_unknown_entity() {
        let err = parse_document("<a>&bogus;</a>").unwrap_err();
        assert!(matches!(err, XmlError::UnknownEntity { .. }));
    }

    #[test]
    fn error_text_before_root() {
        let err = parse_document("hello <a/>").unwrap_err();
        assert!(matches!(err, XmlError::UnexpectedChar { .. }));
    }

    #[test]
    fn parse_fragment_trims() {
        let d = parse_fragment("  <a>x</a>  \n").unwrap();
        assert_eq!(d.string_value(NodeId::ROOT), "x");
    }

    #[test]
    fn whitespace_only_text_ignored() {
        let d = parse_document("<a>\n  <b>x</b>\n</a>").unwrap();
        assert_eq!(d.node(NodeId::ROOT).text(), None);
        assert_eq!(d.string_value(NodeId::ROOT), "x");
    }

    #[test]
    fn decode_entities_no_amp_fast_path() {
        assert_eq!(decode_entities("plain text", 0).unwrap(), "plain text");
    }

    #[test]
    fn decode_entities_unterminated() {
        assert!(decode_entities("bad &amp without semicolon", 0).is_err());
    }
}
