//! Ergonomic programmatic construction of documents.

use crate::document::{DocId, Document, Timestamp};
use crate::node::NodeId;

/// A convenience builder for constructing [`Document`]s in document order.
///
/// The builder maintains a cursor (a stack of open elements). Elements are
/// appended under the element at the top of the stack; [`open`](Self::open)
/// pushes a new element onto the stack and [`close`](Self::close) pops it.
///
/// ```
/// use mmqjp_xml::DocumentBuilder;
///
/// let mut b = DocumentBuilder::new("blog");
/// b.child_text("author", "Danny Ayers");
/// b.open("meta");
/// b.child_text("category", "Book Announcement");
/// b.close();
/// let doc = b.finish();
/// assert_eq!(doc.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct DocumentBuilder {
    doc: Document,
    stack: Vec<NodeId>,
}

impl DocumentBuilder {
    /// Start a document with the given root tag.
    pub fn new(root_tag: impl Into<String>) -> Self {
        let doc = Document::new(root_tag);
        DocumentBuilder {
            doc,
            stack: vec![NodeId::ROOT],
        }
    }

    /// The id of the element the builder is currently inside.
    pub fn current(&self) -> NodeId {
        // lint:allow the stack is seeded with ROOT and close() refuses to pop it
        *self.stack.last().expect("builder stack is never empty")
    }

    /// Open a child element under the current element and descend into it.
    /// Returns the new element's id.
    pub fn open(&mut self, tag: impl Into<String>) -> NodeId {
        let id = self
            .doc
            .append_child(self.current(), tag)
            // lint:allow the cursor is always the rightmost open element, so appending under it cannot violate pre-order
            .expect("builder maintains pre-order invariant");
        self.stack.push(id);
        id
    }

    /// Close the current element, moving the cursor back to its parent.
    ///
    /// # Panics
    /// Panics if called more times than [`open`](Self::open) (the root cannot
    /// be closed).
    pub fn close(&mut self) {
        assert!(
            self.stack.len() > 1,
            "DocumentBuilder::close called with no open element"
        );
        self.stack.pop();
    }

    /// Append a child element with text content (a leaf) under the current
    /// element without descending into it. Returns the new element's id.
    pub fn child_text(&mut self, tag: impl Into<String>, text: impl Into<String>) -> NodeId {
        let id = self
            .doc
            .append_child(self.current(), tag)
            // lint:allow the cursor is always the rightmost open element, so appending under it cannot violate pre-order
            .expect("builder maintains pre-order invariant");
        self.doc.set_text(id, text);
        id
    }

    /// Append an empty child element under the current element without
    /// descending into it. Returns the new element's id.
    pub fn child(&mut self, tag: impl Into<String>) -> NodeId {
        self.doc
            .append_child(self.current(), tag)
            // lint:allow the cursor is always the rightmost open element, so appending under it cannot violate pre-order
            .expect("builder maintains pre-order invariant")
    }

    /// Set text on the current element.
    pub fn text(&mut self, text: impl Into<String>) {
        let cur = self.current();
        self.doc.push_text(cur, &text.into());
    }

    /// Set an attribute on the current element.
    pub fn attribute(&mut self, name: impl Into<String>, value: impl Into<String>) {
        let cur = self.current();
        self.doc.set_attribute(cur, name, value);
    }

    /// Set the document id.
    pub fn doc_id(&mut self, id: DocId) {
        self.doc.set_id(id);
    }

    /// Set the document timestamp.
    pub fn timestamp(&mut self, ts: Timestamp) {
        self.doc.set_timestamp(ts);
    }

    /// Finish building, closing any still-open elements, and return the
    /// document.
    pub fn finish(mut self) -> Document {
        self.stack.truncate(1);
        debug_assert!(self.doc.check_invariants().is_ok());
        self.doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_flat_document() {
        let mut b = DocumentBuilder::new("item");
        b.child_text("title", "Hello");
        b.child_text("description", "World");
        let d = b.finish();
        assert_eq!(d.len(), 3);
        assert_eq!(d.node(NodeId::from_raw(1)).tag(), "title");
        assert_eq!(d.string_value(NodeId::from_raw(2)), "World");
        d.check_invariants().unwrap();
    }

    #[test]
    fn builds_nested_document() {
        let mut b = DocumentBuilder::new("root");
        b.open("a");
        b.child_text("b", "1");
        b.open("c");
        b.child_text("d", "2");
        b.close();
        b.close();
        b.child_text("e", "3");
        let d = b.finish();
        assert_eq!(d.len(), 6);
        // pre-order: root=0, a=1, b=2, c=3, d=4, e=5
        assert_eq!(d.node(NodeId::from_raw(1)).tag(), "a");
        assert_eq!(d.node(NodeId::from_raw(4)).tag(), "d");
        assert_eq!(d.node(NodeId::from_raw(5)).tag(), "e");
        assert_eq!(d.node(NodeId::from_raw(5)).parent(), Some(NodeId::ROOT));
        assert!(d.is_ancestor(NodeId::from_raw(1), NodeId::from_raw(4)));
        d.check_invariants().unwrap();
    }

    #[test]
    fn finish_closes_open_elements() {
        let mut b = DocumentBuilder::new("root");
        b.open("a");
        b.open("b");
        let d = b.finish();
        assert_eq!(d.len(), 3);
        d.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "no open element")]
    fn close_root_panics() {
        let mut b = DocumentBuilder::new("root");
        b.close();
    }

    #[test]
    fn attributes_and_metadata() {
        let mut b = DocumentBuilder::new("item");
        b.attribute("id", "42");
        b.doc_id(DocId(9));
        b.timestamp(Timestamp(100));
        b.text("inline");
        let d = b.finish();
        assert_eq!(d.root().attribute("id"), Some("42"));
        assert_eq!(d.id(), DocId(9));
        assert_eq!(d.timestamp(), Timestamp(100));
        assert_eq!(d.string_value(NodeId::ROOT), "inline");
    }

    #[test]
    fn child_without_text() {
        let mut b = DocumentBuilder::new("r");
        let c = b.child("empty");
        let d = b.finish();
        assert_eq!(d.node(c).tag(), "empty");
        assert_eq!(d.node(c).text(), None);
    }
}
