//! # mmqjp-xml
//!
//! XML document substrate for the MMQJP (Massively Multi-Query Join
//! Processing) publish/subscribe engine — a reproduction of Hong et al.,
//! *"Massively Multi-Query Join Processing in Publish/Subscribe Systems"*,
//! SIGMOD 2007.
//!
//! The crate provides the document model that the rest of the system is built
//! on:
//!
//! * [`Document`] — an arena-allocated XML tree whose element nodes are
//!   identified by their **pre-order traversal index** ([`NodeId`]), exactly
//!   as in the paper's Figures 1 and 2.
//! * [`DocumentBuilder`] — an ergonomic programmatic constructor.
//! * [`parse_document`] — a small, dependency-free parser for the XML subset
//!   needed by publish/subscribe messages (elements, attributes, text,
//!   comments, CDATA; no DTDs or namespaces resolution).
//! * [`PullParser`] — a byte-level streaming parser over the same subset,
//!   emitting [`XmlEvent`]s without building a tree; the DOM parser is its
//!   executable specification ([`parse_document_streaming`] folds the events
//!   back into a [`Document`] and is checked differentially against it).
//! * [`serialize`] — the inverse of the parser.
//! * [`rss`] — helpers for building RSS/Atom feed-item shaped documents, the
//!   workload used in the paper's Section 6.3 experiment.
//!
//! # Example
//!
//! ```
//! use mmqjp_xml::DocumentBuilder;
//!
//! // The book-announcement document d1 from Figure 1 of the paper.
//! let mut b = DocumentBuilder::new("book");
//! b.child_text("author", "Danny Ayers");
//! b.child_text("author", "Andrew Watt");
//! b.child_text("title", "Beginning RSS and Atom Programming");
//! let doc = b.finish();
//!
//! assert_eq!(doc.root().tag(), "book");
//! assert_eq!(doc.len(), 4); // book + 2 authors + title
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod builder;
mod document;
mod error;
mod node;
mod parser;
pub mod rss;
mod serialize;
mod stream;

pub use builder::DocumentBuilder;
pub use document::{DocId, Document, Timestamp};
pub use error::{XmlError, XmlResult};
pub use node::{Node, NodeId, NodeKind};
pub use parser::{parse_document, parse_fragment};
pub use serialize::{serialize, serialize_pretty, serialize_subtree};
pub use stream::{parse_document_streaming, PullParser, XmlEvent};
