//! Scalar values stored in relations.

use crate::interner::Symbol;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A scalar value in a relation.
///
/// The MMQJP witness relations store four kinds of scalars:
///
/// * node ids and document ids and timestamps — represented as [`Value::Int`];
/// * variable names and interned string values — represented as
///   [`Value::Sym`] (a [`Symbol`] from a [`StringInterner`]);
/// * raw strings for ad-hoc use and debugging — [`Value::Str`];
/// * an explicit [`Value::Null`] for padded columns (templates whose queries
///   bind fewer meta-variables than the widest member).
///
/// Equality and hashing are derived; a `Sym` never equals a `Str` even if the
/// interned text matches, so callers must be consistent about interning (the
/// engine in `mmqjp-core` interns every string value).
///
/// [`StringInterner`]: crate::StringInterner
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Value {
    /// Absent / padded value. Joins never match on `Null` against `Null`
    /// unless both sides are literally `Null` (SQL semantics are *not*
    /// emulated; `Null == Null` is true for hashing purposes, which is what
    /// the padded template columns require).
    #[default]
    Null,
    /// 64-bit signed integer (node ids, document ids, timestamps, window
    /// lengths).
    Int(i64),
    /// Interned symbol (variable names, interned string values).
    Sym(Symbol),
    /// Raw shared string.
    Str(Arc<str>),
}

impl Value {
    /// Construct an integer value.
    pub fn int(v: impl Into<i64>) -> Value {
        Value::Int(v.into())
    }

    /// Construct a raw string value.
    pub fn str(v: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(v.as_ref()))
    }

    /// Construct a symbol value.
    pub fn sym(s: Symbol) -> Value {
        Value::Sym(s)
    }

    /// The integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The symbol payload, if this is a [`Value::Sym`].
    pub fn as_sym(&self) -> Option<Symbol> {
        match self {
            Value::Sym(s) => Some(*s),
            _ => None,
        }
    }

    /// The string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// `true` for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Sym(s) => write!(f, "#{}", s.raw()),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Int(v as i64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v.into())
    }
}

impl From<Symbol> for Value {
    fn from(s: Symbol) -> Self {
        Value::Sym(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::StringInterner;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(Value::int(5).as_int(), Some(5));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert!(Value::Null.is_null());
        assert!(!Value::int(0).is_null());
        assert_eq!(Value::default(), Value::Null);
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3u32), Value::Int(3));
        assert_eq!(Value::from(3u64), Value::Int(3));
        assert_eq!(Value::from("a"), Value::str("a"));
        assert_eq!(Value::from("a".to_string()), Value::str("a"));
    }

    #[test]
    fn sym_and_str_are_distinct() {
        let interner = StringInterner::new();
        let s = interner.intern("hello");
        let v1 = Value::sym(s);
        let v2 = Value::str("hello");
        assert_ne!(v1, v2);
        assert_eq!(v1.as_sym(), Some(s));
        assert_eq!(v2.as_sym(), None);
    }

    #[test]
    fn equality_and_ordering() {
        assert_eq!(Value::int(1), Value::int(1));
        assert_ne!(Value::int(1), Value::int(2));
        assert!(Value::int(1) < Value::int(2));
        assert_eq!(Value::str("a"), Value::str("a"));
        assert!(Value::str("a") < Value::str("b"));
        // Null equals Null (used for padded template columns)
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn display_formats() {
        let interner = StringInterner::new();
        let s = interner.intern("v");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::int(7).to_string(), "7");
        assert_eq!(Value::str("x").to_string(), "\"x\"");
        assert!(Value::sym(s).to_string().starts_with('#'));
    }
}
