//! # mmqjp-relational
//!
//! A compact in-memory relational engine that serves as the **Join Processor
//! substrate** of the MMQJP reproduction (Hong et al., SIGMOD 2007).
//!
//! The original paper translated each per-template conjunctive query into SQL
//! and executed it on Microsoft SQL Server 2005. This crate replaces that
//! external dependency with an embedded engine providing exactly the
//! machinery the Join Processor needs:
//!
//! * [`Value`], [`Tuple`], [`Schema`], [`Relation`] — the data model.
//!   Relations store their values **column-major** (one contiguous `Vec` per
//!   column), with borrowed [`RowRef`] views for row-oriented access. String
//!   values and variable names are interned through [`StringInterner`] so
//!   equality joins compare fixed-width symbols.
//! * [`ops`] — relational algebra operators: selection, projection, hash
//!   equi-join, natural join, semi-join, anti-join, union, difference,
//!   cross product, distinct.
//! * [`HashIndex`] — multi-column hash indexes over relations.
//! * [`SegmentedRelation`] — bucketed relation storage with stable
//!   [`RowHandle`]s, used for windowed join state whose expiry must be a
//!   whole-bucket drop rather than a retain-and-rebuild.
//! * [`ConjunctiveQuery`] / [`Database`] — a Datalog-style conjunctive query
//!   representation with a greedy connected-join planner and a hash-join
//!   executor. This is what evaluates each query template's `CQ_T`. The
//!   database stores [`StoredRelation`]s, so flat and segmented relations
//!   evaluate through the same code path.
//! * [`PhysicalPlan`] — the compiled form of a conjunctive query: column
//!   names interned to dense [`ColId`]s, filters and join keys resolved to
//!   positions at compile time, and a late-materialization executor that
//!   joins row ids over borrowed inputs (flat or segmented via
//!   [`ChunkedRows`]) with pooled [`ExecScratch`] buffers, materializing
//!   each output tuple exactly once. This is what the MMQJP engine executes
//!   per batch; the interpreting [`Database::evaluate`] remains as the
//!   reference implementation.
//! * [`FxHasher`] — a vendored Fx-style hasher ([`FxHashMap`],
//!   [`FxHashSet`]) for the join build/probe tables and index segments.
//!
//! The engine is deliberately not a general DBMS: no transactions, no
//! persistence, no SQL parser. It is, however, a complete and correct
//! evaluator for conjunctive queries over in-memory relations, which is all
//! the MMQJP Join Processor requires — and it preserves the paper's
//! performance structure (set-oriented, shared evaluation per template versus
//! per-query loops).
//!
//! # Example
//!
//! ```
//! use mmqjp_relational::{Database, Relation, Schema, Value, ConjunctiveQuery, Atom, Term};
//!
//! let mut db = Database::new();
//! let mut parent = Relation::new(Schema::new(["parent", "child"]));
//! parent.push_values(vec![Value::str("alice"), Value::str("bob")]).unwrap();
//! parent.push_values(vec![Value::str("bob"), Value::str("carol")]).unwrap();
//! db.register("parent", parent);
//!
//! // grandparent(X, Z) :- parent(X, Y), parent(Y, Z)
//! let q = ConjunctiveQuery::new(["X", "Z"])
//!     .atom(Atom::new("parent", [Term::var("X"), Term::var("Y")]))
//!     .atom(Atom::new("parent", [Term::var("Y"), Term::var("Z")]));
//! let result = db.evaluate(&q).unwrap();
//! assert_eq!(result.len(), 1);
//! assert_eq!(result.row(0)[0], Value::str("alice"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Hot paths return typed errors instead of panicking; the unit tests are
// free to unwrap.
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod conjunctive;
mod database;
mod error;
mod fxhash;
mod index;
mod interner;
pub mod ops;
mod plan;
mod relation;
mod schema;
mod segment;
mod value;
pub mod verify;

pub use conjunctive::{Atom, ConjunctiveQuery, Term};
pub use database::{relation_from_rows, Database, StoredRelation, StoredTuples};
pub use error::{RelError, RelResult};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use index::HashIndex;
pub use interner::{StringInterner, Symbol};
pub use plan::{ChunkedRows, ColId, ExecScratch, PhysicalPlan, PlanInput};
pub use relation::{Relation, RowRef, Rows, Tuple};
pub use schema::Schema;
pub use segment::{BucketId, RowHandle, SegmentedRelation, SegmentedTuples};
pub use value::Value;
pub use verify::{verify_plan, verify_plan_strict, PlanViolation, SharedKeyRule, VerifyOptions};
