//! Registration-time verification of compiled [`PhysicalPlan`]s.
//!
//! [`PhysicalPlan::compile`] already rejects structurally invalid queries,
//! but the compiled artifact itself — dense [`ColId`]s, input-slot indices,
//! positional constant/duplicate filters — is trusted blindly by the
//! executor afterwards. This module re-checks the compiled plan *against its
//! source query and schema* once, before first execution, so that a compiler
//! regression (or a hand-built plan) is reported as a typed
//! [`PlanViolation`] instead of a wrong answer or an out-of-bounds panic on
//! the hot path.
//!
//! Checks performed by [`verify_plan`]:
//!
//! * every atom's input slot is in range and names the same relation as the
//!   source atom;
//! * every constant / duplicate / variable filter position is within the
//!   relation's arity, and together they cover each position exactly once;
//! * duplicate filters point backwards at a variable's first occurrence;
//! * every [`ColId`] is dense (below the plan's column count) and every
//!   constant and variable binding matches the source query term for term;
//! * every head column is in range and bound by some body atom, and the head
//!   schema's arity matches the projection;
//! * the join graph (atoms as nodes, shared [`ColId`]s as edges) is
//!   connected, so execution never silently degenerates into a cartesian
//!   product;
//! * optionally, a [`SharedKeyRule`]: every atom over the rule's `left`
//!   relation must equate the column at `position` with the same variable in
//!   at least one `right` atom. The MMQJP engine uses this for the
//!   batch-restriction soundness precondition — every basic-plan `Rdoc` atom
//!   must share its `strVal` variable with an `RdocW` atom, because the
//!   executor restricts the `Rdoc` state scan to the string values present
//!   in the current batch.
//!
//! Violations are collected exhaustively (not fail-fast) and can be raised
//! as a single [`RelError::PlanVerification`](crate::RelError) via
//! [`verify_plan_strict`].

use crate::conjunctive::{ConjunctiveQuery, Term};
use crate::error::{RelError, RelResult};
use crate::plan::{ColId, PhysicalPlan};

/// A single defect found in a compiled plan. See the module docs for the
/// full list of checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanViolation {
    /// The plan compiled a different number of atoms than the query body.
    AtomCountMismatch {
        /// Atoms in the compiled plan.
        plan_atoms: usize,
        /// Atoms in the source query body.
        query_atoms: usize,
    },
    /// An atom's input-slot index is past the plan's relation list.
    InputSlotOutOfRange {
        /// Body atom index.
        atom: usize,
        /// The out-of-range slot.
        slot: usize,
        /// Number of input slots the plan declares.
        num_slots: usize,
    },
    /// The schema provider does not know a relation the plan reads.
    UnknownRelation {
        /// Body atom index.
        atom: usize,
        /// The unknown relation name.
        relation: String,
    },
    /// A plan atom reads a different relation than the source atom.
    RelationMismatch {
        /// Body atom index.
        atom: usize,
        /// Relation the compiled atom reads.
        plan_relation: String,
        /// Relation the source atom names.
        query_relation: String,
    },
    /// A bound variable's [`ColId`] is past the plan's column count.
    ColIdOutOfRange {
        /// Body atom index.
        atom: usize,
        /// The out-of-range column id.
        col: ColId,
        /// Number of distinct columns the plan declares.
        num_columns: usize,
    },
    /// A filter or binding position is past the relation's arity.
    PositionOutOfRange {
        /// Body atom index.
        atom: usize,
        /// Relation the atom reads.
        relation: String,
        /// The out-of-range position.
        position: usize,
        /// The relation's arity.
        arity: usize,
    },
    /// An atom's constant/duplicate/variable entries do not cover each
    /// position of the relation exactly once.
    PositionCoverage {
        /// Body atom index.
        atom: usize,
        /// Relation the atom reads.
        relation: String,
        /// Number of distinct positions covered.
        covered: usize,
        /// The relation's arity.
        arity: usize,
    },
    /// A repeated-variable filter does not point backwards at one of the
    /// atom's variable first occurrences.
    InvalidDuplicateFilter {
        /// Body atom index.
        atom: usize,
        /// The repeated position.
        position: usize,
        /// The claimed first-occurrence position.
        first_position: usize,
    },
    /// A source-query constant is missing from (or differs in) the compiled
    /// atom's constant filters.
    ConstantFilterMismatch {
        /// Body atom index.
        atom: usize,
        /// The term position whose constant disagrees.
        position: usize,
    },
    /// A source-query variable occurrence is not represented by the matching
    /// variable binding or duplicate filter in the compiled atom.
    VariableBindingMismatch {
        /// Body atom index.
        atom: usize,
        /// The term position that disagrees.
        position: usize,
        /// The source variable name.
        variable: String,
    },
    /// A head column id is past the plan's column count.
    HeadColumnOutOfRange {
        /// Head position.
        index: usize,
        /// The out-of-range column id.
        col: ColId,
        /// Number of distinct columns the plan declares.
        num_columns: usize,
    },
    /// A head column is not bound by any body atom.
    UnboundHeadColumn {
        /// Head position.
        index: usize,
        /// The head column's name.
        column: String,
    },
    /// The head schema's arity differs from the projection list.
    HeadSchemaMismatch {
        /// Arity of the compiled head schema.
        schema_arity: usize,
        /// Length of the head projection list.
        head_len: usize,
    },
    /// The join graph over shared columns is not connected; execution would
    /// degenerate into a cartesian product.
    DisconnectedJoinGraph {
        /// Atoms reachable from the first atom.
        reachable: usize,
        /// Total body atoms.
        total: usize,
    },
    /// A [`SharedKeyRule`] is violated: the atom's key column is not equated
    /// with the same variable in any partner atom.
    UnsharedKey {
        /// Body atom index (in the source query).
        atom: usize,
        /// Relation of the violating atom.
        relation: String,
        /// Relation that must share the key variable.
        partner: String,
        /// The key position.
        position: usize,
    },
}

impl std::fmt::Display for PlanViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanViolation::AtomCountMismatch {
                plan_atoms,
                query_atoms,
            } => write!(
                f,
                "plan has {plan_atoms} atoms but the source query has {query_atoms}"
            ),
            PlanViolation::InputSlotOutOfRange {
                atom,
                slot,
                num_slots,
            } => write!(
                f,
                "atom {atom}: input slot {slot} out of range ({num_slots} slots)"
            ),
            PlanViolation::UnknownRelation { atom, relation } => {
                write!(f, "atom {atom}: relation `{relation}` has no known schema")
            }
            PlanViolation::RelationMismatch {
                atom,
                plan_relation,
                query_relation,
            } => write!(
                f,
                "atom {atom}: plan reads `{plan_relation}` but the query names `{query_relation}`"
            ),
            PlanViolation::ColIdOutOfRange {
                atom,
                col,
                num_columns,
            } => write!(
                f,
                "atom {atom}: column id {col} out of range ({num_columns} columns)"
            ),
            PlanViolation::PositionOutOfRange {
                atom,
                relation,
                position,
                arity,
            } => write!(
                f,
                "atom {atom} (`{relation}`): position {position} out of range (arity {arity})"
            ),
            PlanViolation::PositionCoverage {
                atom,
                relation,
                covered,
                arity,
            } => write!(
                f,
                "atom {atom} (`{relation}`): filters and bindings cover {covered} of {arity} positions"
            ),
            PlanViolation::InvalidDuplicateFilter {
                atom,
                position,
                first_position,
            } => write!(
                f,
                "atom {atom}: duplicate filter at position {position} does not point back \
                 at a variable first occurrence ({first_position})"
            ),
            PlanViolation::ConstantFilterMismatch { atom, position } => write!(
                f,
                "atom {atom}: constant at position {position} disagrees with the source query"
            ),
            PlanViolation::VariableBindingMismatch {
                atom,
                position,
                variable,
            } => write!(
                f,
                "atom {atom}: variable `{variable}` at position {position} is not bound \
                 by the compiled atom"
            ),
            PlanViolation::HeadColumnOutOfRange {
                index,
                col,
                num_columns,
            } => write!(
                f,
                "head position {index}: column id {col} out of range ({num_columns} columns)"
            ),
            PlanViolation::UnboundHeadColumn { index, column } => write!(
                f,
                "head position {index}: column `{column}` is not bound by any body atom"
            ),
            PlanViolation::HeadSchemaMismatch {
                schema_arity,
                head_len,
            } => write!(
                f,
                "head schema arity {schema_arity} differs from projection length {head_len}"
            ),
            PlanViolation::DisconnectedJoinGraph { reachable, total } => write!(
                f,
                "join graph is disconnected: {reachable} of {total} atoms reachable"
            ),
            PlanViolation::UnsharedKey {
                atom,
                relation,
                partner,
                position,
            } => write!(
                f,
                "atom {atom} (`{relation}`): key position {position} is not equated with \
                 any `{partner}` atom"
            ),
        }
    }
}

/// A key-sharing precondition checked by [`verify_plan`]: every `left` atom
/// must bind a variable at `position` that some `right` atom also binds at
/// `position`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedKeyRule {
    /// Relation whose atoms must share their key (e.g. `Rdoc`).
    pub left: String,
    /// Relation that must supply the shared key (e.g. `RdocW`).
    pub right: String,
    /// Term position of the key in both relations (e.g. 2 for `strVal`).
    pub position: usize,
}

/// Options for [`verify_plan`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyOptions {
    /// Optional key-sharing precondition (see [`SharedKeyRule`]).
    pub shared_key: Option<SharedKeyRule>,
}

/// Check a compiled plan against its source query and relation schemas.
/// Returns every violation found (empty for a well-formed plan). `arity_of`
/// must be the same schema provider the plan was compiled against.
pub fn verify_plan(
    plan: &PhysicalPlan,
    query: &ConjunctiveQuery,
    arity_of: impl Fn(&str) -> Option<usize>,
    options: &VerifyOptions,
) -> Vec<PlanViolation> {
    let mut out = Vec::new();
    let num_columns = plan.col_names.len();
    let num_slots = plan.relations.len();

    let atoms_match = plan.atoms.len() == query.body.len();
    if !atoms_match {
        out.push(PlanViolation::AtomCountMismatch {
            plan_atoms: plan.atoms.len(),
            query_atoms: query.body.len(),
        });
    }

    for (i, atom) in plan.atoms.iter().enumerate() {
        let slot = atom.rel as usize;
        if slot >= num_slots {
            out.push(PlanViolation::InputSlotOutOfRange {
                atom: i,
                slot,
                num_slots,
            });
            continue;
        }
        let relation = plan.relations[slot].clone();
        let Some(arity) = arity_of(&relation) else {
            out.push(PlanViolation::UnknownRelation { atom: i, relation });
            continue;
        };

        // Position bounds and exactly-once coverage across the three filter
        // and binding kinds.
        let positions: Vec<usize> = atom
            .consts
            .iter()
            .map(|&(p, _)| p as usize)
            .chain(atom.dups.iter().map(|&(p, _)| p as usize))
            .chain(atom.vars.iter().map(|&(_, p)| p as usize))
            .collect();
        let mut covered = vec![false; arity];
        let mut distinct = 0usize;
        for &p in &positions {
            if p >= arity {
                out.push(PlanViolation::PositionOutOfRange {
                    atom: i,
                    relation: relation.clone(),
                    position: p,
                    arity,
                });
            } else if !covered[p] {
                covered[p] = true;
                distinct += 1;
            }
        }
        if distinct != arity || positions.len() != arity {
            out.push(PlanViolation::PositionCoverage {
                atom: i,
                relation: relation.clone(),
                covered: distinct.min(positions.len()),
                arity,
            });
        }

        // Duplicate filters must point backwards at a variable first
        // occurrence within the same atom.
        for &(pos, first) in &atom.dups {
            let first_is_var = atom.vars.iter().any(|&(_, p)| p == first);
            if !first_is_var || first >= pos {
                out.push(PlanViolation::InvalidDuplicateFilter {
                    atom: i,
                    position: pos as usize,
                    first_position: first as usize,
                });
            }
        }

        // Dense, in-range column ids; no column bound twice by one atom
        // (a repeat must compile to a duplicate filter instead).
        for (vi, &(col, _)) in atom.vars.iter().enumerate() {
            if (col as usize) >= num_columns {
                out.push(PlanViolation::ColIdOutOfRange {
                    atom: i,
                    col,
                    num_columns,
                });
            }
            if atom.vars[..vi].iter().any(|&(c, _)| c == col) {
                let first = atom
                    .vars
                    .iter()
                    .find(|&&(c, _)| c == col)
                    .map(|&(_, p)| p as usize)
                    .unwrap_or(0);
                out.push(PlanViolation::InvalidDuplicateFilter {
                    atom: i,
                    position: atom.vars[vi].1 as usize,
                    first_position: first,
                });
            }
        }

        // Cross-check against the source atom, term by term.
        if atoms_match {
            let src = &query.body[i];
            if src.relation != relation {
                out.push(PlanViolation::RelationMismatch {
                    atom: i,
                    plan_relation: relation.clone(),
                    query_relation: src.relation.clone(),
                });
            } else {
                verify_atom_terms(plan, i, src, &mut out);
            }
        }
    }

    // Head projection: in range, bound somewhere, schema arity agrees.
    let bound: Vec<ColId> = plan
        .atoms
        .iter()
        .flat_map(|a| a.vars.iter().map(|&(c, _)| c))
        .collect();
    for (j, &col) in plan.head.iter().enumerate() {
        if (col as usize) >= num_columns {
            out.push(PlanViolation::HeadColumnOutOfRange {
                index: j,
                col,
                num_columns,
            });
        } else if !bound.contains(&col) {
            out.push(PlanViolation::UnboundHeadColumn {
                index: j,
                column: plan.col_names[col as usize].clone(),
            });
        }
    }
    if plan.head_schema.arity() != plan.head.len() {
        out.push(PlanViolation::HeadSchemaMismatch {
            schema_arity: plan.head_schema.arity(),
            head_len: plan.head.len(),
        });
    }

    // Join-graph connectivity over shared column ids.
    if plan.atoms.len() > 1 {
        let reachable = reachable_atoms(plan);
        if reachable != plan.atoms.len() {
            out.push(PlanViolation::DisconnectedJoinGraph {
                reachable,
                total: plan.atoms.len(),
            });
        }
    }

    // Optional key-sharing precondition, checked on the source query where
    // term identity is explicit.
    if let Some(rule) = &options.shared_key {
        verify_shared_key(query, rule, &mut out);
    }

    out
}

/// [`verify_plan`], raising the violations as a single
/// [`RelError::PlanVerification`] error.
pub fn verify_plan_strict(
    plan: &PhysicalPlan,
    query: &ConjunctiveQuery,
    arity_of: impl Fn(&str) -> Option<usize>,
    options: &VerifyOptions,
) -> RelResult<()> {
    let violations = verify_plan(plan, query, arity_of, options);
    if violations.is_empty() {
        Ok(())
    } else {
        Err(RelError::PlanVerification { violations })
    }
}

/// Term-by-term comparison of one compiled atom with its source atom.
fn verify_atom_terms(
    plan: &PhysicalPlan,
    i: usize,
    src: &crate::conjunctive::Atom,
    out: &mut Vec<PlanViolation>,
) {
    let atom = &plan.atoms[i];
    let num_columns = plan.col_names.len();
    // First-occurrence position of each source variable within this atom.
    let mut first_of: Vec<(&str, usize)> = Vec::new();
    for (pos, term) in src.terms.iter().enumerate() {
        match term {
            Term::Const(c) => {
                let matched = atom
                    .consts
                    .iter()
                    .any(|(p, v)| *p as usize == pos && v == c);
                if !matched {
                    out.push(PlanViolation::ConstantFilterMismatch {
                        atom: i,
                        position: pos,
                    });
                }
            }
            Term::Var(v) => match first_of.iter().find(|(name, _)| name == v) {
                Some(&(_, first_pos)) => {
                    // A repeat: must be a duplicate filter pointing at the
                    // first occurrence.
                    let matched = atom
                        .dups
                        .iter()
                        .any(|&(p, fp)| p as usize == pos && fp as usize == first_pos);
                    if !matched {
                        out.push(PlanViolation::VariableBindingMismatch {
                            atom: i,
                            position: pos,
                            variable: v.clone(),
                        });
                    }
                }
                None => {
                    first_of.push((v, pos));
                    // A first occurrence: must be a variable binding whose
                    // column name matches the source variable.
                    let matched = atom.vars.iter().any(|&(col, p)| {
                        p as usize == pos
                            && (col as usize) < num_columns
                            && plan.col_names[col as usize] == *v
                    });
                    if !matched {
                        out.push(PlanViolation::VariableBindingMismatch {
                            atom: i,
                            position: pos,
                            variable: v.clone(),
                        });
                    }
                }
            },
        }
    }
}

/// Number of atoms reachable from atom 0 walking edges between atoms that
/// share at least one column id.
fn reachable_atoms(plan: &PhysicalPlan) -> usize {
    let n = plan.atoms.len();
    let cols: Vec<Vec<ColId>> = plan
        .atoms
        .iter()
        .map(|a| a.vars.iter().map(|&(c, _)| c).collect())
        .collect();
    let mut seen = vec![false; n];
    let mut stack = vec![0usize];
    seen[0] = true;
    let mut count = 1;
    while let Some(i) = stack.pop() {
        for j in 0..n {
            if !seen[j] && cols[i].iter().any(|c| cols[j].contains(c)) {
                seen[j] = true;
                count += 1;
                stack.push(j);
            }
        }
    }
    count
}

/// Check a [`SharedKeyRule`] on the source query.
fn verify_shared_key(query: &ConjunctiveQuery, rule: &SharedKeyRule, out: &mut Vec<PlanViolation>) {
    let right_keys: Vec<&str> = query
        .body
        .iter()
        .filter(|a| a.relation == rule.right)
        .filter_map(|a| match a.terms.get(rule.position) {
            Some(Term::Var(v)) => Some(v.as_str()),
            _ => None,
        })
        .collect();
    for (i, atom) in query.body.iter().enumerate() {
        if atom.relation != rule.left {
            continue;
        }
        let shared = matches!(
            atom.terms.get(rule.position),
            Some(Term::Var(v)) if right_keys.contains(&v.as_str())
        );
        if !shared {
            out.push(PlanViolation::UnsharedKey {
                atom: i,
                relation: rule.left.clone(),
                partner: rule.right.clone(),
                position: rule.position,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conjunctive::Atom;
    use crate::value::Value;

    /// `H(x, z) :- R(x, y), S(y, z, z, 1)` — a small well-formed query whose
    /// compiled plan exercises constants, duplicates and shared variables.
    fn sample() -> (ConjunctiveQuery, PhysicalPlan) {
        let mut q = ConjunctiveQuery::new(["x", "z"]);
        q.push_atom(Atom::new("R", [Term::var("x"), Term::var("y")]));
        q.push_atom(Atom::new(
            "S",
            [
                Term::var("y"),
                Term::var("z"),
                Term::var("z"),
                Term::Const(Value::Int(1)),
            ],
        ));
        let plan = PhysicalPlan::compile(&q, arity).unwrap();
        (q, plan)
    }

    fn arity(name: &str) -> Option<usize> {
        match name {
            "R" => Some(2),
            "S" => Some(4),
            "T" => Some(2),
            _ => None,
        }
    }

    #[test]
    fn well_formed_plan_passes() {
        let (q, plan) = sample();
        assert_eq!(
            verify_plan(&plan, &q, arity, &VerifyOptions::default()),
            vec![]
        );
        assert!(verify_plan_strict(&plan, &q, arity, &VerifyOptions::default()).is_ok());
    }

    #[test]
    fn out_of_range_colid_is_reported() {
        let (q, mut plan) = sample();
        plan.atoms[0].vars[0].0 = 99;
        let violations = verify_plan(&plan, &q, arity, &VerifyOptions::default());
        assert!(violations.iter().any(|v| matches!(
            v,
            PlanViolation::ColIdOutOfRange {
                atom: 0,
                col: 99,
                ..
            }
        )));
    }

    #[test]
    fn out_of_range_input_slot_is_reported() {
        let (q, mut plan) = sample();
        plan.atoms[1].rel = 7;
        let violations = verify_plan(&plan, &q, arity, &VerifyOptions::default());
        assert!(violations.iter().any(|v| matches!(
            v,
            PlanViolation::InputSlotOutOfRange {
                atom: 1,
                slot: 7,
                ..
            }
        )));
    }

    #[test]
    fn disconnected_join_graph_is_reported() {
        // `H(x, w) :- R(x, y), T(w, u)` — no shared variable between atoms.
        let mut q = ConjunctiveQuery::new(["x", "w"]);
        q.push_atom(Atom::new("R", [Term::var("x"), Term::var("y")]));
        q.push_atom(Atom::new("T", [Term::var("w"), Term::var("u")]));
        let plan = PhysicalPlan::compile(&q, arity).unwrap();
        let violations = verify_plan(&plan, &q, arity, &VerifyOptions::default());
        assert!(violations.iter().any(|v| matches!(
            v,
            PlanViolation::DisconnectedJoinGraph {
                reachable: 1,
                total: 2
            }
        )));
    }

    #[test]
    fn unbound_head_column_is_reported() {
        let (q, mut plan) = sample();
        // Rebind the head's first column to a fresh, never-bound column id.
        plan.col_names.push("ghost".to_owned());
        plan.head[0] = (plan.col_names.len() - 1) as ColId;
        let violations = verify_plan(&plan, &q, arity, &VerifyOptions::default());
        assert!(violations.iter().any(|v| matches!(
            v,
            PlanViolation::UnboundHeadColumn { index: 0, column } if column == "ghost"
        )));
    }

    #[test]
    fn constant_filter_mismatch_is_reported() {
        let (q, mut plan) = sample();
        plan.atoms[1].consts[0].1 = Value::Int(2);
        let violations = verify_plan(&plan, &q, arity, &VerifyOptions::default());
        assert!(violations.iter().any(|v| matches!(
            v,
            PlanViolation::ConstantFilterMismatch {
                atom: 1,
                position: 3
            }
        )));
    }

    #[test]
    fn dropped_duplicate_filter_is_reported() {
        let (q, mut plan) = sample();
        plan.atoms[1].dups.clear();
        let violations = verify_plan(&plan, &q, arity, &VerifyOptions::default());
        // The missing filter surfaces both as incomplete position coverage
        // and as a variable-binding mismatch at the repeated position.
        assert!(violations
            .iter()
            .any(|v| matches!(v, PlanViolation::PositionCoverage { atom: 1, .. })));
        assert!(violations.iter().any(|v| matches!(
            v,
            PlanViolation::VariableBindingMismatch {
                atom: 1,
                position: 2,
                ..
            }
        )));
    }

    #[test]
    fn shared_key_rule_rejects_unshared_rdoc() {
        // Rdoc's strVal variable `s0` is not bound by any RdocW atom.
        let mut q = ConjunctiveQuery::new(["d1", "d2"]);
        q.push_atom(Atom::new(
            "Rdoc",
            [Term::var("d1"), Term::var("n0"), Term::var("s0")],
        ));
        q.push_atom(Atom::new(
            "RdocW",
            [Term::var("d2"), Term::var("n0"), Term::var("s1")],
        ));
        let arity = |name: &str| match name {
            "Rdoc" | "RdocW" => Some(3),
            _ => None,
        };
        let plan = PhysicalPlan::compile(&q, arity).unwrap();
        let options = VerifyOptions {
            shared_key: Some(SharedKeyRule {
                left: "Rdoc".to_owned(),
                right: "RdocW".to_owned(),
                position: 2,
            }),
        };
        let violations = verify_plan(&plan, &q, arity, &options);
        assert_eq!(
            violations,
            vec![PlanViolation::UnsharedKey {
                atom: 0,
                relation: "Rdoc".to_owned(),
                partner: "RdocW".to_owned(),
                position: 2,
            }]
        );
        // Fixing the share makes the rule pass.
        let mut ok = ConjunctiveQuery::new(["d1", "d2"]);
        ok.push_atom(Atom::new(
            "Rdoc",
            [Term::var("d1"), Term::var("n0"), Term::var("s0")],
        ));
        ok.push_atom(Atom::new(
            "RdocW",
            [Term::var("d2"), Term::var("n0"), Term::var("s0")],
        ));
        let plan = PhysicalPlan::compile(&ok, arity).unwrap();
        assert_eq!(verify_plan(&plan, &ok, arity, &options), vec![]);
    }

    #[test]
    fn strict_wraps_violations_in_error() {
        let (q, mut plan) = sample();
        plan.atoms[0].rel = 9;
        let err = verify_plan_strict(&plan, &q, arity, &VerifyOptions::default()).unwrap_err();
        match err {
            RelError::PlanVerification { violations } => assert!(!violations.is_empty()),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn violation_display_is_informative() {
        let v = PlanViolation::UnsharedKey {
            atom: 3,
            relation: "Rdoc".to_owned(),
            partner: "RdocW".to_owned(),
            position: 2,
        };
        let s = v.to_string();
        assert!(s.contains("Rdoc"));
        assert!(s.contains("RdocW"));
        assert!(s.contains('2'));
    }
}
