//! String interning.
//!
//! The Join Processor compares string values of XML nodes millions of times
//! (every value-join probe). Interning turns those comparisons into `u32`
//! equality and makes hash keys fixed width. The interner is also used for
//! variable names stored in the `RT`, `Rbin` and `RbinW` relations.

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// An interned string handle. Cheap to copy, hash and compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Symbol(u32);

impl Symbol {
    /// The raw interner index.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Reconstruct a symbol from a raw index. Only meaningful together with
    /// the interner that produced it.
    pub fn from_raw(raw: u32) -> Symbol {
        Symbol(raw)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym{}", self.0)
    }
}

/// A thread-safe string interner.
///
/// Interning is idempotent: interning the same text twice returns the same
/// [`Symbol`]. Resolution ([`resolve`](Self::resolve)) returns the original
/// text. The interner only grows; publish/subscribe engines typically bound
/// the distinct-value universe by the workload, and the MMQJP engine shares a
/// single interner across all witness relations.
#[derive(Debug, Default)]
pub struct StringInterner {
    inner: RwLock<InternerInner>,
}

#[derive(Debug, Default)]
struct InternerInner {
    map: HashMap<Arc<str>, Symbol>,
    strings: Vec<Arc<str>>,
}

impl StringInterner {
    /// Create an empty interner.
    pub fn new() -> Self {
        StringInterner::default()
    }

    /// Intern `text`, returning its symbol. Re-interning returns the same
    /// symbol.
    pub fn intern(&self, text: &str) -> Symbol {
        // Fast path: read lock only.
        {
            let inner = self.inner.read();
            if let Some(&sym) = inner.map.get(text) {
                return sym;
            }
        }
        let mut inner = self.inner.write();
        if let Some(&sym) = inner.map.get(text) {
            return sym;
        }
        let arc: Arc<str> = Arc::from(text);
        let sym = Symbol(inner.strings.len() as u32);
        inner.strings.push(arc.clone());
        inner.map.insert(arc, sym);
        sym
    }

    /// Look up a symbol without interning. Returns `None` if the text has
    /// never been interned.
    pub fn get(&self, text: &str) -> Option<Symbol> {
        self.inner.read().map.get(text).copied()
    }

    /// Resolve a symbol back to its text. Returns `None` for symbols from a
    /// different interner (out-of-range indices).
    pub fn resolve(&self, sym: Symbol) -> Option<Arc<str>> {
        self.inner.read().strings.get(sym.0 as usize).cloned()
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.inner.read().strings.len()
    }

    /// `true` when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Clone for StringInterner {
    fn clone(&self) -> Self {
        let inner = self.inner.read();
        StringInterner {
            inner: RwLock::new(InternerInner {
                map: inner.map.clone(),
                strings: inner.strings.clone(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;
    use std::thread;

    #[test]
    fn intern_is_idempotent() {
        let i = StringInterner::new();
        let a = i.intern("hello");
        let b = i.intern("hello");
        let c = i.intern("world");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.len(), 2);
        assert!(!i.is_empty());
    }

    #[test]
    fn resolve_roundtrip() {
        let i = StringInterner::new();
        let s = i.intern("Danny Ayers");
        assert_eq!(i.resolve(s).as_deref(), Some("Danny Ayers"));
        assert_eq!(i.get("Danny Ayers"), Some(s));
        assert_eq!(i.get("nobody"), None);
        assert!(i.resolve(Symbol::from_raw(999)).is_none());
    }

    #[test]
    fn empty_interner() {
        let i = StringInterner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }

    #[test]
    fn symbols_are_dense_indices() {
        let i = StringInterner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        assert_eq!(a.raw(), 0);
        assert_eq!(b.raw(), 1);
        assert_eq!(Symbol::from_raw(1), b);
        assert_eq!(b.to_string(), "sym1");
    }

    #[test]
    fn clone_preserves_contents() {
        let i = StringInterner::new();
        let a = i.intern("x");
        let j = i.clone();
        assert_eq!(j.get("x"), Some(a));
        // Interning new strings in the clone does not affect the original.
        j.intern("y");
        assert_eq!(i.get("y"), None);
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let i = StdArc::new(StringInterner::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let i = StdArc::clone(&i);
                thread::spawn(move || {
                    let mut syms = Vec::new();
                    for k in 0..100 {
                        syms.push((k, i.intern(&format!("value-{}", k % 25))));
                    }
                    let _ = t;
                    syms
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // The same text interned from different threads yields the same symbol.
        for window in results.windows(2) {
            for (a, b) in window[0].iter().zip(window[1].iter()) {
                assert_eq!(a.1, b.1);
            }
        }
        assert_eq!(i.len(), 25);
    }
}
