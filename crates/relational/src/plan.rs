//! Compiled physical plans for conjunctive queries, with a columnar,
//! late-materialization execution kernel.
//!
//! [`Database::evaluate`](crate::Database::evaluate) interprets a
//! [`ConjunctiveQuery`] from scratch on every call: column names are resolved
//! by string lookup, every atom is materialized into a binding relation
//! (cloning the matching tuples), and every hash join clones full combined
//! rows. A [`PhysicalPlan`] performs all of that resolution exactly once, at
//! compile time — variables are interned to dense [`ColId`]s, relation names
//! to input slots, constant and repeated-variable filters to positional
//! checks — and execution then operates on *row ids* over the columnar
//! [`Relation`] layout:
//!
//! * selections are per-constraint passes over contiguous column slices,
//!   producing row-id vectors (no tuple is copied and no row is assembled);
//! * join-key hashes for each atom's rows are computed **column-wise in
//!   batch** into a pooled buffer before the build/probe loop runs;
//! * each hash join produces strided row-id tuples — one id per already
//!   joined atom — keyed by [`FxHasher`](crate::FxHasher) value hashes with
//!   exact per-column verification on probe;
//! * full output tuples are materialized exactly once, at the final head
//!   projection, appended column-by-column (optionally deduplicated in the
//!   same pass).
//!
//! All executor buffers live in an [`ExecScratch`] pool the caller owns and
//! reuses across executions, so steady-state evaluation performs no
//! per-batch allocations beyond the result relation itself.
//!
//! The greedy join order is driven by **sampled selectivity estimates**
//! rather than raw cardinalities: each atom column's distinct-value count is
//! estimated from up to 64 hashed samples, and the planner picks the
//! connected atom minimizing the estimated intermediate size. This is what
//! keeps low-selectivity joins (e.g. two variable-name columns over the
//! whole `Rbin` state) from running early and exploding the intermediate.
//!
//! Execution replicates the interpreter *byte for byte*: the same
//! estimate-driven greedy connected join order (computed per execution from
//! the actual filtered inputs — the one planning decision that must stay
//! data-dependent), the same build-on-the-smaller-side hash joins, the same
//! output row order. The `properties.rs` proptest in the integration suite
//! certifies this equivalence on random relations and queries.

use crate::conjunctive::{ConjunctiveQuery, Term};
use crate::error::{RelError, RelResult};
use crate::fxhash::{FxHashMap, FxHasher};
use crate::relation::{Relation, RowRef};
use crate::schema::Schema;
use crate::segment::SegmentedRelation;
use crate::value::Value;
use std::hash::{Hash, Hasher};
use std::time::{Duration, Instant};

/// A dense column id assigned to each distinct query variable at compile
/// time. All runtime bookkeeping (bound-variable sets, key resolution, head
/// projection) uses these ids; variable *names* never appear on the hot
/// path.
pub type ColId = u32;

/// Sentinel for "no entry" in the executor's intrusive hash chains.
const NONE: u32 = u32::MAX;

/// Number of rows sampled per column for the distinct-count estimate.
pub(crate) const DISTINCT_SAMPLE: usize = 64;

/// One compiled body atom: its input slot plus the pre-resolved positional
/// filters and variable bindings.
#[derive(Debug, Clone)]
pub(crate) struct PhysAtom {
    /// Index into [`PhysicalPlan::relations`].
    pub(crate) rel: u32,
    /// `(position, constant)`: the column at `position` must equal the
    /// constant.
    pub(crate) consts: Vec<(u32, Value)>,
    /// `(position, first_position)`: intra-atom repeated variables; the two
    /// columns must be equal.
    pub(crate) dups: Vec<(u32, u32)>,
    /// The atom's distinct variables in first-occurrence order, each with
    /// the column position of its first occurrence.
    pub(crate) vars: Vec<(ColId, u32)>,
}

/// A conjunctive query compiled against fixed relation arities.
///
/// Compile once (at query-registration time), execute per batch with
/// [`PhysicalPlan::execute`] over borrowed inputs and a pooled
/// [`ExecScratch`].
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    pub(crate) head: Vec<ColId>,
    pub(crate) head_schema: Schema,
    pub(crate) atoms: Vec<PhysAtom>,
    pub(crate) relations: Vec<String>,
    pub(crate) col_names: Vec<String>,
}

impl PhysicalPlan {
    /// Compile a conjunctive query. `arity_of` supplies the arity of each
    /// relation the body mentions (`None` for unknown relations). Fails with
    /// the same errors interpretation would: [`RelError::MalformedQuery`]
    /// for structurally invalid queries or arity mismatches,
    /// [`RelError::UnknownRelation`] for unresolvable atoms.
    pub fn compile(
        query: &ConjunctiveQuery,
        arity_of: impl Fn(&str) -> Option<usize>,
    ) -> RelResult<PhysicalPlan> {
        query
            .validate()
            .map_err(|reason| RelError::MalformedQuery { reason })?;

        let mut col_names: Vec<String> = Vec::new();
        let col_of = |name: &str, col_names: &mut Vec<String>| -> ColId {
            match col_names.iter().position(|c| c == name) {
                Some(i) => i as ColId,
                None => {
                    col_names.push(name.to_owned());
                    (col_names.len() - 1) as ColId
                }
            }
        };

        let mut relations: Vec<String> = Vec::new();
        let mut atoms = Vec::with_capacity(query.body.len());
        for atom in &query.body {
            let arity = arity_of(&atom.relation).ok_or_else(|| RelError::UnknownRelation {
                relation: atom.relation.clone(),
            })?;
            if atom.terms.len() != arity {
                return Err(RelError::MalformedQuery {
                    reason: format!(
                        "atom {} has arity {}, relation has arity {}",
                        atom,
                        atom.terms.len(),
                        arity
                    ),
                });
            }
            let rel = match relations.iter().position(|r| r == &atom.relation) {
                Some(i) => i as u32,
                None => {
                    relations.push(atom.relation.clone());
                    (relations.len() - 1) as u32
                }
            };
            let mut consts = Vec::new();
            let mut dups = Vec::new();
            let mut vars: Vec<(ColId, u32)> = Vec::new();
            // First-occurrence position of each variable within this atom.
            let mut first: Vec<(&str, u32)> = Vec::new();
            for (pos, term) in atom.terms.iter().enumerate() {
                match term {
                    Term::Const(c) => consts.push((pos as u32, c.clone())),
                    Term::Var(v) => match first.iter().find(|(name, _)| name == v) {
                        Some(&(_, first_pos)) => dups.push((pos as u32, first_pos)),
                        None => {
                            first.push((v, pos as u32));
                            vars.push((col_of(v, &mut col_names), pos as u32));
                        }
                    },
                }
            }
            atoms.push(PhysAtom {
                rel,
                consts,
                dups,
                vars,
            });
        }

        let head: Vec<ColId> = query
            .head
            .iter()
            .map(|h| {
                col_names
                    .iter()
                    .position(|c| c == h)
                    .map(|i| i as ColId)
                    .ok_or_else(|| RelError::MalformedQuery {
                        reason: format!("head variable `{h}` is not bound in the body"),
                    })
            })
            .collect::<RelResult<_>>()?;

        // The head may repeat a variable (the interpreter's projection path
        // allows duplicate output columns); build the schema through
        // `project`, which accepts duplicates, rather than `Schema::new`,
        // which asserts uniqueness.
        let mut distinct_head: Vec<&str> = Vec::new();
        for h in &query.head {
            if !distinct_head.contains(&h.as_str()) {
                distinct_head.push(h);
            }
        }
        let head_refs: Vec<&str> = query.head.iter().map(String::as_str).collect();
        let head_schema = Schema::new(distinct_head)
            .project(&head_refs)
            .expect("head names project from themselves"); // lint:allow projecting a schema onto its own names

        Ok(PhysicalPlan {
            head,
            head_schema,
            atoms,
            relations,
            col_names,
        })
    }

    /// The distinct relation names the plan reads, in input-slot order.
    /// [`execute`](Self::execute) expects one [`PlanInput`] per entry, in
    /// this order.
    pub fn relations(&self) -> &[String] {
        &self.relations
    }

    /// The output schema (the head variables, in head order).
    pub fn head_schema(&self) -> &Schema {
        &self.head_schema
    }

    /// Number of body atoms.
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// Number of distinct variables (compiled [`ColId`]s).
    pub fn num_columns(&self) -> usize {
        self.col_names.len()
    }

    /// Execute the plan over `inputs` (one per [`relations`](Self::relations)
    /// entry, same order), reusing `scratch` for every internal buffer. With
    /// `distinct`, duplicate head tuples are dropped in the materialization
    /// pass (first occurrence wins — identical to
    /// [`Relation::distinct`] applied afterwards, without the extra copy).
    ///
    /// # Panics
    /// Panics if `inputs.len()` differs from the number of plan relations.
    pub fn execute(
        &self,
        inputs: &[PlanInput<'_>],
        scratch: &mut ExecScratch,
        distinct: bool,
    ) -> Relation {
        assert_eq!(
            inputs.len(),
            self.relations.len(),
            "one PlanInput per plan relation"
        );
        let ExecScratch {
            sels,
            samples,
            ht,
            chain,
            hits,
            hash_states,
            hash_buf,
            cur,
            next,
            out_ht,
            out_chain,
            bound,
            lens,
            filtered,
            order,
            remaining,
            step_rels,
            acc,
            left_keys,
            right_keys,
            head_specs,
            rows_materialized,
            scratch_reuses,
            materialize_nanos,
            primed,
        } = scratch;
        if *primed {
            *scratch_reuses += 1;
        } else {
            *primed = true;
        }

        let n = self.atoms.len();
        let mut out = Relation::new(self.head_schema.clone());
        if n == 0 {
            return out;
        }

        // ---- Selection: per-atom row-id vectors -------------------------
        // Each constraint is one pass over a contiguous column slice: the
        // first constraint seeds the row-id vector, the rest filter it.
        while sels.len() < n {
            sels.push(Vec::new());
        }
        lens.clear();
        filtered.clear();
        for (i, atom) in self.atoms.iter().enumerate() {
            let input = &inputs[atom.rel as usize];
            if atom.consts.is_empty() && atom.dups.is_empty() {
                // Unfiltered atom: the selection is the whole relation; no
                // row-id vector is materialized.
                filtered.push(false);
                lens.push(input.len());
            } else {
                select_atom(atom, input, &mut sels[i]);
                filtered.push(true);
                lens.push(sels[i].len() as u32);
            }
        }
        // A conjunction with an empty atom is empty, whatever the rest holds.
        if lens.contains(&0) {
            return out;
        }

        // ---- Sampled column hashes per atom -----------------------------
        // Up to [`DISTINCT_SAMPLE`] evenly strided row samples per atom,
        // hashed per variable column (flattened column-major). The join
        // order estimates the distinct count of any bound-column
        // *combination* from them, which — unlike per-column estimates
        // multiplied under an independence assumption — stays honest for
        // correlated columns. Only multi-atom bodies need them.
        while samples.len() < n {
            samples.push(Vec::new());
        }
        if n > 1 {
            for (i, atom) in self.atoms.iter().enumerate() {
                let input = &inputs[atom.rel as usize];
                let nrows = lens[i] as usize;
                let s = &mut samples[i];
                s.clear();
                let sc = nrows.min(DISTINCT_SAMPLE);
                let step = nrows / sc; // nrows >= 1: empty atoms returned above
                if filtered[i] {
                    let sel = &sels[i];
                    for &(_, pos) in &atom.vars {
                        for j in 0..sc {
                            s.push(hash_value(input.value(sel[j * step], pos)));
                        }
                    }
                } else {
                    for &(_, pos) in &atom.vars {
                        for j in 0..sc {
                            s.push(hash_value(input.value((j * step) as u32, pos)));
                        }
                    }
                }
            }
        }

        // ---- Join order (replicates the interpreter's greedy planner) ---
        join_order(
            &self.atoms,
            lens,
            samples,
            self.col_names.len(),
            bound,
            remaining,
            order,
        );
        step_rels.clear();
        step_rels.extend(order.iter().map(|&i| self.atoms[i].rel));

        // ---- Pipeline of row-id hash joins ------------------------------
        // `cur` holds the intermediate result: `stride` row ids per logical
        // row, one per already joined atom (in `order` position). `acc` maps
        // each bound column to the `(step, position)` it is fetched from.
        acc.clear();
        let first = order[0];
        cur.clear();
        if filtered[first] {
            cur.extend_from_slice(&sels[first]);
        } else {
            cur.extend(0..lens[first]);
        }
        for (col, pos) in &self.atoms[first].vars {
            acc.push((*col, 0, *pos));
        }
        let mut stride = 1usize;

        for (step, &ai) in order.iter().enumerate().skip(1) {
            let atom = &self.atoms[ai];
            let right = &inputs[atom.rel as usize];
            // Key columns: the atom's variables already bound on the left.
            left_keys.clear();
            right_keys.clear();
            for (col, pos) in &atom.vars {
                if let Some(&(_, s, p)) = acc.iter().find(|(c, _, _)| c == col) {
                    left_keys.push((s, p));
                    right_keys.push(*pos);
                }
            }
            let left_rows = cur.len() / stride;
            let right_rows = lens[ai] as usize;
            let right_sel: Option<&[u32]> = if filtered[ai] { Some(&sels[ai]) } else { None };
            let left = LeftRows {
                cur: cur.as_slice(),
                stride,
                inputs,
                step_rels: step_rels.as_slice(),
            };
            // Batch the right side's key hashes column-wise before the
            // build/probe loop (both branches consume `hash_buf[r]`).
            if !left_keys.is_empty() {
                batch_hashes(
                    right,
                    right_sel,
                    right_keys,
                    right_rows,
                    hash_states,
                    hash_buf,
                );
            }

            next.clear();
            if left_keys.is_empty() {
                // Disconnected body: cross product, left-outer order.
                for l in 0..left_rows {
                    for r in 0..right_rows {
                        next.extend_from_slice(&cur[l * stride..(l + 1) * stride]);
                        next.push(base_id(right_sel, r));
                    }
                }
            } else if left_rows <= right_rows {
                // Build on the intermediate, probe with the atom's rows —
                // build-on-the-smaller-side, larger side iterated in order.
                ht.clear();
                chain.clear();
                chain.resize(left_rows, NONE);
                for (l, link) in chain.iter_mut().enumerate() {
                    let h = left.hash_key(l, left_keys);
                    let slot = ht.entry(h).or_insert(NONE);
                    *link = *slot;
                    *slot = l as u32;
                }
                for (r, &h) in hash_buf.iter().enumerate().take(right_rows) {
                    let rid = base_id(right_sel, r);
                    hits.clear();
                    let mut cand = ht.get(&h).copied().unwrap_or(NONE);
                    while cand != NONE {
                        if left.key_equals(cand as usize, left_keys, right, rid, right_keys) {
                            hits.push(cand);
                        }
                        cand = chain[cand as usize];
                    }
                    // The chain yields descending build order; the
                    // interpreter's index probes in ascending (insertion)
                    // order.
                    for &l in hits.iter().rev() {
                        let l = l as usize;
                        next.extend_from_slice(&cur[l * stride..(l + 1) * stride]);
                        next.push(rid);
                    }
                }
            } else {
                // Build on the atom's rows, probe with the intermediate.
                ht.clear();
                chain.clear();
                chain.resize(right_rows, NONE);
                for (r, link) in chain.iter_mut().enumerate() {
                    let slot = ht.entry(hash_buf[r]).or_insert(NONE);
                    *link = *slot;
                    *slot = r as u32;
                }
                for l in 0..left_rows {
                    let h = left.hash_key(l, left_keys);
                    hits.clear();
                    let mut cand = ht.get(&h).copied().unwrap_or(NONE);
                    while cand != NONE {
                        let rid = base_id(right_sel, cand as usize);
                        if left.key_equals(l, left_keys, right, rid, right_keys) {
                            hits.push(cand);
                        }
                        cand = chain[cand as usize];
                    }
                    for &r in hits.iter().rev() {
                        next.extend_from_slice(&cur[l * stride..(l + 1) * stride]);
                        next.push(base_id(right_sel, r as usize));
                    }
                }
            }
            std::mem::swap(cur, next);
            stride += 1;
            if cur.is_empty() {
                return out;
            }
            for (col, pos) in &atom.vars {
                if !acc.iter().any(|(c, _, _)| c == col) {
                    acc.push((*col, step as u32, *pos));
                }
            }
        }

        // ---- Materialize: head projection, tuples built exactly once ----
        // Values are appended column-by-column into the output's columnar
        // storage; with `distinct`, rows are hashed and compared in place
        // *before* anything is cloned.
        let mat_start = Instant::now();
        head_specs.clear();
        for col in &self.head {
            let &(_, s, p) = acc
                .iter()
                .find(|(c, _, _)| c == col)
                .expect("validate() guarantees head variables are bound"); // lint:allow validate() bound every head variable
            head_specs.push((s, p));
        }
        let rows = cur.len() / stride;
        if distinct {
            out_ht.clear();
            out_chain.clear();
        }
        let left = LeftRows {
            cur: cur.as_slice(),
            stride,
            inputs,
            step_rels: step_rels.as_slice(),
        };
        let mut out_len = 0usize;
        for row_idx in 0..rows {
            if distinct {
                // Dedup *before* building anything: hash and compare the
                // projected values in place, so duplicate rows are never
                // materialized at all.
                let mut hasher = FxHasher::default();
                for &(s, p) in head_specs.iter() {
                    left.value(row_idx, s, p).hash(&mut hasher);
                }
                let h = hasher.finish();
                let mut cand = out_ht.get(&h).copied().unwrap_or(NONE);
                let mut duplicate = false;
                while cand != NONE {
                    if head_specs.iter().enumerate().all(|(k, &(s, p))| {
                        left.value(row_idx, s, p) == &out.col_values(k)[cand as usize]
                    }) {
                        duplicate = true;
                        break;
                    }
                    cand = out_chain[cand as usize];
                }
                if duplicate {
                    continue;
                }
                let slot = out_ht.entry(h).or_insert(NONE);
                out_chain.push(*slot);
                *slot = out_len as u32;
            }
            let cols = out.cols_mut();
            for (k, &(s, p)) in head_specs.iter().enumerate() {
                cols[k].push(left.value(row_idx, s, p).clone());
            }
            out_len += 1;
        }
        out.set_len(out_len);
        *rows_materialized += out_len as u64;
        *materialize_nanos += mat_start.elapsed().as_nanos() as u64;
        out
    }
}

/// Fill `sel` with the row ids of `input` satisfying the atom's constant and
/// repeated-variable constraints. Each constraint is one tight pass over a
/// contiguous column slice (per chunk, for segmented inputs); row ids come
/// out ascending.
fn select_atom(atom: &PhysAtom, input: &PlanInput<'_>, sel: &mut Vec<u32>) {
    sel.clear();
    match input {
        PlanInput::Flat(rel) => select_chunk(atom, rel, 0, sel),
        PlanInput::Chunked(c) => {
            for (k, rel) in c.chunks.iter().enumerate() {
                select_chunk(atom, rel, c.starts[k], sel);
            }
        }
    }
}

/// One chunk's share of [`select_atom`]: seed from the first constraint's
/// column scan, then filter the candidates one constraint (one column pass)
/// at a time.
fn select_chunk(atom: &PhysAtom, rel: &Relation, base: u32, sel: &mut Vec<u32>) {
    if rel.is_empty() {
        return;
    }
    let start = sel.len();
    let mut dups = atom.dups.as_slice();
    if let Some((pos, c)) = atom.consts.first() {
        let col = rel.col_values(*pos as usize);
        for (i, v) in col.iter().enumerate() {
            if v == c {
                sel.push(base + i as u32);
            }
        }
    } else {
        let (pos, first) = dups[0];
        let (a, b) = (rel.col_values(pos as usize), rel.col_values(first as usize));
        for i in 0..rel.len() {
            if a[i] == b[i] {
                sel.push(base + i as u32);
            }
        }
        dups = &dups[1..];
    }
    for (pos, c) in atom.consts.iter().skip(1) {
        let col = rel.col_values(*pos as usize);
        retain_from(sel, start, |rid| &col[(rid - base) as usize] == c);
    }
    for &(pos, first) in dups {
        let a = rel.col_values(pos as usize);
        let b = rel.col_values(first as usize);
        retain_from(sel, start, |rid| {
            a[(rid - base) as usize] == b[(rid - base) as usize]
        });
    }
}

/// In-place filter of `sel[start..]`, preserving order.
fn retain_from(sel: &mut Vec<u32>, start: usize, mut keep: impl FnMut(u32) -> bool) {
    let mut w = start;
    for r in start..sel.len() {
        let v = sel[r];
        if keep(v) {
            sel[w] = v;
            w += 1;
        }
    }
    sel.truncate(w);
}

/// Compute the key hashes of the right (atom) side **column-wise**: one pass
/// per key column over the column's values (contiguous slices for unfiltered
/// flat/chunked inputs, gathered through the selection vector otherwise),
/// folding into a pooled row of [`FxHasher`] states. Equivalent to hashing
/// each row's key values in order, but touches memory column-by-column.
fn batch_hashes(
    input: &PlanInput<'_>,
    sel: Option<&[u32]>,
    keys: &[u32],
    rows: usize,
    states: &mut Vec<FxHasher>,
    out: &mut Vec<u64>,
) {
    states.clear();
    states.resize(rows, FxHasher::default());
    for &p in keys.iter() {
        match sel {
            Some(ids) => {
                for (i, &rid) in ids.iter().enumerate() {
                    input.value(rid, p).hash(&mut states[i]);
                }
            }
            None => match input {
                PlanInput::Flat(rel) => {
                    let col = rel.col_values(p as usize);
                    for (i, v) in col.iter().enumerate() {
                        v.hash(&mut states[i]);
                    }
                }
                PlanInput::Chunked(c) => {
                    let mut i = 0usize;
                    for rel in &c.chunks {
                        for v in rel.col_values(p as usize) {
                            v.hash(&mut states[i]);
                            i += 1;
                        }
                    }
                }
            },
        }
    }
    out.clear();
    out.extend(states.iter().map(FxHasher::finish));
}

/// The base row id behind selection position `pos` (`sel[pos]`, or `pos`
/// itself for unfiltered atoms).
#[inline]
fn base_id(sel: Option<&[u32]>, pos: usize) -> u32 {
    match sel {
        Some(ids) => ids[pos],
        None => pos as u32,
    }
}

/// The Fx hash of one value (used for sampled distinct estimates; shared
/// with the interpreter so both sides derive identical estimates).
#[inline]
pub(crate) fn hash_value(v: &Value) -> u64 {
    let mut h = FxHasher::default();
    v.hash(&mut h);
    h.finish()
}

/// Combine a per-column sample hash into a running per-row tuple hash, so a
/// set of columns sampled independently can be treated as one composite
/// column. Shared with the interpreter's planner so both sides compute
/// identical estimates; order-sensitive, but both planners fold columns in
/// the same first-occurrence variable order.
#[inline]
pub(crate) fn mix_hash(acc: u64, h: u64) -> u64 {
    (acc.rotate_left(5) ^ h).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Estimate the number of distinct values among `n` rows from the sampled
/// hashes in `hs` (one per sampled row): scale the sample's distinct count
/// to the full row count and clamp to `[distinct, n]`. Sorts `hs` in place;
/// deterministic. Returns 0 for an empty sample.
pub(crate) fn scaled_distinct(hs: &mut [u64], n: usize) -> u64 {
    if hs.is_empty() {
        return 0;
    }
    hs.sort_unstable();
    let mut distinct = 1u64;
    for w in hs.windows(2) {
        if w[0] != w[1] {
            distinct += 1;
        }
    }
    ((distinct as u128 * n as u128 / hs.len() as u128) as u64).clamp(distinct, n as u64)
}

/// Estimate the number of distinct values among `n` rows from up to
/// [`DISTINCT_SAMPLE`] evenly strided hashed samples. Deterministic;
/// `hash_at` receives row positions `0, step, 2*step, ...`.
#[cfg(test)]
pub(crate) fn estimate_distinct(n: usize, mut hash_at: impl FnMut(usize) -> u64) -> u64 {
    if n == 0 {
        return 0;
    }
    let sample = n.min(DISTINCT_SAMPLE);
    let step = n / sample;
    let mut hashes = [0u64; DISTINCT_SAMPLE];
    for (j, slot) in hashes[..sample].iter_mut().enumerate() {
        *slot = hash_at(j * step);
    }
    scaled_distinct(&mut hashes[..sample], n)
}

/// One join-order candidate: `(position in remaining, connected, filtered
/// len, sampled distinct estimate of the combined shared-column tuple,
/// shared bound vars)`.
type OrderCand = (usize, bool, u64, u64, usize);

/// `true` when candidate `c` beats `b`: connected first, then the smaller
/// estimated *growth ratio* `len / distinct(shared-column tuple)` — the
/// factor the candidate multiplies the intermediate by — then more shared
/// variables, fewer rows and earlier body position (the stable default).
/// Ratios are compared exactly by cross-multiplying in 128 bits
/// (`c.len * b.sel` vs `b.len * c.sel`), never by dividing: absolute output
/// estimates compound the error of every previous step and collapse to ties
/// under integer division, which is precisely how a tag-only join that
/// multiplies the intermediate 30× can end up ranked above a string-value
/// join that keeps it flat.
#[inline]
fn order_better(c: OrderCand, b: OrderCand) -> bool {
    if c.1 != b.1 {
        return c.1;
    }
    let (c_ratio, b_ratio) = (
        u128::from(c.2) * u128::from(b.3),
        u128::from(b.2) * u128::from(c.3),
    );
    if c_ratio != b_ratio {
        return c_ratio < b_ratio;
    }
    if c.4 != b.4 {
        return c.4 > b.4;
    }
    if c.2 != b.2 {
        return c.2 < b.2;
    }
    false
}

/// Replicates [`Database`](crate::Database)'s greedy connected join ordering
/// over the compiled metadata: start from the smallest (filtered) atom, then
/// repeatedly take the connected atom with the smallest estimated growth
/// ratio `|atom| / distinct(shared-column tuple)` — tie-breaking on more
/// shared variables, fewer rows and body position. The divisor is a sampled
/// distinct estimate of the shared columns *combined* (per-sample hashes
/// mixed into one tuple hash), not a product of per-column estimates: a
/// product assumes independence and overstates the selectivity of
/// correlated columns, while the combined estimate both pulls a
/// many-variable atom (e.g. a template's `RT`) in early and keeps a
/// correlated tag-pair join ranked behind a genuinely selective one.
/// Disconnected atoms (cross products) are only taken when no connected
/// atom remains. Writes the order into the pooled `order` buffer.
fn join_order(
    atoms: &[PhysAtom],
    lens: &[u32],
    samples: &[Vec<u64>],
    num_cols: usize,
    bound: &mut Vec<bool>,
    remaining: &mut Vec<usize>,
    order: &mut Vec<usize>,
) {
    let n = atoms.len();
    remaining.clear();
    remaining.extend(0..n);
    remaining.sort_by_key(|&i| lens[i]);
    let first = remaining.remove(0);
    order.clear();
    order.push(first);
    bound.clear();
    bound.resize(num_cols, false);
    for (col, _) in &atoms[first].vars {
        bound[*col as usize] = true;
    }
    while !remaining.is_empty() {
        let mut best: Option<OrderCand> = None;
        for (pos, &i) in remaining.iter().enumerate() {
            let nrows = lens[i] as usize;
            let sc = nrows.min(DISTINCT_SAMPLE);
            let mut combo = [0u64; DISTINCT_SAMPLE];
            let mut shared = 0usize;
            for (k, (col, _)) in atoms[i].vars.iter().enumerate() {
                if bound[*col as usize] {
                    shared += 1;
                    let hs = &samples[i][k * sc..(k + 1) * sc];
                    for (c, &h) in combo[..sc].iter_mut().zip(hs) {
                        *c = mix_hash(*c, h);
                    }
                }
            }
            // Distinct estimate of the *combined* shared-column tuple.
            let sel = if shared > 0 && sc > 0 {
                scaled_distinct(&mut combo[..sc], nrows).max(1)
            } else {
                1
            };
            let cand = (pos, shared > 0, u64::from(lens[i]), sel, shared);
            best = Some(match best {
                None => cand,
                Some(b) => {
                    if order_better(cand, b) {
                        cand
                    } else {
                        b
                    }
                }
            });
        }
        let (pos, ..) = best.expect("remaining is non-empty"); // lint:allow loop ran over non-empty remaining
        let i = remaining.remove(pos);
        for (col, _) in &atoms[i].vars {
            bound[*col as usize] = true;
        }
        order.push(i);
    }
}

/// The left (intermediate) side of a join step: strided row-id tuples plus
/// the tables their column values are fetched from (`step_rels` maps each
/// join step to its input slot).
#[derive(Clone, Copy)]
struct LeftRows<'b> {
    cur: &'b [u32],
    stride: usize,
    inputs: &'b [PlanInput<'b>],
    step_rels: &'b [u32],
}

impl<'b> LeftRows<'b> {
    /// The value of intermediate row `l` at accumulated source `(s, p)`.
    #[inline]
    fn value(&self, l: usize, s: u32, p: u32) -> &'b Value {
        let base = self.cur[l * self.stride + s as usize];
        self.inputs[self.step_rels[s as usize] as usize].value(base, p)
    }

    /// Hash the join key of intermediate row `l`.
    #[inline]
    fn hash_key(&self, l: usize, left_keys: &[(u32, u32)]) -> u64 {
        let mut h = FxHasher::default();
        for &(s, p) in left_keys {
            self.value(l, s, p).hash(&mut h);
        }
        h.finish()
    }

    /// Exact key comparison behind the hash (collisions must not join),
    /// value-by-value against the right input's columns.
    #[inline]
    fn key_equals(
        &self,
        l: usize,
        left_keys: &[(u32, u32)],
        right: &PlanInput<'b>,
        rid: u32,
        right_keys: &[u32],
    ) -> bool {
        left_keys
            .iter()
            .zip(right_keys)
            .all(|(&(s, p), &rp)| self.value(l, s, p) == right.value(rid, rp))
    }
}

/// A random-access view over the buckets of a [`SegmentedRelation`],
/// prepared once per batch (O(#buckets)) so plan execution can address
/// segmented join state by global row id without flattening it.
#[derive(Debug, Clone, Default)]
pub struct ChunkedRows<'a> {
    starts: Vec<u32>,
    chunks: Vec<&'a Relation>,
    len: u32,
}

impl<'a> ChunkedRows<'a> {
    /// Build the view over a segmented relation's resident buckets (bucket
    /// order, then insertion order — the relation's iteration order).
    ///
    /// # Panics
    /// Panics if the relation holds `u32::MAX` rows or more: row ids are
    /// `u32` throughout the executor (with `u32::MAX` as the chain
    /// sentinel), and the bound is enforced here rather than wrapping
    /// silently.
    pub fn from_segmented(relation: &'a SegmentedRelation) -> Self {
        assert!(
            relation.len() < u32::MAX as usize,
            "plan inputs are limited to u32::MAX - 1 rows, got {}",
            relation.len()
        );
        let mut starts = Vec::with_capacity(relation.num_buckets());
        let mut chunks = Vec::with_capacity(relation.num_buckets());
        let mut len = 0u32;
        for (_, segment) in relation.buckets() {
            starts.push(len);
            chunks.push(segment);
            len += segment.len() as u32;
        }
        ChunkedRows {
            starts,
            chunks,
            len,
        }
    }

    /// Total number of rows.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// `true` when no bucket holds any row.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The chunk index and in-chunk offset of global row `i`.
    #[inline]
    fn locate(&self, i: u32) -> (usize, u32) {
        debug_assert!(i < self.len);
        let chunk = self.starts.partition_point(|&s| s <= i) - 1;
        (chunk, i - self.starts[chunk])
    }

    #[inline]
    fn get(&self, i: u32) -> RowRef<'a> {
        let (chunk, off) = self.locate(i);
        self.chunks[chunk].row(off as usize)
    }

    #[inline]
    fn value(&self, i: u32, pos: u32) -> &'a Value {
        let (chunk, off) = self.locate(i);
        &self.chunks[chunk].col_values(pos as usize)[off as usize]
    }
}

/// One borrowed plan input: a flat columnar relation or a chunked view over
/// segmented storage. Cheap to copy; all variants give O(1)-ish row access
/// (chunked access is a binary search over the bucket starts).
#[derive(Debug, Clone, Copy)]
pub enum PlanInput<'a> {
    /// A flat [`Relation`].
    Flat(&'a Relation),
    /// Rows of a [`SegmentedRelation`], via a prepared [`ChunkedRows`] view.
    Chunked(&'a ChunkedRows<'a>),
}

impl<'a> PlanInput<'a> {
    /// Number of rows.
    ///
    /// # Panics
    /// Panics for flat inputs of `u32::MAX` rows or more (row ids are `u32`
    /// throughout the executor; see [`ChunkedRows::from_segmented`]).
    pub fn len(&self) -> u32 {
        match self {
            PlanInput::Flat(rel) => {
                assert!(
                    rel.len() < u32::MAX as usize,
                    "plan inputs are limited to u32::MAX - 1 rows, got {}",
                    rel.len()
                );
                rel.len() as u32
            }
            PlanInput::Chunked(rows) => rows.len(),
        }
    }

    /// `true` when the input holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The row with the given id.
    #[inline]
    pub fn get(&self, i: u32) -> RowRef<'a> {
        match self {
            PlanInput::Flat(rel) => rel.row(i as usize),
            PlanInput::Chunked(rows) => rows.get(i),
        }
    }

    /// The value of row `i` at column position `pos`.
    #[inline]
    pub fn value(&self, i: u32, pos: u32) -> &'a Value {
        match self {
            PlanInput::Flat(rel) => &rel.col_values(pos as usize)[i as usize],
            PlanInput::Chunked(rows) => rows.value(i, pos),
        }
    }
}

impl<'a> From<&'a Relation> for PlanInput<'a> {
    fn from(r: &'a Relation) -> Self {
        PlanInput::Flat(r)
    }
}

impl<'a> From<&'a ChunkedRows<'a>> for PlanInput<'a> {
    fn from(r: &'a ChunkedRows<'a>) -> Self {
        // A single resident bucket — the common case when window pruning is
        // off (everything lives in bucket 0) — degrades to a flat relation,
        // skipping the per-access bucket search entirely.
        match r.chunks.as_slice() {
            [only] => PlanInput::Flat(only),
            _ => PlanInput::Chunked(r),
        }
    }
}

/// The pooled executor state: selection vectors, sampled column hashes,
/// join hash tables (intrusive chains — clearing never frees the buckets),
/// the batched key-hash buffers, intermediate row-id buffers and the
/// distinct table. Owned by the caller (the MMQJP engine keeps one per
/// engine) and reused across every plan execution, so steady-state
/// evaluation allocates nothing but the output relation.
#[derive(Debug, Default)]
pub struct ExecScratch {
    sels: Vec<Vec<u32>>,
    samples: Vec<Vec<u64>>,
    ht: FxHashMap<u64, u32>,
    chain: Vec<u32>,
    hits: Vec<u32>,
    hash_states: Vec<FxHasher>,
    hash_buf: Vec<u64>,
    cur: Vec<u32>,
    next: Vec<u32>,
    out_ht: FxHashMap<u64, u32>,
    out_chain: Vec<u32>,
    bound: Vec<bool>,
    lens: Vec<u32>,
    filtered: Vec<bool>,
    order: Vec<usize>,
    remaining: Vec<usize>,
    step_rels: Vec<u32>,
    acc: Vec<(ColId, u32, u32)>,
    left_keys: Vec<(u32, u32)>,
    right_keys: Vec<u32>,
    head_specs: Vec<(u32, u32)>,
    rows_materialized: u64,
    scratch_reuses: u64,
    materialize_nanos: u64,
    primed: bool,
}

impl ExecScratch {
    /// Create an empty scratch pool.
    pub fn new() -> Self {
        ExecScratch::default()
    }

    /// Output tuples materialized across all executions (each result row is
    /// built exactly once, at the final projection).
    pub fn rows_materialized(&self) -> u64 {
        self.rows_materialized
    }

    /// Executions that ran entirely on pooled buffers (every execution after
    /// the first).
    pub fn scratch_reuses(&self) -> u64 {
        self.scratch_reuses
    }

    /// Cumulative wall-clock time spent in the materialization pass (head
    /// projection + inline dedup) across all executions. Lets callers split
    /// "joining row ids" from "building output tuples" in their per-stage
    /// timings.
    pub fn materialize_time(&self) -> Duration {
        Duration::from_nanos(self.materialize_nanos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conjunctive::Atom;
    use crate::database::{relation_from_rows, Database};

    fn edges_db() -> (Database, Vec<(String, Relation)>) {
        let edge = relation_from_rows(
            ["src", "dst"],
            vec![
                [Value::int(1), Value::int(2)],
                [Value::int(2), Value::int(3)],
                [Value::int(3), Value::int(4)],
                [Value::int(2), Value::int(4)],
            ],
        );
        let label = relation_from_rows(
            ["node", "color"],
            vec![
                [Value::int(1), Value::str("red")],
                [Value::int(2), Value::str("blue")],
                [Value::int(3), Value::str("red")],
                [Value::int(4), Value::str("blue")],
            ],
        );
        let mut db = Database::new();
        db.register("edge", edge.clone());
        db.register("label", label.clone());
        (
            db,
            vec![("edge".to_owned(), edge), ("label".to_owned(), label)],
        )
    }

    fn run_both(query: &ConjunctiveQuery) -> (Relation, Relation) {
        let (db, rels) = edges_db();
        let interpreted = db.evaluate(query).unwrap();
        let plan = PhysicalPlan::compile(query, |name| {
            rels.iter()
                .find(|(n, _)| n == name)
                .map(|(_, r)| r.schema().arity())
        })
        .unwrap();
        let inputs: Vec<PlanInput<'_>> = plan
            .relations()
            .iter()
            .map(|name| {
                PlanInput::from(
                    &rels
                        .iter()
                        .find(|(n, _)| n == name)
                        .expect("plan relation exists")
                        .1,
                )
            })
            .collect();
        let mut scratch = ExecScratch::new();
        let compiled = plan.execute(&inputs, &mut scratch, false);
        (compiled, interpreted)
    }

    #[test]
    fn two_hop_paths_match_interpreter_byte_for_byte() {
        let q = ConjunctiveQuery::new(["X", "Z"])
            .atom(Atom::new("edge", [Term::var("X"), Term::var("Y")]))
            .atom(Atom::new("edge", [Term::var("Y"), Term::var("Z")]));
        let (compiled, interpreted) = run_both(&q);
        assert_eq!(compiled, interpreted);
        assert_eq!(compiled.len(), 3);
    }

    #[test]
    fn constants_and_repeated_variables() {
        let q = ConjunctiveQuery::new(["Z"])
            .atom(Atom::new("edge", [Term::constant(2i64), Term::var("Z")]));
        let (compiled, interpreted) = run_both(&q);
        assert_eq!(compiled, interpreted);
        assert_eq!(compiled.len(), 2);

        let mut db = Database::new();
        let pair = relation_from_rows(
            ["a", "b"],
            vec![
                [Value::int(1), Value::int(1)],
                [Value::int(1), Value::int(2)],
                [Value::int(3), Value::int(3)],
            ],
        );
        db.register("pair", pair.clone());
        let q =
            ConjunctiveQuery::new(["X"]).atom(Atom::new("pair", [Term::var("X"), Term::var("X")]));
        let plan = PhysicalPlan::compile(&q, |_| Some(2)).unwrap();
        let mut scratch = ExecScratch::new();
        let compiled = plan.execute(&[PlanInput::from(&pair)], &mut scratch, false);
        assert_eq!(compiled, db.evaluate(&q).unwrap());
        assert_eq!(compiled.len(), 2);
    }

    #[test]
    fn three_way_join_and_distinct() {
        let q = ConjunctiveQuery::new(["C"])
            .atom(Atom::new("edge", [Term::var("X"), Term::var("Y")]))
            .atom(Atom::new("label", [Term::var("X"), Term::var("C")]))
            .atom(Atom::new("label", [Term::var("Y"), Term::var("C2")]));
        let (compiled, interpreted) = run_both(&q);
        assert_eq!(compiled, interpreted);

        // Distinct in the materialization pass == Relation::distinct after.
        let (db, rels) = edges_db();
        let plan = PhysicalPlan::compile(&q, |name| {
            rels.iter()
                .find(|(n, _)| n == name)
                .map(|(_, r)| r.schema().arity())
        })
        .unwrap();
        let inputs: Vec<PlanInput<'_>> = plan
            .relations()
            .iter()
            .map(|name| PlanInput::from(&rels.iter().find(|(n, _)| n == name).unwrap().1))
            .collect();
        let mut scratch = ExecScratch::new();
        let deduped = plan.execute(&inputs, &mut scratch, true);
        assert_eq!(deduped, db.evaluate(&q).unwrap().distinct());
        assert!(deduped.len() < compiled.len());
    }

    #[test]
    fn disconnected_body_is_a_cross_product() {
        let q = ConjunctiveQuery::new(["X", "N"])
            .atom(Atom::new("edge", [Term::var("X"), Term::constant(2i64)]))
            .atom(Atom::new(
                "label",
                [Term::var("N"), Term::constant(Value::str("red"))],
            ));
        let (compiled, interpreted) = run_both(&q);
        assert_eq!(compiled, interpreted);
        assert_eq!(compiled.len(), 2);
    }

    #[test]
    fn chunked_inputs_match_flat_inputs() {
        let (_, rels) = edges_db();
        let q = ConjunctiveQuery::new(["X", "Z"])
            .atom(Atom::new("edge", [Term::var("X"), Term::var("Y")]))
            .atom(Atom::new("edge", [Term::var("Y"), Term::var("Z")]));
        let plan = PhysicalPlan::compile(&q, |_| Some(2)).unwrap();
        let mut scratch = ExecScratch::new();
        let flat = plan.execute(&[PlanInput::from(&rels[0].1)], &mut scratch, false);

        // Split the edge relation across three buckets, preserving row order
        // within the chunked iteration.
        let mut seg = SegmentedRelation::new(rels[0].1.schema().clone());
        for (i, t) in rels[0].1.iter().enumerate() {
            seg.push((i / 2) as u64, t.to_vec()).unwrap();
        }
        let chunked = ChunkedRows::from_segmented(&seg);
        assert_eq!(chunked.len(), 4);
        assert!(!chunked.is_empty());
        let via_chunks = plan.execute(&[PlanInput::from(&chunked)], &mut scratch, false);
        assert_eq!(flat, via_chunks);
        assert!(scratch.scratch_reuses() >= 1);
        assert_eq!(scratch.rows_materialized(), (flat.len() * 2) as u64);
    }

    #[test]
    fn empty_atom_short_circuits() {
        let empty = Relation::new(Schema::new(["a", "b"]));
        let q = ConjunctiveQuery::new(["X"])
            .atom(Atom::new("edge", [Term::var("X"), Term::var("Y")]))
            .atom(Atom::new("none", [Term::var("Y"), Term::var("Z")]));
        let (_, rels) = edges_db();
        let plan = PhysicalPlan::compile(&q, |_| Some(2)).unwrap();
        let mut scratch = ExecScratch::new();
        let inputs: Vec<PlanInput<'_>> = plan
            .relations()
            .iter()
            .map(|name| {
                if name == "edge" {
                    PlanInput::from(&rels[0].1)
                } else {
                    PlanInput::from(&empty)
                }
            })
            .collect();
        let result = plan.execute(&inputs, &mut scratch, false);
        assert!(result.is_empty());
        assert_eq!(result.schema().columns(), &["X"]);
    }

    #[test]
    fn duplicate_head_variables_match_the_interpreter() {
        // The interpreter's projection accepts a repeated head variable;
        // compilation must too (and produce the same two-column result).
        let q = ConjunctiveQuery::new(["X", "X"])
            .atom(Atom::new("edge", [Term::var("X"), Term::var("Y")]));
        let (compiled, interpreted) = run_both(&q);
        assert_eq!(compiled, interpreted);
        assert_eq!(compiled.schema().arity(), 2);
    }

    #[test]
    fn compile_rejects_bad_queries() {
        // Unknown relation.
        let q = ConjunctiveQuery::new(["X"]).atom(Atom::new("nope", [Term::var("X")]));
        assert!(matches!(
            PhysicalPlan::compile(&q, |_| None).unwrap_err(),
            RelError::UnknownRelation { .. }
        ));
        // Arity mismatch.
        let q = ConjunctiveQuery::new(["X"]).atom(Atom::new("edge", [Term::var("X")]));
        assert!(matches!(
            PhysicalPlan::compile(&q, |_| Some(2)).unwrap_err(),
            RelError::MalformedQuery { .. }
        ));
        // Unbound head.
        let q =
            ConjunctiveQuery::new(["Q"]).atom(Atom::new("edge", [Term::var("X"), Term::var("Y")]));
        assert!(matches!(
            PhysicalPlan::compile(&q, |_| Some(2)).unwrap_err(),
            RelError::MalformedQuery { .. }
        ));
        // Empty body.
        let q = ConjunctiveQuery::new(["X"]);
        assert!(matches!(
            PhysicalPlan::compile(&q, |_| Some(2)).unwrap_err(),
            RelError::MalformedQuery { .. }
        ));
    }

    #[test]
    fn plan_metadata_accessors() {
        let q = ConjunctiveQuery::new(["X", "Z"])
            .atom(Atom::new("edge", [Term::var("X"), Term::var("Y")]))
            .atom(Atom::new("edge", [Term::var("Y"), Term::var("Z")]))
            .atom(Atom::new("label", [Term::var("Z"), Term::var("C")]));
        let plan = PhysicalPlan::compile(&q, |_| Some(2)).unwrap();
        assert_eq!(plan.relations(), &["edge".to_owned(), "label".to_owned()]);
        assert_eq!(plan.num_atoms(), 3);
        assert_eq!(plan.num_columns(), 4); // X, Y, Z, C
        assert_eq!(plan.head_schema().columns(), &["X", "Z"]);
    }

    #[test]
    fn distinct_estimates_are_deterministic_and_bounded() {
        // All-equal column: estimate collapses to 1.
        assert_eq!(estimate_distinct(100, |_| 42), 1);
        // All-distinct sample: estimate is the row count.
        assert_eq!(estimate_distinct(50, |j| j as u64), 50);
        // Scaling: 64 samples with 32 distinct hashes over 128 rows
        // extrapolates to ~64, clamped within [distinct, n].
        let est = estimate_distinct(128, |j| (j % 32) as u64);
        assert!((32..=128).contains(&est));
        // Empty input.
        assert_eq!(estimate_distinct(0, |_| 0), 0);
    }

    #[test]
    fn materialize_time_accumulates() {
        let (_, rels) = edges_db();
        let q = ConjunctiveQuery::new(["X", "Z"])
            .atom(Atom::new("edge", [Term::var("X"), Term::var("Y")]))
            .atom(Atom::new("edge", [Term::var("Y"), Term::var("Z")]));
        let plan = PhysicalPlan::compile(&q, |_| Some(2)).unwrap();
        let mut scratch = ExecScratch::new();
        let _ = plan.execute(&[PlanInput::from(&rels[0].1)], &mut scratch, false);
        // Nanosecond clocks can in principle read 0 for a tiny pass, but the
        // counter must exist and be monotone across executions.
        let first = scratch.materialize_time();
        let _ = plan.execute(&[PlanInput::from(&rels[0].1)], &mut scratch, false);
        assert!(scratch.materialize_time() >= first);
    }
}
