//! Relations: a schema plus a bag of tuples.

use crate::error::{RelError, RelResult};
use crate::schema::Schema;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// A tuple is a row of values, positionally matching a [`Schema`].
pub type Tuple = Vec<Value>;

/// An in-memory relation (bag semantics).
///
/// Relations are the unit of data exchanged between the XPath Evaluator and
/// the Join Processor: the witness relations `RbinW`, `RdocW`, `RdocTSW`, the
/// join state `Rbin`, `Rdoc`, `RdocTS`, the per-template `RT` relations and
/// all intermediate join results are `Relation`s.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Relation {
    schema: Schema,
    tuples: Vec<Tuple>,
}

impl Relation {
    /// Create an empty relation with the given schema.
    pub fn new(schema: Schema) -> Self {
        Relation {
            schema,
            tuples: Vec::new(),
        }
    }

    /// Create a relation and bulk-load tuples, validating arity.
    pub fn with_tuples(schema: Schema, tuples: Vec<Tuple>) -> RelResult<Self> {
        let mut r = Relation::new(schema);
        for t in tuples {
            r.push_values(t)?;
        }
        Ok(r)
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` when the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// All tuples, in insertion order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Consume the relation, returning its tuples (insertion order). Lets
    /// callers move whole rows onward — e.g. into the engine's segmented
    /// join state — without per-value clones.
    pub fn into_tuples(self) -> Vec<Tuple> {
        self.tuples
    }

    /// Iterate over tuples.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// Append a tuple, validating its arity against the schema.
    pub fn push_values(&mut self, tuple: Tuple) -> RelResult<()> {
        if tuple.len() != self.schema.arity() {
            return Err(RelError::ArityMismatch {
                context: format!("relation {}", self.schema),
                expected: self.schema.arity(),
                found: tuple.len(),
            });
        }
        self.tuples.push(tuple);
        Ok(())
    }

    /// Append a tuple without arity checking (used by operators that already
    /// construct tuples of the right width).
    pub(crate) fn push_unchecked(&mut self, tuple: Tuple) {
        debug_assert_eq!(tuple.len(), self.schema.arity());
        self.tuples.push(tuple);
    }

    /// Append all tuples from `other`. The schemas must be equal.
    pub fn extend_from(&mut self, other: &Relation) -> RelResult<()> {
        if self.schema != other.schema {
            return Err(RelError::ArityMismatch {
                context: format!("extend {} from {}", self.schema, other.schema),
                expected: self.schema.arity(),
                found: other.schema.arity(),
            });
        }
        self.tuples.extend(other.tuples.iter().cloned());
        Ok(())
    }

    /// Remove all tuples, keeping the schema.
    pub fn clear(&mut self) {
        self.tuples.clear();
    }

    /// Retain only tuples for which the predicate returns `true`.
    pub fn retain(&mut self, mut pred: impl FnMut(&Tuple) -> bool) {
        self.tuples.retain(|t| pred(t));
    }

    /// The value at `(row, column-name)`.
    pub fn value(&self, row: usize, column: &str) -> RelResult<&Value> {
        let idx = self.schema.require(column)?;
        Ok(&self.tuples[row][idx])
    }

    /// Column index lookup shorthand.
    pub fn col(&self, name: &str) -> RelResult<usize> {
        self.schema.require(name)
    }

    /// Produce a new relation with duplicate tuples removed (set semantics).
    pub fn distinct(&self) -> Relation {
        let mut seen: HashSet<&Tuple> = HashSet::with_capacity(self.tuples.len());
        let mut out = Relation::new(self.schema.clone());
        for t in &self.tuples {
            if seen.insert(t) {
                out.tuples.push(t.clone());
            }
        }
        out
    }

    /// Sort tuples lexicographically (useful for deterministic test output).
    pub fn sorted(&self) -> Relation {
        let mut out = self.clone();
        out.tuples.sort();
        out
    }

    /// Collect the distinct values of one column.
    pub fn distinct_column_values(&self, column: &str) -> RelResult<Vec<Value>> {
        let idx = self.schema.require(column)?;
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for t in &self.tuples {
            if seen.insert(&t[idx]) {
                out.push(t[idx].clone());
            }
        }
        Ok(out)
    }

    /// Approximate memory footprint in bytes (tuples only, not interned
    /// strings). Used by the view cache to account for its budget.
    pub fn approx_bytes(&self) -> usize {
        // Each Value is a small enum; 32 bytes is a conservative estimate
        // including the Vec overhead amortized per value.
        self.tuples.len() * self.schema.arity() * 32 + std::mem::size_of::<Self>()
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for t in &self.tuples {
            let row: Vec<String> = t.iter().map(|v| v.to_string()).collect();
            writeln!(f, "  [{}]", row.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Relation {
        let mut r = Relation::new(Schema::new(["docid", "node", "strVal"]));
        r.push_values(vec![
            Value::int(1),
            Value::int(2),
            Value::str("Danny Ayers"),
        ])
        .unwrap();
        r.push_values(vec![
            Value::int(1),
            Value::int(3),
            Value::str("Andrew Watt"),
        ])
        .unwrap();
        r
    }

    #[test]
    fn push_and_access() {
        let r = sample();
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.value(0, "strVal").unwrap(), &Value::str("Danny Ayers"));
        assert_eq!(r.col("node").unwrap(), 1);
        assert!(r.value(0, "missing").is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut r = Relation::new(Schema::new(["a", "b"]));
        let err = r.push_values(vec![Value::int(1)]).unwrap_err();
        assert!(matches!(err, RelError::ArityMismatch { .. }));
    }

    #[test]
    fn with_tuples_validates() {
        let ok = Relation::with_tuples(
            Schema::new(["a"]),
            vec![vec![Value::int(1)], vec![Value::int(2)]],
        )
        .unwrap();
        assert_eq!(ok.len(), 2);
        assert!(Relation::with_tuples(Schema::new(["a"]), vec![vec![]]).is_err());
    }

    #[test]
    fn extend_from_checks_schema() {
        let mut a = sample();
        let b = sample();
        a.extend_from(&b).unwrap();
        assert_eq!(a.len(), 4);
        let other = Relation::new(Schema::new(["x"]));
        assert!(a.extend_from(&other).is_err());
    }

    #[test]
    fn distinct_removes_duplicates() {
        let mut r = sample();
        let dup = r.tuples()[0].clone();
        r.push_values(dup).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r.distinct().len(), 2);
    }

    #[test]
    fn sorted_is_deterministic() {
        let mut r = Relation::new(Schema::new(["a"]));
        r.push_values(vec![Value::int(3)]).unwrap();
        r.push_values(vec![Value::int(1)]).unwrap();
        r.push_values(vec![Value::int(2)]).unwrap();
        let s = r.sorted();
        let vals: Vec<i64> = s.iter().map(|t| t[0].as_int().unwrap()).collect();
        assert_eq!(vals, vec![1, 2, 3]);
    }

    #[test]
    fn distinct_column_values() {
        let mut r = sample();
        r.push_values(vec![
            Value::int(1),
            Value::int(9),
            Value::str("Danny Ayers"),
        ])
        .unwrap();
        let vals = r.distinct_column_values("strVal").unwrap();
        assert_eq!(vals.len(), 2);
        assert!(r.distinct_column_values("zzz").is_err());
    }

    #[test]
    fn clear_and_retain() {
        let mut r = sample();
        r.retain(|t| t[1] == Value::int(2));
        assert_eq!(r.len(), 1);
        r.clear();
        assert!(r.is_empty());
    }

    #[test]
    fn display_contains_schema_and_rows() {
        let r = sample();
        let s = r.to_string();
        assert!(s.contains("docid"));
        assert!(s.contains("Danny Ayers"));
    }

    #[test]
    fn approx_bytes_grows_with_rows() {
        let empty = Relation::new(Schema::new(["a", "b"]));
        let full = sample();
        assert!(full.approx_bytes() > empty.approx_bytes());
    }
}
