//! Relations: a schema plus a bag of tuples, stored column-major.
//!
//! Storage is **columnar**: one contiguous `Vec<Value>` per column. The MMQJP
//! hot paths (selection filters, join-key hashing, head projection) each
//! touch a handful of columns of relations that are hundreds to thousands of
//! rows long, so laying values out per column turns those passes into tight
//! loops over contiguous memory instead of pointer-chasing across row `Vec`s.
//! Row-oriented access remains available through [`RowRef`], a cheap
//! `(columns, row-index)` view that indexes like a slice.

use crate::error::{RelError, RelResult};
use crate::schema::Schema;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;
use std::ops::Index;

/// A tuple is an owned row of values, positionally matching a [`Schema`].
/// Relations store values column-major; `Tuple` is the exchange format for
/// inserting and extracting whole rows.
pub type Tuple = Vec<Value>;

/// A borrowed view of one row of a columnar [`Relation`].
///
/// Indexes like a slice (`row[2]` is the value in column 2) and compares by
/// value, so most row-oriented code reads the same as it would over an owned
/// [`Tuple`]. Copy-cheap: two words.
#[derive(Debug, Clone, Copy)]
pub struct RowRef<'a> {
    cols: &'a [Vec<Value>],
    row: usize,
}

impl<'a> RowRef<'a> {
    /// The value in column `i`, with the *relation's* lifetime (not the
    /// view's), so extracted references outlive the `RowRef` itself.
    #[inline]
    pub fn get(&self, i: usize) -> &'a Value {
        &self.cols[i][self.row]
    }

    /// Number of columns.
    #[inline]
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// `true` for zero-column rows.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// Iterate over the row's values in column order.
    pub fn iter(&self) -> impl Iterator<Item = &'a Value> {
        let row = self.row;
        self.cols.iter().map(move |c| &c[row])
    }

    /// Copy the row into an owned [`Tuple`].
    pub fn to_vec(&self) -> Tuple {
        self.iter().cloned().collect()
    }
}

impl Index<usize> for RowRef<'_> {
    type Output = Value;

    #[inline]
    fn index(&self, i: usize) -> &Value {
        &self.cols[i][self.row]
    }
}

impl PartialEq for RowRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.cols.len() == other.cols.len() && self.iter().eq(other.iter())
    }
}

impl Eq for RowRef<'_> {}

impl PartialEq<[Value]> for RowRef<'_> {
    fn eq(&self, other: &[Value]) -> bool {
        self.cols.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl PartialEq<Tuple> for RowRef<'_> {
    fn eq(&self, other: &Tuple) -> bool {
        self == other.as_slice()
    }
}

/// Iterator over the rows of a [`Relation`], yielding [`RowRef`]s.
#[derive(Debug, Clone)]
pub struct Rows<'a> {
    cols: &'a [Vec<Value>],
    row: usize,
    len: usize,
}

impl<'a> Iterator for Rows<'a> {
    type Item = RowRef<'a>;

    fn next(&mut self) -> Option<RowRef<'a>> {
        if self.row < self.len {
            let r = RowRef {
                cols: self.cols,
                row: self.row,
            };
            self.row += 1;
            Some(r)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.len - self.row;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Rows<'_> {}

/// An in-memory relation (bag semantics), stored column-major.
///
/// Relations are the unit of data exchanged between the XPath Evaluator and
/// the Join Processor: the witness relations `RbinW`, `RdocW`, `RdocTSW`, the
/// join state `Rbin`, `Rdoc`, `RdocTS`, the per-template `RT` relations and
/// all intermediate join results are `Relation`s.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Relation {
    schema: Schema,
    cols: Vec<Vec<Value>>,
    len: usize,
}

impl Relation {
    /// Create an empty relation with the given schema.
    pub fn new(schema: Schema) -> Self {
        let cols = vec![Vec::new(); schema.arity()];
        Relation {
            schema,
            cols,
            len: 0,
        }
    }

    /// Create a relation and bulk-load tuples, validating arity.
    pub fn with_tuples(schema: Schema, tuples: Vec<Tuple>) -> RelResult<Self> {
        let mut r = Relation::new(schema);
        for t in tuples {
            r.push_values(t)?;
        }
        Ok(r)
    }

    /// Create a relation directly from column vectors (one per schema
    /// column, all the same length).
    pub fn from_columns(schema: Schema, cols: Vec<Vec<Value>>) -> RelResult<Self> {
        if cols.len() != schema.arity() {
            return Err(RelError::ArityMismatch {
                context: format!("relation {} from columns", schema),
                expected: schema.arity(),
                found: cols.len(),
            });
        }
        let len = cols.first().map(|c| c.len()).unwrap_or(0);
        if let Some(bad) = cols.iter().find(|c| c.len() != len) {
            return Err(RelError::ArityMismatch {
                context: format!("ragged columns for relation {}", schema),
                expected: len,
                found: bad.len(),
            });
        }
        Ok(Relation { schema, cols, len })
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The contiguous values of the column at `idx`, in row order. This is
    /// the columnar fast path: selection and hashing loop over these slices.
    #[inline]
    pub fn col_values(&self, idx: usize) -> &[Value] {
        &self.cols[idx]
    }

    /// A borrowed view of the row at `index`.
    ///
    /// # Panics
    /// Panics when `index >= len` (on first column access for zero-arity
    /// relations).
    #[inline]
    pub fn row(&self, index: usize) -> RowRef<'_> {
        debug_assert!(index < self.len);
        RowRef {
            cols: &self.cols,
            row: index,
        }
    }

    /// Consume the relation, returning its rows as owned tuples (insertion
    /// order). Lets callers move whole rows onward — e.g. into the engine's
    /// segmented join state — without per-value clones.
    pub fn into_rows(self) -> Vec<Tuple> {
        let len = self.len;
        let mut iters: Vec<_> = self.cols.into_iter().map(|c| c.into_iter()).collect();
        (0..len)
            .map(|_| {
                iters
                    .iter_mut()
                    .map(|it| it.next().expect("columns share the relation length")) // lint:allow all columns have len() rows
                    .collect()
            })
            .collect()
    }

    /// Iterate over rows.
    pub fn iter(&self) -> Rows<'_> {
        Rows {
            cols: &self.cols,
            row: 0,
            len: self.len,
        }
    }

    /// Append a tuple, validating its arity against the schema.
    pub fn push_values(&mut self, tuple: Tuple) -> RelResult<()> {
        if tuple.len() != self.schema.arity() {
            return Err(RelError::ArityMismatch {
                context: format!("relation {}", self.schema),
                expected: self.schema.arity(),
                found: tuple.len(),
            });
        }
        for (col, v) in self.cols.iter_mut().zip(tuple) {
            col.push(v);
        }
        self.len += 1;
        Ok(())
    }

    /// Append a borrowed row of matching arity, cloning its values.
    pub(crate) fn push_row(&mut self, row: RowRef<'_>) {
        debug_assert_eq!(row.len(), self.schema.arity());
        for (col, v) in self.cols.iter_mut().zip(row.iter()) {
            col.push(v.clone());
        }
        self.len += 1;
    }

    /// Append the concatenation of two borrowed rows (used by the join and
    /// cross-product operators, whose output schema is the concatenation of
    /// the input schemas).
    pub(crate) fn push_concat(&mut self, left: RowRef<'_>, right: RowRef<'_>) {
        debug_assert_eq!(left.len() + right.len(), self.schema.arity());
        for (col, v) in self.cols.iter_mut().zip(left.iter().chain(right.iter())) {
            col.push(v.clone());
        }
        self.len += 1;
    }

    /// Mutable access to the raw column vectors for in-crate operators that
    /// append column-wise. Callers must keep the columns equal-length and
    /// call [`set_len`](Self::set_len) afterwards.
    pub(crate) fn cols_mut(&mut self) -> &mut [Vec<Value>] {
        &mut self.cols
    }

    /// Restore the row-count invariant after direct column writes through
    /// [`cols_mut`](Self::cols_mut).
    pub(crate) fn set_len(&mut self, len: usize) {
        debug_assert!(self.cols.iter().all(|c| c.len() == len));
        self.len = len;
    }

    /// Append all tuples from `other`. The schemas must be equal.
    pub fn extend_from(&mut self, other: &Relation) -> RelResult<()> {
        if self.schema != other.schema {
            return Err(RelError::ArityMismatch {
                context: format!("extend {} from {}", self.schema, other.schema),
                expected: self.schema.arity(),
                found: other.schema.arity(),
            });
        }
        for (col, ocol) in self.cols.iter_mut().zip(&other.cols) {
            col.extend(ocol.iter().cloned());
        }
        self.len += other.len;
        Ok(())
    }

    /// Remove all tuples, keeping the schema.
    pub fn clear(&mut self) {
        for col in &mut self.cols {
            col.clear();
        }
        self.len = 0;
    }

    /// Retain only rows for which the predicate returns `true`.
    pub fn retain(&mut self, mut pred: impl FnMut(RowRef<'_>) -> bool) {
        let keep: Vec<bool> = (0..self.len).map(|i| pred(self.row(i))).collect();
        let kept = keep.iter().filter(|&&k| k).count();
        for col in &mut self.cols {
            let mut it = keep.iter();
            col.retain(|_| *it.next().expect("mask covers every row")); // lint:allow mask length equals row count
        }
        self.len = kept;
    }

    /// The value at `(row, column-name)`.
    pub fn value(&self, row: usize, column: &str) -> RelResult<&Value> {
        let idx = self.schema.require(column)?;
        Ok(&self.cols[idx][row])
    }

    /// Column index lookup shorthand.
    pub fn col(&self, name: &str) -> RelResult<usize> {
        self.schema.require(name)
    }

    /// Produce a new relation with duplicate tuples removed (set semantics).
    pub fn distinct(&self) -> Relation {
        let mut seen: HashSet<Vec<&Value>> = HashSet::with_capacity(self.len);
        let mut out = Relation::new(self.schema.clone());
        for i in 0..self.len {
            let key: Vec<&Value> = self.cols.iter().map(|c| &c[i]).collect();
            if seen.insert(key) {
                out.push_row(self.row(i));
            }
        }
        out
    }

    /// Sort tuples lexicographically (useful for deterministic test output).
    pub fn sorted(&self) -> Relation {
        let mut idx: Vec<usize> = (0..self.len).collect();
        idx.sort_by(|&a, &b| {
            self.cols
                .iter()
                .map(|c| &c[a])
                .cmp(self.cols.iter().map(|c| &c[b]))
        });
        let cols = self
            .cols
            .iter()
            .map(|c| idx.iter().map(|&i| c[i].clone()).collect())
            .collect();
        Relation {
            schema: self.schema.clone(),
            cols,
            len: self.len,
        }
    }

    /// Collect the distinct values of one column.
    pub fn distinct_column_values(&self, column: &str) -> RelResult<Vec<Value>> {
        let idx = self.schema.require(column)?;
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for v in &self.cols[idx] {
            if seen.insert(v) {
                out.push(v.clone());
            }
        }
        Ok(out)
    }

    /// Approximate memory footprint in bytes (tuples only, not interned
    /// strings). Used by the view cache to account for its budget.
    pub fn approx_bytes(&self) -> usize {
        // Each Value is a small enum; 32 bytes is a conservative estimate
        // including the per-column Vec overhead amortized per value.
        self.len * self.schema.arity() * 32 + std::mem::size_of::<Self>()
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for t in self.iter() {
            let row: Vec<String> = t.iter().map(|v| v.to_string()).collect();
            writeln!(f, "  [{}]", row.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Relation {
        let mut r = Relation::new(Schema::new(["docid", "node", "strVal"]));
        r.push_values(vec![
            Value::int(1),
            Value::int(2),
            Value::str("Danny Ayers"),
        ])
        .unwrap();
        r.push_values(vec![
            Value::int(1),
            Value::int(3),
            Value::str("Andrew Watt"),
        ])
        .unwrap();
        r
    }

    #[test]
    fn push_and_access() {
        let r = sample();
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.value(0, "strVal").unwrap(), &Value::str("Danny Ayers"));
        assert_eq!(r.col("node").unwrap(), 1);
        assert!(r.value(0, "missing").is_err());
    }

    #[test]
    fn columnar_layout_is_visible_per_column() {
        let r = sample();
        assert_eq!(r.col_values(0), &[Value::int(1), Value::int(1)]);
        assert_eq!(
            r.col_values(2),
            &[Value::str("Danny Ayers"), Value::str("Andrew Watt")]
        );
        let row = r.row(1);
        assert_eq!(row.len(), 3);
        assert!(!row.is_empty());
        assert_eq!(row[1], Value::int(3));
        assert_eq!(row.get(2), &Value::str("Andrew Watt"));
        assert_eq!(row.to_vec()[0], Value::int(1));
        assert_eq!(r.row(0), r.row(0));
        assert_ne!(r.row(0), r.row(1));
    }

    #[test]
    fn into_rows_round_trips() {
        let r = sample();
        let rows = r.clone().into_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(r.row(0), rows[0]);
        assert_eq!(r.row(1), rows[1]);
        let back = Relation::with_tuples(r.schema().clone(), rows).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn from_columns_validates_shape() {
        let schema = Schema::new(["a", "b"]);
        let ok = Relation::from_columns(
            schema.clone(),
            vec![
                vec![Value::int(1), Value::int(2)],
                vec![Value::int(3), Value::int(4)],
            ],
        )
        .unwrap();
        assert_eq!(ok.len(), 2);
        assert_eq!(ok.row(1).to_vec(), vec![Value::int(2), Value::int(4)]);
        // Wrong column count.
        assert!(Relation::from_columns(schema.clone(), vec![vec![Value::int(1)]]).is_err());
        // Ragged columns.
        assert!(Relation::from_columns(
            schema,
            vec![vec![Value::int(1)], vec![Value::int(2), Value::int(3)]],
        )
        .is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut r = Relation::new(Schema::new(["a", "b"]));
        let err = r.push_values(vec![Value::int(1)]).unwrap_err();
        assert!(matches!(err, RelError::ArityMismatch { .. }));
    }

    #[test]
    fn with_tuples_validates() {
        let ok = Relation::with_tuples(
            Schema::new(["a"]),
            vec![vec![Value::int(1)], vec![Value::int(2)]],
        )
        .unwrap();
        assert_eq!(ok.len(), 2);
        assert!(Relation::with_tuples(Schema::new(["a"]), vec![vec![]]).is_err());
    }

    #[test]
    fn extend_from_checks_schema() {
        let mut a = sample();
        let b = sample();
        a.extend_from(&b).unwrap();
        assert_eq!(a.len(), 4);
        let other = Relation::new(Schema::new(["x"]));
        assert!(a.extend_from(&other).is_err());
    }

    #[test]
    fn distinct_removes_duplicates() {
        let mut r = sample();
        let dup = r.row(0).to_vec();
        r.push_values(dup).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r.distinct().len(), 2);
    }

    #[test]
    fn sorted_is_deterministic() {
        let mut r = Relation::new(Schema::new(["a"]));
        r.push_values(vec![Value::int(3)]).unwrap();
        r.push_values(vec![Value::int(1)]).unwrap();
        r.push_values(vec![Value::int(2)]).unwrap();
        let s = r.sorted();
        let vals: Vec<i64> = s.iter().map(|t| t[0].as_int().unwrap()).collect();
        assert_eq!(vals, vec![1, 2, 3]);
    }

    #[test]
    fn distinct_column_values() {
        let mut r = sample();
        r.push_values(vec![
            Value::int(1),
            Value::int(9),
            Value::str("Danny Ayers"),
        ])
        .unwrap();
        let vals = r.distinct_column_values("strVal").unwrap();
        assert_eq!(vals.len(), 2);
        assert!(r.distinct_column_values("zzz").is_err());
    }

    #[test]
    fn clear_and_retain() {
        let mut r = sample();
        r.retain(|t| t[1] == Value::int(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.col_values(1), &[Value::int(2)]);
        r.clear();
        assert!(r.is_empty());
    }

    #[test]
    fn display_contains_schema_and_rows() {
        let r = sample();
        let s = r.to_string();
        assert!(s.contains("docid"));
        assert!(s.contains("Danny Ayers"));
    }

    #[test]
    fn approx_bytes_grows_with_rows() {
        let empty = Relation::new(Schema::new(["a", "b"]));
        let full = sample();
        assert!(full.approx_bytes() > empty.approx_bytes());
    }
}
