//! Error types for the relational engine.

use crate::verify::PlanViolation;
use std::fmt;

/// Convenience result alias used throughout the crate.
pub type RelResult<T> = Result<T, RelError>;

/// Errors produced by relational operations and conjunctive query evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelError {
    /// A tuple's arity did not match the relation schema.
    ArityMismatch {
        /// Name of the relation or operation.
        context: String,
        /// Expected number of columns.
        expected: usize,
        /// Number of values supplied.
        found: usize,
    },
    /// A column name was not found in a schema.
    UnknownColumn {
        /// The missing column name.
        column: String,
        /// The columns that do exist.
        available: Vec<String>,
    },
    /// A relation name referenced by a query is not registered in the
    /// database.
    UnknownRelation {
        /// The missing relation name.
        relation: String,
    },
    /// Join keys on the two sides have different lengths.
    KeyLengthMismatch {
        /// Keys supplied for the left input.
        left: usize,
        /// Keys supplied for the right input.
        right: usize,
    },
    /// A conjunctive query is malformed (e.g. head variable not bound in the
    /// body, empty body, or an atom arity mismatch).
    MalformedQuery {
        /// Human-readable description.
        reason: String,
    },
    /// A compiled plan failed registration-time verification
    /// (see [`crate::verify`]).
    PlanVerification {
        /// Every violation found, in check order.
        violations: Vec<PlanViolation>,
    },
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::ArityMismatch {
                context,
                expected,
                found,
            } => write!(
                f,
                "arity mismatch in {context}: expected {expected} values, found {found}"
            ),
            RelError::UnknownColumn { column, available } => write!(
                f,
                "unknown column `{column}` (available: {})",
                available.join(", ")
            ),
            RelError::UnknownRelation { relation } => {
                write!(f, "unknown relation `{relation}`")
            }
            RelError::KeyLengthMismatch { left, right } => write!(
                f,
                "join key length mismatch: {left} left keys vs {right} right keys"
            ),
            RelError::MalformedQuery { reason } => write!(f, "malformed query: {reason}"),
            RelError::PlanVerification { violations } => {
                write!(
                    f,
                    "plan verification failed ({} violations):",
                    violations.len()
                )?;
                for v in violations {
                    write!(f, "\n  - {v}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for RelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_contain_details() {
        let e = RelError::ArityMismatch {
            context: "Rdoc".into(),
            expected: 3,
            found: 2,
        };
        assert!(e.to_string().contains("Rdoc"));
        assert!(e.to_string().contains('3'));

        let e = RelError::UnknownColumn {
            column: "strVal".into(),
            available: vec!["docid".into(), "node".into()],
        };
        assert!(e.to_string().contains("strVal"));
        assert!(e.to_string().contains("docid"));

        let e = RelError::UnknownRelation {
            relation: "Rbin".into(),
        };
        assert!(e.to_string().contains("Rbin"));

        let e = RelError::KeyLengthMismatch { left: 2, right: 1 };
        assert!(e.to_string().contains('2'));

        let e = RelError::MalformedQuery {
            reason: "empty body".into(),
        };
        assert!(e.to_string().contains("empty body"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&RelError::UnknownRelation {
            relation: "x".into(),
        });
    }
}
