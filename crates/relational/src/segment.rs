//! Segmented relation storage with stable row handles.
//!
//! A [`SegmentedRelation`] partitions its tuples into *buckets* (segments),
//! each an ordinary [`Relation`]. Rows are addressed by a stable
//! [`RowHandle`] — `(bucket, offset)` — which never shifts when *other*
//! buckets are dropped, so secondary indexes built per bucket stay valid for
//! the lifetime of their bucket and are discarded whole together with it.
//!
//! This is the storage layout behind the MMQJP engine's windowed join state:
//! buckets are coarse timestamp ranges, and window expiry becomes
//! [`SegmentedRelation::evict_below`] — an O(expired-rows) whole-bucket drop
//! instead of a retain-and-rebuild over the entire relation.

use crate::error::{RelError, RelResult};
use crate::relation::{Relation, RowRef, Rows, Tuple};
use crate::schema::Schema;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of a bucket (segment) within a [`SegmentedRelation`].
///
/// Callers choose the bucket of every inserted row; the MMQJP engine derives
/// it from the row's document timestamp (`timestamp / bucket_width`). Buckets
/// are ordered, and eviction drops every bucket below a cutoff.
pub type BucketId = u64;

/// A stable address of one row in a [`SegmentedRelation`].
///
/// Handles remain valid until *their own* bucket is evicted; evicting other
/// buckets never invalidates or shifts them (unlike positional indexes into a
/// flat `Vec`, which shift on every `retain`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RowHandle {
    /// The bucket holding the row.
    pub bucket: BucketId,
    /// Insertion position of the row within its bucket.
    pub offset: u32,
}

/// A relation stored as ordered buckets of tuples.
///
/// All buckets share one schema. Iteration order is bucket order (ascending
/// [`BucketId`]), then insertion order within each bucket.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentedRelation {
    schema: Schema,
    segments: BTreeMap<BucketId, Relation>,
    len: usize,
}

impl SegmentedRelation {
    /// Create an empty segmented relation with the given schema.
    pub fn new(schema: Schema) -> Self {
        SegmentedRelation {
            schema,
            segments: BTreeMap::new(),
            len: 0,
        }
    }

    /// The shared schema of every bucket.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Total number of tuples across all buckets.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no bucket holds any tuple.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of resident buckets.
    pub fn num_buckets(&self) -> usize {
        self.segments.len()
    }

    /// Append a tuple to the given bucket, validating its arity. Returns the
    /// row's stable handle.
    pub fn push(&mut self, bucket: BucketId, tuple: Tuple) -> RelResult<RowHandle> {
        if tuple.len() != self.schema.arity() {
            return Err(RelError::ArityMismatch {
                context: format!("segmented relation {}", self.schema),
                expected: self.schema.arity(),
                found: tuple.len(),
            });
        }
        let segment = self
            .segments
            .entry(bucket)
            .or_insert_with(|| Relation::new(self.schema.clone()));
        let offset = segment.len() as u32;
        segment
            .push_values(tuple)
            .expect("arity was checked against the shared schema"); // lint:allow arity checked before bucket lookup
        self.len += 1;
        Ok(RowHandle { bucket, offset })
    }

    /// The row behind a handle, if its bucket is still resident.
    pub fn row(&self, handle: RowHandle) -> Option<RowRef<'_>> {
        self.segments.get(&handle.bucket).and_then(|s| {
            let off = handle.offset as usize;
            (off < s.len()).then(|| s.row(off))
        })
    }

    /// The bucket's tuples, if resident.
    pub fn bucket(&self, bucket: BucketId) -> Option<&Relation> {
        self.segments.get(&bucket)
    }

    /// Iterate over resident buckets in ascending bucket order.
    pub fn buckets(&self) -> impl Iterator<Item = (BucketId, &Relation)> {
        self.segments.iter().map(|(&b, r)| (b, r))
    }

    /// Iterate over all tuples: bucket order, then insertion order.
    pub fn iter(&self) -> SegmentedTuples<'_> {
        SegmentedTuples {
            buckets: self.segments.values(),
            current: None,
        }
    }

    /// Drop every bucket with id strictly below `cutoff`, returning the
    /// dropped `(bucket, rows)` pairs in ascending order.
    ///
    /// Cost is O(log #buckets + dropped rows); resident buckets and their
    /// row handles are untouched.
    pub fn evict_below(&mut self, cutoff: BucketId) -> Vec<(BucketId, Relation)> {
        let keep = self.segments.split_off(&cutoff);
        let dropped = std::mem::replace(&mut self.segments, keep);
        let out: Vec<(BucketId, Relation)> = dropped.into_iter().collect();
        for (_, r) in &out {
            self.len -= r.len();
        }
        out
    }

    /// Remove all buckets, keeping the schema.
    pub fn clear(&mut self) {
        self.segments.clear();
        self.len = 0;
    }

    /// Flatten into a single [`Relation`] (bucket order, then insertion
    /// order). O(len) — intended for tests and diagnostics, not hot paths.
    pub fn to_relation(&self) -> Relation {
        let mut out = Relation::new(self.schema.clone());
        for segment in self.segments.values() {
            out.extend_from(segment)
                .expect("buckets share the relation schema"); // lint:allow segments share self.schema
        }
        out
    }
}

/// Iterator over every row of a [`SegmentedRelation`], yielding [`RowRef`]s.
#[derive(Debug, Clone)]
pub struct SegmentedTuples<'a> {
    buckets: std::collections::btree_map::Values<'a, BucketId, Relation>,
    current: Option<Rows<'a>>,
}

impl<'a> Iterator for SegmentedTuples<'a> {
    type Item = RowRef<'a>;

    fn next(&mut self) -> Option<RowRef<'a>> {
        loop {
            if let Some(t) = self.current.as_mut().and_then(Iterator::next) {
                return Some(t);
            }
            self.current = Some(self.buckets.next()?.iter());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn seg() -> SegmentedRelation {
        SegmentedRelation::new(Schema::new(["docid", "ts"]))
    }

    fn row(d: i64, ts: i64) -> Tuple {
        vec![Value::Int(d), Value::Int(ts)]
    }

    #[test]
    fn push_assigns_stable_handles() {
        let mut s = seg();
        let h0 = s.push(3, row(1, 30)).unwrap();
        let h1 = s.push(3, row(2, 31)).unwrap();
        let h2 = s.push(1, row(3, 10)).unwrap();
        assert_eq!(
            h0,
            RowHandle {
                bucket: 3,
                offset: 0
            }
        );
        assert_eq!(
            h1,
            RowHandle {
                bucket: 3,
                offset: 1
            }
        );
        assert_eq!(
            h2,
            RowHandle {
                bucket: 1,
                offset: 0
            }
        );
        assert_eq!(s.len(), 3);
        assert_eq!(s.num_buckets(), 2);
        assert_eq!(s.row(h1).map(|r| r.to_vec()), Some(row(2, 31)));
    }

    #[test]
    fn arity_is_validated() {
        let mut s = seg();
        assert!(s.push(0, vec![Value::Int(1)]).is_err());
        assert!(s.is_empty());
    }

    #[test]
    fn iteration_is_bucket_ordered() {
        let mut s = seg();
        s.push(5, row(50, 0)).unwrap();
        s.push(2, row(20, 0)).unwrap();
        s.push(2, row(21, 0)).unwrap();
        s.push(9, row(90, 0)).unwrap();
        let ids: Vec<i64> = s.iter().map(|t| t[0].as_int().unwrap()).collect();
        assert_eq!(ids, vec![20, 21, 50, 90]);
        assert_eq!(s.to_relation().len(), 4);
    }

    #[test]
    fn evict_below_drops_whole_buckets_and_keeps_handles() {
        let mut s = seg();
        s.push(1, row(1, 0)).unwrap();
        s.push(2, row(2, 0)).unwrap();
        let kept = s.push(3, row(3, 0)).unwrap();
        let dropped = s.evict_below(3);
        assert_eq!(dropped.len(), 2);
        assert_eq!(dropped[0].0, 1);
        assert_eq!(dropped[1].0, 2);
        assert_eq!(dropped[1].1.len(), 1);
        assert_eq!(s.len(), 1);
        assert_eq!(s.num_buckets(), 1);
        // The surviving handle still resolves to the same row.
        assert_eq!(s.row(kept).map(|r| r.to_vec()), Some(row(3, 0)));
        // Evicting again is a no-op.
        assert!(s.evict_below(3).is_empty());
    }

    #[test]
    fn clear_empties_everything() {
        let mut s = seg();
        s.push(1, row(1, 0)).unwrap();
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.num_buckets(), 0);
        assert!(s.iter().next().is_none());
    }

    #[test]
    fn empty_iteration() {
        let s = seg();
        assert!(s.iter().next().is_none());
        assert!(s.bucket(0).is_none());
        assert!(s
            .row(RowHandle {
                bucket: 0,
                offset: 0
            })
            .is_none());
    }
}
