//! Relational algebra operators.
//!
//! All operators are functions from relations to relations; none mutate their
//! inputs. Equi-joins are hash joins (build on the smaller input, probe with
//! the larger), matching what a disk-based engine's planner would pick for
//! the MMQJP workload and keeping the cost model of the paper intact. Over
//! the columnar [`Relation`] layout, projection and rename are whole-column
//! clones, and row-oriented operators work through [`RowRef`] views.

use crate::error::{RelError, RelResult};
use crate::fxhash::FxHashSet;
use crate::index::HashIndex;
use crate::relation::{Relation, RowRef};
use crate::schema::Schema;
use crate::value::Value;

/// Selection: keep tuples satisfying `pred`.
pub fn select(input: &Relation, mut pred: impl FnMut(RowRef<'_>) -> bool) -> Relation {
    let mut out = Relation::new(input.schema().clone());
    for t in input.iter() {
        if pred(t) {
            out.push_row(t);
        }
    }
    out
}

/// Selection on a single column equality (`column = value`), as a tight scan
/// over the column's contiguous values.
pub fn select_eq(input: &Relation, column: &str, value: &Value) -> RelResult<Relation> {
    let idx = input.schema().require(column)?;
    let col = input.col_values(idx);
    let mut out = Relation::new(input.schema().clone());
    for (row, v) in col.iter().enumerate() {
        if v == value {
            out.push_row(input.row(row));
        }
    }
    Ok(out)
}

/// Projection onto the named columns (preserves duplicates; combine with
/// [`Relation::distinct`] for set semantics). Columnar storage makes this a
/// clone of the selected column vectors — no per-row work.
pub fn project(input: &Relation, columns: &[&str]) -> RelResult<Relation> {
    let idxs: Vec<usize> = columns
        .iter()
        .map(|c| input.schema().require(c))
        .collect::<RelResult<_>>()?;
    let schema = input.schema().project(columns)?;
    let cols: Vec<Vec<Value>> = idxs.iter().map(|&i| input.col_values(i).to_vec()).collect();
    let mut out = Relation::from_columns(schema, cols)?;
    if columns.is_empty() {
        // A nullary projection still yields one (empty) tuple per input row;
        // with no columns the length cannot be inferred from the data.
        out.set_len(input.len());
    }
    Ok(out)
}

/// Rename columns: `renames` maps old name → new name. Columns not mentioned
/// keep their names. A pure metadata change plus a column clone.
pub fn rename(input: &Relation, renames: &[(&str, &str)]) -> RelResult<Relation> {
    for (old, _) in renames {
        input.schema().require(old)?;
    }
    let new_cols: Vec<String> = input
        .schema()
        .columns()
        .iter()
        .map(|c| {
            renames
                .iter()
                .find(|(old, _)| old == c)
                .map(|(_, new)| (*new).to_owned())
                .unwrap_or_else(|| c.clone())
        })
        .collect();
    let cols: Vec<Vec<Value>> = (0..input.schema().arity())
        .map(|i| input.col_values(i).to_vec())
        .collect();
    Relation::from_columns(Schema::new(new_cols), cols)
}

/// Hash equi-join of `left` and `right` on `left_keys[i] = right_keys[i]`.
///
/// The output schema is `left.schema ++ right.schema` with right-side name
/// collisions suffixed (see [`Schema::concat`]). `Null` keys join with `Null`
/// keys (the engine relies on this for padded template columns).
pub fn hash_join(
    left: &Relation,
    right: &Relation,
    left_keys: &[&str],
    right_keys: &[&str],
) -> RelResult<Relation> {
    if left_keys.len() != right_keys.len() {
        return Err(RelError::KeyLengthMismatch {
            left: left_keys.len(),
            right: right_keys.len(),
        });
    }
    let left_idx: Vec<usize> = left_keys
        .iter()
        .map(|c| left.schema().require(c))
        .collect::<RelResult<_>>()?;
    let right_idx: Vec<usize> = right_keys
        .iter()
        .map(|c| right.schema().require(c))
        .collect::<RelResult<_>>()?;

    let out_schema = left.schema().concat(right.schema());
    let mut out = Relation::new(out_schema);

    // Build on the smaller side.
    if left.len() <= right.len() {
        let index = HashIndex::build_on_indices(left, left_idx);
        for rt in right.iter() {
            for &lrow in index.probe_row(rt, &right_idx) {
                out.push_concat(left.row(lrow), rt);
            }
        }
    } else {
        let index = HashIndex::build_on_indices(right, right_idx);
        for lt in left.iter() {
            for &rrow in index.probe_row(lt, &left_idx) {
                out.push_concat(lt, right.row(rrow));
            }
        }
    }
    Ok(out)
}

/// Natural join: equi-join on all columns the two schemas share, keeping a
/// single copy of each shared column.
pub fn natural_join(left: &Relation, right: &Relation) -> RelResult<Relation> {
    let shared: Vec<&str> = left
        .schema()
        .columns()
        .iter()
        .filter(|c| right.schema().contains(c))
        .map(|c| c.as_str())
        .collect();
    if shared.is_empty() {
        return cross_product(left, right);
    }
    let joined = hash_join(left, right, &shared, &shared)?;
    // Drop the duplicated right-side key columns (they were renamed with a
    // suffix by Schema::concat).
    let keep: Vec<&str> = joined
        .schema()
        .columns()
        .iter()
        .enumerate()
        .filter(|(i, _)| {
            // keep left columns and right columns that are not renamed
            // duplicates of shared columns
            let col = joined.schema().column(*i);
            let renamed_duplicate = (col.ends_with("_r")
                && shared.contains(&&col[..col.len() - 2]))
                || col.rfind("_r").is_some_and(|pos| {
                    // handle _r2, _r3 ... suffixes
                    let base = &col[..pos];
                    let suffix = &col[pos + 2..];
                    shared.contains(&base) && suffix.chars().all(|c| c.is_ascii_digit())
                });
            !renamed_duplicate
        })
        .map(|(_, c)| c.as_str())
        .collect();
    project(&joined, &keep)
}

/// Semi-join: tuples of `left` that have at least one join partner in
/// `right` on the given keys.
pub fn semi_join(
    left: &Relation,
    right: &Relation,
    left_keys: &[&str],
    right_keys: &[&str],
) -> RelResult<Relation> {
    if left_keys.len() != right_keys.len() {
        return Err(RelError::KeyLengthMismatch {
            left: left_keys.len(),
            right: right_keys.len(),
        });
    }
    let left_idx: Vec<usize> = left_keys
        .iter()
        .map(|c| left.schema().require(c))
        .collect::<RelResult<_>>()?;
    let right_idx: Vec<usize> = right_keys
        .iter()
        .map(|c| right.schema().require(c))
        .collect::<RelResult<_>>()?;
    let index = HashIndex::build_on_indices(right, right_idx);
    let mut out = Relation::new(left.schema().clone());
    for t in left.iter() {
        if !index.probe_row(t, &left_idx).is_empty() {
            out.push_row(t);
        }
    }
    Ok(out)
}

/// Anti-join: tuples of `left` that have **no** join partner in `right`.
pub fn anti_join(
    left: &Relation,
    right: &Relation,
    left_keys: &[&str],
    right_keys: &[&str],
) -> RelResult<Relation> {
    if left_keys.len() != right_keys.len() {
        return Err(RelError::KeyLengthMismatch {
            left: left_keys.len(),
            right: right_keys.len(),
        });
    }
    let left_idx: Vec<usize> = left_keys
        .iter()
        .map(|c| left.schema().require(c))
        .collect::<RelResult<_>>()?;
    let right_idx: Vec<usize> = right_keys
        .iter()
        .map(|c| right.schema().require(c))
        .collect::<RelResult<_>>()?;
    let index = HashIndex::build_on_indices(right, right_idx);
    let mut out = Relation::new(left.schema().clone());
    for t in left.iter() {
        if index.probe_row(t, &left_idx).is_empty() {
            out.push_row(t);
        }
    }
    Ok(out)
}

/// Bag union of two relations with equal schemas.
pub fn union(left: &Relation, right: &Relation) -> RelResult<Relation> {
    let mut out = left.clone();
    out.extend_from(right)?;
    Ok(out)
}

/// Set difference (`left` minus `right`) over equal schemas.
pub fn difference(left: &Relation, right: &Relation) -> RelResult<Relation> {
    if left.schema() != right.schema() {
        return Err(RelError::ArityMismatch {
            context: "difference".into(),
            expected: left.schema().arity(),
            found: right.schema().arity(),
        });
    }
    let right_set: FxHashSet<Vec<&Value>> = right
        .iter()
        .map(|t| t.iter().collect::<Vec<&Value>>())
        .collect();
    let mut out = Relation::new(left.schema().clone());
    for t in left.iter() {
        let key: Vec<&Value> = t.iter().collect();
        if !right_set.contains(&key) {
            out.push_row(t);
        }
    }
    Ok(out)
}

/// Cross product. The output schema concatenates the inputs (with right-side
/// collisions renamed).
pub fn cross_product(left: &Relation, right: &Relation) -> RelResult<Relation> {
    let mut out = Relation::new(left.schema().concat(right.schema()));
    for lt in left.iter() {
        for rt in right.iter() {
            out.push_concat(lt, rt);
        }
    }
    Ok(out)
}

/// Group tuples by the given key columns and count group sizes. The output
/// schema is the key columns followed by a `count` column.
pub fn count_by(input: &Relation, key_columns: &[&str]) -> RelResult<Relation> {
    let idxs: Vec<usize> = key_columns
        .iter()
        .map(|c| input.schema().require(c))
        .collect::<RelResult<_>>()?;
    let mut counts: std::collections::HashMap<Vec<Value>, i64> = std::collections::HashMap::new();
    for t in input.iter() {
        let key: Vec<Value> = idxs.iter().map(|&i| t[i].clone()).collect();
        *counts.entry(key).or_insert(0) += 1;
    }
    let mut cols: Vec<String> = key_columns.iter().map(|c| (*c).to_owned()).collect();
    cols.push("count".to_owned());
    let mut out = Relation::new(Schema::new(cols));
    for (key, count) in counts {
        let mut row = key;
        row.push(Value::Int(count));
        out.push_values(row).expect("key arity plus count column"); // lint:allow schema built with the extra count column
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(cols: &[&str], rows: &[&[Value]]) -> Relation {
        let mut r = Relation::new(Schema::new(cols.iter().map(|c| c.to_string())));
        for row in rows {
            r.push_values(row.to_vec()).unwrap();
        }
        r
    }

    fn emp() -> Relation {
        rel(
            &["name", "dept"],
            &[
                &[Value::str("alice"), Value::str("db")],
                &[Value::str("bob"), Value::str("os")],
                &[Value::str("carol"), Value::str("db")],
            ],
        )
    }

    fn dept() -> Relation {
        rel(
            &["dept", "floor"],
            &[
                &[Value::str("db"), Value::int(3)],
                &[Value::str("pl"), Value::int(5)],
            ],
        )
    }

    #[test]
    fn select_and_select_eq() {
        let e = emp();
        let db_only = select(&e, |t| t[1] == Value::str("db"));
        assert_eq!(db_only.len(), 2);
        let eq = select_eq(&e, "name", &Value::str("bob")).unwrap();
        assert_eq!(eq.len(), 1);
        assert!(select_eq(&e, "missing", &Value::Null).is_err());
    }

    #[test]
    fn project_columns() {
        let e = emp();
        let p = project(&e, &["dept"]).unwrap();
        assert_eq!(p.schema().columns(), &["dept"]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.distinct().len(), 2);
        assert!(project(&e, &["nope"]).is_err());
    }

    #[test]
    fn rename_columns() {
        let e = emp();
        let r = rename(&e, &[("dept", "department")]).unwrap();
        assert!(r.schema().contains("department"));
        assert!(!r.schema().contains("dept"));
        assert!(rename(&e, &[("missing", "x")]).is_err());
    }

    #[test]
    fn hash_join_basic() {
        let j = hash_join(&emp(), &dept(), &["dept"], &["dept"]).unwrap();
        // alice and carol are in db (floor 3); bob's dept has no match.
        assert_eq!(j.len(), 2);
        assert_eq!(j.schema().columns(), &["name", "dept", "dept_r", "floor"]);
        for t in j.iter() {
            assert_eq!(t[1], t[2]);
            assert_eq!(t[3], Value::int(3));
        }
    }

    #[test]
    fn hash_join_builds_on_smaller_side_same_result() {
        // Join in both orders; result cardinality must match.
        let a = emp();
        let b = dept();
        let j1 = hash_join(&a, &b, &["dept"], &["dept"]).unwrap();
        let j2 = hash_join(&b, &a, &["dept"], &["dept"]).unwrap();
        assert_eq!(j1.len(), j2.len());
    }

    #[test]
    fn hash_join_key_length_mismatch() {
        let err = hash_join(&emp(), &dept(), &["dept"], &[]).unwrap_err();
        assert!(matches!(err, RelError::KeyLengthMismatch { .. }));
    }

    #[test]
    fn hash_join_multi_key() {
        let l = rel(
            &["a", "b", "x"],
            &[
                &[Value::int(1), Value::int(2), Value::str("l1")],
                &[Value::int(1), Value::int(3), Value::str("l2")],
            ],
        );
        let r = rel(
            &["a", "b", "y"],
            &[
                &[Value::int(1), Value::int(2), Value::str("r1")],
                &[Value::int(9), Value::int(2), Value::str("r2")],
            ],
        );
        let j = hash_join(&l, &r, &["a", "b"], &["a", "b"]).unwrap();
        assert_eq!(j.len(), 1);
    }

    #[test]
    fn natural_join_drops_duplicate_columns() {
        let j = natural_join(&emp(), &dept()).unwrap();
        assert_eq!(j.schema().columns(), &["name", "dept", "floor"]);
        assert_eq!(j.len(), 2);
    }

    #[test]
    fn natural_join_without_shared_columns_is_cross_product() {
        let a = rel(&["x"], &[&[Value::int(1)], &[Value::int(2)]]);
        let b = rel(&["y"], &[&[Value::int(10)]]);
        let j = natural_join(&a, &b).unwrap();
        assert_eq!(j.len(), 2);
        assert_eq!(j.schema().arity(), 2);
    }

    #[test]
    fn semi_and_anti_join_partition_left() {
        let s = semi_join(&emp(), &dept(), &["dept"], &["dept"]).unwrap();
        let a = anti_join(&emp(), &dept(), &["dept"], &["dept"]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(a.len(), 1);
        assert_eq!(s.len() + a.len(), emp().len());
        assert_eq!(s.schema(), emp().schema());
        assert!(semi_join(&emp(), &dept(), &["dept"], &[]).is_err());
        assert!(anti_join(&emp(), &dept(), &["dept"], &[]).is_err());
    }

    #[test]
    fn union_and_difference() {
        let e = emp();
        let u = union(&e, &e).unwrap();
        assert_eq!(u.len(), 6);
        let d = difference(
            &u.distinct(),
            &rel(&["name", "dept"], &[&[Value::str("bob"), Value::str("os")]]),
        )
        .unwrap();
        assert_eq!(d.len(), 2);
        assert!(difference(&e, &dept()).is_err());
    }

    #[test]
    fn cross_product_cardinality() {
        let c = cross_product(&emp(), &dept()).unwrap();
        assert_eq!(c.len(), 6);
        assert_eq!(c.schema().arity(), 4);
    }

    #[test]
    fn count_by_groups() {
        let c = count_by(&emp(), &["dept"]).unwrap();
        assert_eq!(c.len(), 2);
        let db_count = c
            .iter()
            .find(|t| t[0] == Value::str("db"))
            .map(|t| t[1].as_int().unwrap())
            .unwrap();
        assert_eq!(db_count, 2);
        assert!(count_by(&emp(), &["missing"]).is_err());
    }

    #[test]
    fn join_with_null_keys_matches_null() {
        let l = rel(&["k", "v"], &[&[Value::Null, Value::str("a")]]);
        let r = rel(&["k", "w"], &[&[Value::Null, Value::str("b")]]);
        let j = hash_join(&l, &r, &["k"], &["k"]).unwrap();
        assert_eq!(j.len(), 1);
    }

    #[test]
    fn empty_inputs_produce_empty_outputs() {
        let empty = Relation::new(Schema::new(["dept", "floor"]));
        assert_eq!(
            hash_join(&emp(), &empty, &["dept"], &["dept"])
                .unwrap()
                .len(),
            0
        );
        assert_eq!(
            semi_join(&emp(), &empty, &["dept"], &["dept"])
                .unwrap()
                .len(),
            0
        );
        assert_eq!(
            anti_join(&emp(), &empty, &["dept"], &["dept"])
                .unwrap()
                .len(),
            3
        );
        assert_eq!(cross_product(&emp(), &empty).unwrap().len(), 0);
    }
}
