//! Hash indexes over relations.

use crate::error::RelResult;
use crate::fxhash::FxHashMap;
use crate::relation::{Relation, RowRef};
use crate::value::Value;

/// A multi-column hash index mapping key values to the row indices of a
/// relation that carry them.
///
/// The Join Processor builds hash indexes over the probe side of every
/// equi-join, and the engine keeps a persistent index over the `strVal`
/// column of `Rdoc` so Algorithm 4's semi-join (`RdocW ⋉ Rdoc`) is a hash
/// lookup per distinct current-document string value. Keyed with
/// [`FxHasher`](crate::FxHasher): index keys are interned symbols and small
/// integers, where the Fx mix beats SipHash by a wide margin.
#[derive(Debug, Clone, Default)]
pub struct HashIndex {
    key_columns: Vec<usize>,
    map: FxHashMap<Vec<Value>, Vec<usize>>,
}

impl HashIndex {
    /// Build an index over `relation` keyed on the named columns.
    pub fn build(relation: &Relation, key_columns: &[&str]) -> RelResult<Self> {
        let cols: Vec<usize> = key_columns
            .iter()
            .map(|c| relation.schema().require(c))
            .collect::<RelResult<_>>()?;
        Ok(Self::build_on_indices(relation, cols))
    }

    /// Build an index keyed on column positions. The build walks the key
    /// columns' contiguous value slices rather than whole rows.
    pub fn build_on_indices(relation: &Relation, key_columns: Vec<usize>) -> Self {
        let mut map: FxHashMap<Vec<Value>, Vec<usize>> =
            FxHashMap::with_capacity_and_hasher(relation.len(), Default::default());
        let cols: Vec<&[Value]> = key_columns
            .iter()
            .map(|&c| relation.col_values(c))
            .collect();
        for row in 0..relation.len() {
            let key: Vec<Value> = cols.iter().map(|c| c[row].clone()).collect();
            map.entry(key).or_default().push(row);
        }
        HashIndex { key_columns, map }
    }

    /// The column positions this index is keyed on.
    pub fn key_columns(&self) -> &[usize] {
        &self.key_columns
    }

    /// Row indices whose key equals `key`.
    pub fn lookup(&self, key: &[Value]) -> &[usize] {
        self.map.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Row indices matching the key extracted from `tuple` (a value slice)
    /// using the probe column positions `probe_columns` (which must have the
    /// same length as the index key).
    pub fn probe<'a>(&'a self, tuple: &[Value], probe_columns: &[usize]) -> &'a [usize] {
        debug_assert_eq!(probe_columns.len(), self.key_columns.len());
        let key: Vec<Value> = probe_columns.iter().map(|&c| tuple[c].clone()).collect();
        self.map.get(&key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Row indices matching the key extracted from a borrowed relation row.
    pub fn probe_row<'a>(&'a self, row: RowRef<'_>, probe_columns: &[usize]) -> &'a [usize] {
        debug_assert_eq!(probe_columns.len(), self.key_columns.len());
        let key: Vec<Value> = probe_columns.iter().map(|&c| row[c].clone()).collect();
        self.map.get(&key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// `true` if some row carries this key.
    pub fn contains_key(&self, key: &[Value]) -> bool {
        self.map.contains_key(key)
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Add a new row to the index incrementally.
    pub fn insert_row(&mut self, tuple: &[Value], row: usize) {
        let key: Vec<Value> = self.key_columns.iter().map(|&c| tuple[c].clone()).collect();
        self.map.entry(key).or_default().push(row);
    }

    /// Iterate over (key, row indices) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<Value>, &Vec<usize>)> {
        self.map.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn people() -> Relation {
        let mut r = Relation::new(Schema::new(["name", "city", "age"]));
        for (n, c, a) in [
            ("alice", "ithaca", 30),
            ("bob", "ithaca", 41),
            ("carol", "berlin", 30),
            ("dave", "berlin", 30),
        ] {
            r.push_values(vec![Value::str(n), Value::str(c), Value::int(a)])
                .unwrap();
        }
        r
    }

    #[test]
    fn single_column_index() {
        let r = people();
        let idx = HashIndex::build(&r, &["city"]).unwrap();
        assert_eq!(idx.lookup(&[Value::str("ithaca")]), &[0, 1]);
        assert_eq!(idx.lookup(&[Value::str("berlin")]), &[2, 3]);
        assert!(idx.lookup(&[Value::str("paris")]).is_empty());
        assert_eq!(idx.distinct_keys(), 2);
        assert!(idx.contains_key(&[Value::str("ithaca")]));
    }

    #[test]
    fn multi_column_index() {
        let r = people();
        let idx = HashIndex::build(&r, &["city", "age"]).unwrap();
        assert_eq!(idx.lookup(&[Value::str("berlin"), Value::int(30)]), &[2, 3]);
        assert_eq!(idx.lookup(&[Value::str("ithaca"), Value::int(30)]), &[0]);
        assert_eq!(idx.key_columns(), &[1, 2]);
    }

    #[test]
    fn probe_with_other_tuple() {
        let r = people();
        let idx = HashIndex::build(&r, &["age"]).unwrap();
        // Probe with a tuple whose age is at position 0.
        let probe_tuple = vec![Value::int(30)];
        assert_eq!(idx.probe(&probe_tuple, &[0]), &[0, 2, 3]);
        // Probing with a borrowed row finds the same partners.
        assert_eq!(idx.probe_row(r.row(0), &[2]), &[0, 2, 3]);
    }

    #[test]
    fn unknown_column_is_error() {
        let r = people();
        assert!(HashIndex::build(&r, &["nope"]).is_err());
    }

    #[test]
    fn incremental_insert() {
        let r = people();
        let mut idx = HashIndex::build(&r, &["city"]).unwrap();
        let new_row = vec![Value::str("erin"), Value::str("paris"), Value::int(9)];
        idx.insert_row(&new_row, 4);
        assert_eq!(idx.lookup(&[Value::str("paris")]), &[4]);
        assert_eq!(idx.distinct_keys(), 3);
    }

    #[test]
    fn iter_covers_all_keys() {
        let r = people();
        let idx = HashIndex::build(&r, &["city"]).unwrap();
        let total_rows: usize = idx.iter().map(|(_, rows)| rows.len()).sum();
        assert_eq!(total_rows, r.len());
    }
}
