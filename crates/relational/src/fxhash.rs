//! A small Fx-style hasher for the join-processing hot paths.
//!
//! The standard library's default SipHash is DoS-resistant but costs tens of
//! cycles per key — far more than the multiply-and-rotate mix used by
//! compiler-grade hash maps. The MMQJP engine hashes *interned* symbols and
//! small integers (never attacker-controlled raw strings) on every join
//! build/probe and every per-bucket index insert, so the Fx construction is
//! the right trade-off. Vendored (no crates.io dependency): the algorithm is
//! the well-known `FxHasher` used by rustc — fold each 8-byte word into the
//! state with a rotate, xor and multiply by a sparse odd constant.

use std::hash::{BuildHasherDefault, Hasher};

/// The multiplier used by the Fx construction (a sparse odd 64-bit constant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher for fixed-width keys (symbols, node ids,
/// document ids and small composite join keys).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let (chunk, rest) = bytes.split_at(8);
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"))); // lint:allow split_at(8) yields 8 bytes
            bytes = rest;
        }
        if bytes.len() >= 4 {
            let (chunk, rest) = bytes.split_at(4);
            self.add_to_hash(u64::from(u32::from_le_bytes(
                chunk.try_into().expect("4-byte chunk"), // lint:allow split_at(4) yields 4 bytes
            )));
            bytes = rest;
        }
        for &b in bytes {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// [`std::hash::BuildHasher`] producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A [`std::collections::HashMap`] keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A [`std::collections::HashSet`] keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: &T) -> u64 {
        let mut h = FxHasher::default();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn hashing_is_deterministic() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"witness"), hash_of(&"witness"));
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
    }

    #[test]
    fn byte_paths_cover_all_widths() {
        // 8-byte, 4-byte and trailing-byte paths all mix into the state.
        for len in 0..=17usize {
            let bytes: Vec<u8> = (0..len as u8).collect();
            let mut h = FxHasher::default();
            h.write(&bytes);
            let first = h.finish();
            let mut h2 = FxHasher::default();
            h2.write(&bytes);
            assert_eq!(first, h2.finish());
        }
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut map: FxHashMap<u64, &str> = FxHashMap::default();
        map.insert(7, "seven");
        assert_eq!(map.get(&7), Some(&"seven"));
        let mut set: FxHashSet<&str> = FxHashSet::default();
        assert!(set.insert("a"));
        assert!(!set.insert("a"));
    }
}
