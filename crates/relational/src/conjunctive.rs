//! Datalog-style conjunctive queries.
//!
//! A conjunctive query has a head (the output variables) and a body (a list
//! of relational atoms over variables and constants). The MMQJP Join
//! Processor generates one conjunctive query `CQ_T` per query template
//! (Section 4.4 of the paper) and evaluates it against the witness relations
//! and the template's `RT` relation.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A term in an atom: either a named variable or a constant value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Term {
    /// A query variable; occurrences of the same name must bind equal values.
    Var(String),
    /// A constant that the corresponding column must equal.
    Const(Value),
}

impl Term {
    /// Construct a variable term.
    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(name.into())
    }

    /// Construct a constant term.
    pub fn constant(value: impl Into<Value>) -> Term {
        Term::Const(value.into())
    }

    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A single body atom: a relation name applied to a list of terms.
///
/// The atom's arity must match the arity of the relation it refers to; this
/// is checked at evaluation time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Atom {
    /// Name of the relation in the [`Database`](crate::Database).
    pub relation: String,
    /// Positional terms.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Construct an atom.
    pub fn new<I>(relation: impl Into<String>, terms: I) -> Atom
    where
        I: IntoIterator<Item = Term>,
    {
        Atom {
            relation: relation.into(),
            terms: terms.into_iter().collect(),
        }
    }

    /// The distinct variable names mentioned by this atom, in first-occurrence
    /// order.
    pub fn variables(&self) -> Vec<&str> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for t in &self.terms {
            if let Term::Var(v) = t {
                if seen.insert(v.as_str()) {
                    out.push(v.as_str());
                }
            }
        }
        out
    }

    /// `true` if this atom mentions the variable.
    pub fn mentions(&self, var: &str) -> bool {
        self.terms.iter().any(|t| t.as_var() == Some(var))
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let terms: Vec<String> = self.terms.iter().map(|t| t.to_string()).collect();
        write!(f, "{}({})", self.relation, terms.join(", "))
    }
}

/// A conjunctive query: `head(v1, ..., vk) :- atom1, atom2, ...`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConjunctiveQuery {
    /// Output variables, in output-column order.
    pub head: Vec<String>,
    /// Body atoms.
    pub body: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// Start a query with the given head variables.
    pub fn new<I, S>(head: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        ConjunctiveQuery {
            head: head.into_iter().map(Into::into).collect(),
            body: Vec::new(),
        }
    }

    /// Add a body atom (builder style).
    pub fn atom(mut self, atom: Atom) -> Self {
        self.body.push(atom);
        self
    }

    /// Add a body atom in place.
    pub fn push_atom(&mut self, atom: Atom) {
        self.body.push(atom);
    }

    /// All distinct variables appearing in the body, in first-occurrence
    /// order.
    pub fn body_variables(&self) -> Vec<&str> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for a in &self.body {
            for t in &a.terms {
                if let Term::Var(v) = t {
                    if seen.insert(v.as_str()) {
                        out.push(v.as_str());
                    }
                }
            }
        }
        out
    }

    /// Check structural validity: non-empty body and every head variable
    /// bound by some body atom. Returns a human-readable reason on failure.
    pub fn validate(&self) -> Result<(), String> {
        if self.body.is_empty() {
            return Err("query body is empty".to_owned());
        }
        let body_vars: BTreeSet<&str> = self.body_variables().into_iter().collect();
        for h in &self.head {
            if !body_vars.contains(h.as_str()) {
                return Err(format!("head variable `{h}` is not bound in the body"));
            }
        }
        Ok(())
    }

    /// Number of body atoms.
    pub fn num_atoms(&self) -> usize {
        self.body.len()
    }

    /// `true` when the join graph of the body is connected (every atom can be
    /// reached from the first through shared variables). Queries generated by
    /// the MMQJP engine are always connected; disconnected bodies degrade to
    /// cross products.
    pub fn is_connected(&self) -> bool {
        if self.body.len() <= 1 {
            return true;
        }
        let mut reached = vec![false; self.body.len()];
        reached[0] = true;
        let mut vars: BTreeSet<&str> = self.body[0].variables().into_iter().collect();
        loop {
            let mut progress = false;
            for (i, atom) in self.body.iter().enumerate() {
                if reached[i] {
                    continue;
                }
                if atom.variables().iter().any(|v| vars.contains(v)) {
                    reached[i] = true;
                    vars.extend(atom.variables());
                    progress = true;
                }
            }
            if !progress {
                break;
            }
        }
        reached.into_iter().all(|r| r)
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let body: Vec<String> = self.body.iter().map(|a| a.to_string()).collect();
        write!(f, "out({}) :- {}", self.head.join(", "), body.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_constructors() {
        assert_eq!(Term::var("X").as_var(), Some("X"));
        assert_eq!(Term::constant(3i64).as_var(), None);
        assert_eq!(Term::var("X").to_string(), "X");
        assert_eq!(Term::constant(3i64).to_string(), "3");
    }

    #[test]
    fn atom_variables_dedup_in_order() {
        let a = Atom::new(
            "R",
            [
                Term::var("X"),
                Term::var("Y"),
                Term::var("X"),
                Term::constant(1i64),
            ],
        );
        assert_eq!(a.variables(), vec!["X", "Y"]);
        assert!(a.mentions("X"));
        assert!(!a.mentions("Z"));
        assert_eq!(a.to_string(), "R(X, Y, X, 1)");
    }

    #[test]
    fn query_builder_and_display() {
        let q = ConjunctiveQuery::new(["X"])
            .atom(Atom::new("R", [Term::var("X"), Term::var("Y")]))
            .atom(Atom::new("S", [Term::var("Y")]));
        assert_eq!(q.num_atoms(), 2);
        assert_eq!(q.body_variables(), vec!["X", "Y"]);
        assert!(q.to_string().contains(":-"));
        assert!(q.validate().is_ok());
        assert!(q.is_connected());
    }

    #[test]
    fn validate_rejects_unbound_head() {
        let q = ConjunctiveQuery::new(["Z"]).atom(Atom::new("R", [Term::var("X")]));
        assert!(q.validate().is_err());
    }

    #[test]
    fn validate_rejects_empty_body() {
        let q = ConjunctiveQuery::new(["X"]);
        assert!(q.validate().is_err());
    }

    #[test]
    fn connectivity_detection() {
        let connected = ConjunctiveQuery::new(["X"])
            .atom(Atom::new("R", [Term::var("X"), Term::var("Y")]))
            .atom(Atom::new("S", [Term::var("Y"), Term::var("Z")]));
        assert!(connected.is_connected());

        let disconnected = ConjunctiveQuery::new(["X"])
            .atom(Atom::new("R", [Term::var("X")]))
            .atom(Atom::new("S", [Term::var("Z")]));
        assert!(!disconnected.is_connected());

        let single = ConjunctiveQuery::new(["X"]).atom(Atom::new("R", [Term::var("X")]));
        assert!(single.is_connected());
    }

    #[test]
    fn push_atom_in_place() {
        let mut q = ConjunctiveQuery::new(["X"]);
        q.push_atom(Atom::new("R", [Term::var("X")]));
        assert_eq!(q.num_atoms(), 1);
    }
}
