//! Relation schemas: ordered, named columns.

use crate::error::{RelError, RelResult};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// An ordered list of column names.
///
/// Schemas are cheap to clone (`Arc` backed) and compared by column names in
/// order. Column lookup by name is linear, which is appropriate for the small
/// arities (≤ ~20 columns) of the MMQJP witness and template relations.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Schema {
    columns: Arc<[String]>,
}

impl Schema {
    /// Create a schema from column names.
    ///
    /// # Panics
    /// Panics if two columns share a name (schemas are small and constructed
    /// by the engine; a duplicate is a programming error).
    pub fn new<I, S>(columns: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let cols: Vec<String> = columns.into_iter().map(Into::into).collect();
        for (i, c) in cols.iter().enumerate() {
            assert!(
                !cols[..i].contains(c),
                "duplicate column name `{c}` in schema"
            );
        }
        Schema {
            columns: cols.into(),
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Column names in order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Name of the column at `index`.
    pub fn column(&self, index: usize) -> &str {
        &self.columns[index]
    }

    /// Index of the column with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Index of the column with the given name, or an error listing the
    /// available columns.
    pub fn require(&self, name: &str) -> RelResult<usize> {
        self.index_of(name).ok_or_else(|| RelError::UnknownColumn {
            column: name.to_owned(),
            available: self.columns.to_vec(),
        })
    }

    /// `true` if a column with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.index_of(name).is_some()
    }

    /// Build a new schema by concatenating `self` and `other`. Columns of
    /// `other` that collide with a column of `self` are renamed by appending
    /// a suffix (`_r`, `_r2`, ...), mirroring what SQL engines do for
    /// self-joins.
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut cols: Vec<String> = self.columns.to_vec();
        for c in other.columns.iter() {
            let mut name = c.clone();
            let mut n = 1usize;
            while cols.contains(&name) {
                n += 1;
                name = if n == 2 {
                    format!("{c}_r")
                } else {
                    format!("{c}_r{n}")
                };
            }
            cols.push(name);
        }
        Schema {
            columns: cols.into(),
        }
    }

    /// Project a subset of columns (by name) into a new schema, preserving
    /// the order given.
    pub fn project(&self, names: &[&str]) -> RelResult<Schema> {
        let mut cols = Vec::with_capacity(names.len());
        for n in names {
            self.require(n)?;
            cols.push((*n).to_owned());
        }
        Ok(Schema {
            columns: cols.into(),
        })
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({})", self.columns.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let s = Schema::new(["docid", "node", "strVal"]);
        assert_eq!(s.arity(), 3);
        assert_eq!(s.column(1), "node");
        assert_eq!(s.index_of("strVal"), Some(2));
        assert_eq!(s.index_of("missing"), None);
        assert!(s.contains("docid"));
        assert!(!s.contains("x"));
        assert_eq!(s.to_string(), "(docid, node, strVal)");
    }

    #[test]
    fn require_error_lists_columns() {
        let s = Schema::new(["a", "b"]);
        let err = s.require("c").unwrap_err();
        match err {
            RelError::UnknownColumn { column, available } => {
                assert_eq!(column, "c");
                assert_eq!(available, vec!["a".to_string(), "b".to_string()]);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_columns_panic() {
        let _ = Schema::new(["a", "a"]);
    }

    #[test]
    fn concat_renames_collisions() {
        let a = Schema::new(["docid", "node"]);
        let b = Schema::new(["node", "strVal"]);
        let c = a.concat(&b);
        assert_eq!(c.columns(), &["docid", "node", "node_r", "strVal"]);
        // A third collision gets a numbered suffix.
        let d = c.concat(&Schema::new(["node"]));
        assert!(
            d.contains("node_r2")
                || d.columns().iter().filter(|c| c.starts_with("node")).count() == 3
        );
    }

    #[test]
    fn project_preserves_order() {
        let s = Schema::new(["a", "b", "c"]);
        let p = s.project(&["c", "a"]).unwrap();
        assert_eq!(p.columns(), &["c", "a"]);
        assert!(s.project(&["missing"]).is_err());
    }

    #[test]
    fn equality_by_names() {
        assert_eq!(Schema::new(["a", "b"]), Schema::new(["a", "b"]));
        assert_ne!(Schema::new(["a", "b"]), Schema::new(["b", "a"]));
    }
}
