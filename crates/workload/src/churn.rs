//! Churn-heavy windowed workload for sustained-throughput experiments.
//!
//! The paper's RSS experiment (Section 6.3) uses infinite windows, so join
//! state only ever grows; it cannot show whether state *management* keeps up
//! over time. This workload pairs the synthetic RSS stream with finite,
//! heterogeneous time windows and a deliberately small value vocabulary, so
//! that on a long stream
//!
//! * join state continuously enters **and leaves** the windows (churn), and
//! * value joins keep firing throughout (small vocabularies ⇒ repeats).
//!
//! An engine with incremental, bucketed expiry sustains a flat docs/s rate
//! on this stream; one that rebuilds its state indexes (or drops its view
//! cache) on every expiry degrades as the stream grows. The
//! `fig18_window_churn` bench target and the long-stream boundedness tests
//! are built on this generator.

use crate::rss::{RssQueryGenerator, RssStreamConfig, RssStreamGenerator};
use mmqjp_xml::Document;
use mmqjp_xscl::{Window, XsclQuery};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of the churn workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Number of feed items in the stream (timestamps advance by 2 per
    /// item, so the stream spans `2 × items` time units).
    pub items: usize,
    /// Number of registered queries, split evenly across `windows`.
    pub num_queries: usize,
    /// The finite time windows assigned to the queries (heterogeneous
    /// windows make per-shard maxima differ under sharding).
    pub windows: Vec<u64>,
    /// Title vocabulary size (small ⇒ heavy cross-item joining).
    pub title_vocabulary: usize,
    /// Description vocabulary size.
    pub description_vocabulary: usize,
    /// Number of channels.
    pub channels: usize,
    /// Zipf parameter for the per-query number of value joins and the
    /// stream's vocabulary popularity.
    pub skew: f64,
    /// Seed for deterministic generation.
    pub seed: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            items: 2_000,
            num_queries: 100,
            windows: vec![40, 120, 400],
            title_vocabulary: 40,
            description_vocabulary: 80,
            channels: 25,
            skew: 0.8,
            seed: 77,
        }
    }
}

/// Generator of the churn workload: windowed queries plus a long, join-heavy
/// document stream.
#[derive(Debug, Clone)]
pub struct ChurnWorkload {
    config: ChurnConfig,
}

impl ChurnWorkload {
    /// Create a workload for the given configuration.
    pub fn new(config: ChurnConfig) -> Self {
        assert!(!config.windows.is_empty(), "need at least one window");
        ChurnWorkload { config }
    }

    /// The configuration this workload was built with.
    pub fn config(&self) -> &ChurnConfig {
        &self.config
    }

    /// Generate the windowed query set: exactly `num_queries` random RSS
    /// join queries, split as evenly as possible across the configured
    /// windows (earlier windows receive the remainder).
    pub fn queries(&self) -> Vec<XsclQuery> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let num_windows = self.config.windows.len();
        let per_window = self.config.num_queries / num_windows;
        let remainder = self.config.num_queries % num_windows;
        let mut queries = Vec::with_capacity(self.config.num_queries);
        for (i, &window) in self.config.windows.iter().enumerate() {
            let generator =
                RssQueryGenerator::new(self.config.skew).with_window(Window::Time(window));
            let count = per_window + usize::from(i < remainder);
            queries.extend(generator.generate_queries(count, &mut rng));
        }
        queries
    }

    /// Generate the document stream (strictly increasing timestamps).
    pub fn documents(&self) -> Vec<Document> {
        self.stream_config(self.config.items).documents()
    }

    /// Generate a stream of a different length with otherwise identical
    /// parameters (used by the bench to sweep stream length).
    pub fn documents_with_items(&self, items: usize) -> Vec<Document> {
        self.stream_config(items).documents()
    }

    /// The largest configured window.
    pub fn max_window(&self) -> u64 {
        // lint:allow every constructor populates at least one window
        *self.config.windows.iter().max().expect("non-empty windows")
    }

    fn stream_config(&self, items: usize) -> RssStreamGenerator {
        RssStreamGenerator::new(RssStreamConfig {
            items,
            channels: self.config.channels,
            title_vocabulary: self.config.title_vocabulary,
            description_vocabulary: self.config.description_vocabulary,
            skew: self.config.skew,
            seed: self.config.seed,
        })
    }
}

impl Default for ChurnWorkload {
    fn default() -> Self {
        ChurnWorkload::new(ChurnConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmqjp_core::{EngineConfig, MmqjpEngine};

    #[test]
    fn queries_cover_every_window_and_are_deterministic() {
        let w = ChurnWorkload::default();
        let queries = w.queries();
        assert_eq!(queries.len(), 100); // 34 + 33 + 33 across the 3 windows
        let windows: std::collections::HashSet<_> =
            queries.iter().filter_map(|q| q.window()).collect();
        assert_eq!(
            windows,
            [40, 120, 400].map(Window::Time).into_iter().collect()
        );
        let again = ChurnWorkload::default().queries();
        assert_eq!(queries.len(), again.len());
        assert_eq!(w.max_window(), 400);
    }

    #[test]
    fn stream_is_long_and_join_heavy() {
        let w = ChurnWorkload::new(ChurnConfig {
            items: 500,
            ..ChurnConfig::default()
        });
        let docs = w.documents();
        assert_eq!(docs.len(), 500);
        let short = w.documents_with_items(100);
        assert_eq!(short.len(), 100);
        // Same prefix parameters: the shorter stream is a prefix workload.
        assert_eq!(w.config().items, 500);
    }

    #[test]
    fn windowed_ingestion_produces_matches_and_churn() {
        let w = ChurnWorkload::new(ChurnConfig {
            items: 300,
            num_queries: 60,
            ..ChurnConfig::default()
        });
        let mut engine = MmqjpEngine::new(EngineConfig::mmqjp().with_prune_state_by_window(true));
        for q in w.queries() {
            engine.register_query(q).unwrap();
        }
        let mut matches = 0;
        for d in w.documents() {
            matches += engine.process_document(d).unwrap().len();
        }
        assert!(matches > 0, "small vocabularies must produce joins");
        let stats = engine.stats();
        assert!(
            stats.state_rows_evicted > 0,
            "a 600-time-unit stream must churn through 40..400 windows"
        );
    }
}
