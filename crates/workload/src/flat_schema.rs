//! The simple (2-level) document schema benchmark of Section 6.1.
//!
//! The schema models an RSS feed item: a root with `N` leaf children. Two
//! fixed documents `d1` and `d2` are composed such that all leaves within a
//! document have distinct string values, but leaf `i` of `d1` carries the
//! same value as leaf `i` of `d2`. Queries are generated per Figure 17: draw
//! `k` from a Zipf distribution over `1..=N`, bind the root plus `k`
//! uniformly chosen distinct leaves on each side, and add the value joins
//! `v_i = v'_i` pairing the i-th chosen left leaf with the i-th chosen right
//! leaf.
//!
//! Under this generation scheme the number of distinct query templates is at
//! most `N`, independent of the number of generated queries — the property
//! the whole MMQJP approach relies on.

use crate::zipf::Zipf;
use mmqjp_xml::{Document, DocumentBuilder, Timestamp};
use mmqjp_xpath::{Axis, NodeTest, PatternNodeId, TreePattern};
use mmqjp_xscl::{JoinOp, QueryBlock, ValueJoin, Window, XsclQuery};
use rand::seq::SliceRandom;
use rand::Rng;

/// The simple-schema workload generator.
#[derive(Debug, Clone)]
pub struct FlatSchemaWorkload {
    num_leaves: usize,
    zipf: Zipf,
    leaf_tags: Vec<String>,
    root_tag: String,
}

impl FlatSchemaWorkload {
    /// Create a workload over a flat schema with `num_leaves` leaves and the
    /// given Zipf parameter for the per-query number of value joins.
    pub fn new(num_leaves: usize, zipf_theta: f64) -> Self {
        assert!(num_leaves >= 1, "the schema needs at least one leaf");
        FlatSchemaWorkload {
            num_leaves,
            zipf: Zipf::new(num_leaves, zipf_theta),
            leaf_tags: (0..num_leaves).map(|i| format!("leaf{i}")).collect(),
            root_tag: "item".to_owned(),
        }
    }

    /// Number of leaves in the schema.
    pub fn num_leaves(&self) -> usize {
        self.num_leaves
    }

    /// The leaf tags of the schema.
    pub fn leaf_tags(&self) -> &[String] {
        &self.leaf_tags
    }

    /// The maximum number of query templates this workload can produce
    /// (equal to the number of leaves; see Section 6.1 of the paper).
    pub fn max_templates(&self) -> usize {
        self.num_leaves
    }

    /// The two fixed benchmark documents `(d1, d2)`. Leaf `i` of both
    /// documents carries the value `value-i`, so a value join matches exactly
    /// when it pairs corresponding leaf positions.
    pub fn documents(&self) -> (Document, Document) {
        (self.document(1), self.document(2))
    }

    /// One benchmark document with the given timestamp.
    pub fn document(&self, timestamp: u64) -> Document {
        let mut b = DocumentBuilder::new(self.root_tag.clone());
        b.timestamp(Timestamp(timestamp));
        for (i, tag) in self.leaf_tags.iter().enumerate() {
            b.child_text(tag.clone(), format!("value-{i}"));
        }
        b.finish()
    }

    /// Generate one random query per the Figure 17 procedure.
    pub fn generate_query<R: Rng + ?Sized>(&self, rng: &mut R) -> XsclQuery {
        let k = self.zipf.sample(rng);
        self.query_with_k(k, rng)
    }

    /// Generate a query with exactly `k` value joins (used by tests and the
    /// template-count experiments).
    pub fn query_with_k<R: Rng + ?Sized>(&self, k: usize, rng: &mut R) -> XsclQuery {
        let k = k.clamp(1, self.num_leaves);
        let left_leaves = self.pick_leaves(k, rng);
        let right_leaves = self.pick_leaves(k, rng);
        let (left, left_vars) = self.block_pattern(&left_leaves, "l");
        let (right, right_vars) = self.block_pattern(&right_leaves, "r");
        let predicates = left_vars
            .into_iter()
            .zip(right_vars)
            .map(|(l, r)| ValueJoin::new(l, r))
            .collect();
        XsclQuery::join(
            QueryBlock::new(left),
            JoinOp::FollowedBy,
            predicates,
            Window::Infinite,
            QueryBlock::new(right),
        )
    }

    /// Generate `n` random queries.
    pub fn generate_queries<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<XsclQuery> {
        (0..n).map(|_| self.generate_query(rng)).collect()
    }

    fn pick_leaves<R: Rng + ?Sized>(&self, k: usize, rng: &mut R) -> Vec<usize> {
        let mut indices: Vec<usize> = (0..self.num_leaves).collect();
        indices.shuffle(rng);
        indices.truncate(k);
        indices
    }

    /// Build one query block binding the root and the given leaves; returns
    /// the pattern and the variable names bound to the leaves (in pick
    /// order).
    fn block_pattern(&self, leaves: &[usize], prefix: &str) -> (TreePattern, Vec<String>) {
        let mut pattern = TreePattern::new(
            Some("S".to_owned()),
            Axis::Descendant,
            NodeTest::tag(self.root_tag.clone()),
        );
        pattern
            .bind_variable(PatternNodeId::ROOT, format!("{prefix}_root"))
            // lint:allow a fresh pattern has no variables to collide with
            .expect("fresh pattern has no duplicate variables");
        let mut vars = Vec::with_capacity(leaves.len());
        for (i, &leaf) in leaves.iter().enumerate() {
            let id = pattern.add_child(
                PatternNodeId::ROOT,
                Axis::Descendant,
                NodeTest::tag(self.leaf_tags[leaf].clone()),
            );
            let var = format!("{prefix}{i}");
            pattern
                .bind_variable(id, var.clone())
                // lint:allow the index-suffixed names are distinct by construction
                .expect("variable names are unique by construction");
            vars.push(var);
        }
        (pattern, vars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmqjp_core::{EngineConfig, MmqjpEngine};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn documents_have_matching_leaf_values() {
        let w = FlatSchemaWorkload::new(6, 0.8);
        let (d1, d2) = w.documents();
        assert_eq!(d1.len(), 7);
        assert_eq!(d2.len(), 7);
        for i in 0..6 {
            let tag = format!("leaf{i}");
            let n1 = d1.first_with_tag(&tag).unwrap();
            let n2 = d2.first_with_tag(&tag).unwrap();
            assert_eq!(d1.string_value(n1), d2.string_value(n2));
        }
        // Values within a document are pairwise distinct.
        let values: std::collections::HashSet<String> =
            d1.leaves().iter().map(|&n| d1.string_value(n)).collect();
        assert_eq!(values.len(), 6);
        assert_eq!(d1.timestamp(), Timestamp(1));
        assert_eq!(d2.timestamp(), Timestamp(2));
    }

    #[test]
    fn queries_have_expected_shape() {
        let w = FlatSchemaWorkload::new(6, 0.8);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let q = w.generate_query(&mut rng);
            let k = q.predicates().len();
            assert!((1..=6).contains(&k));
            let (l, r) = q.blocks().unwrap();
            assert_eq!(l.pattern.len(), k + 1);
            assert_eq!(r.pattern.len(), k + 1);
            assert_eq!(q.window(), Some(Window::Infinite));
            assert_eq!(q.op(), Some(JoinOp::FollowedBy));
        }
    }

    #[test]
    fn template_count_is_bounded_by_leaf_count() {
        let w = FlatSchemaWorkload::new(6, 0.8);
        let mut rng = StdRng::seed_from_u64(7);
        let mut engine = MmqjpEngine::new(EngineConfig::mmqjp());
        for q in w.generate_queries(300, &mut rng) {
            engine.register_query(q).unwrap();
        }
        assert!(engine.num_templates() <= w.max_templates());
        assert!(engine.num_templates() >= 3);
        assert_eq!(engine.num_queries(), 300);
    }

    #[test]
    fn generated_queries_actually_match_the_documents() {
        // A query with k = 1 joining the same leaf position on both sides
        // must fire when d1 is followed by d2.
        let w = FlatSchemaWorkload::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut engine = MmqjpEngine::new(EngineConfig::mmqjp());
        // Register many random queries; by construction matches occur when
        // picked positions coincide, which is certain to happen across 100
        // queries with k = 1 being common.
        for q in w.generate_queries(100, &mut rng) {
            engine.register_query(q).unwrap();
        }
        let (d1, d2) = w.documents();
        engine.process_document(d1).unwrap();
        let out = engine.process_document(d2).unwrap();
        assert!(!out.is_empty());
    }

    #[test]
    fn query_with_fixed_k() {
        let w = FlatSchemaWorkload::new(8, 0.8);
        let mut rng = StdRng::seed_from_u64(11);
        let q = w.query_with_k(5, &mut rng);
        assert_eq!(q.predicates().len(), 5);
        // k is clamped to the number of leaves.
        let q = w.query_with_k(100, &mut rng);
        assert_eq!(q.predicates().len(), 8);
        let q = w.query_with_k(0, &mut rng);
        assert_eq!(q.predicates().len(), 1);
    }

    #[test]
    fn accessors() {
        let w = FlatSchemaWorkload::new(5, 0.8);
        assert_eq!(w.num_leaves(), 5);
        assert_eq!(w.leaf_tags().len(), 5);
        assert_eq!(w.max_templates(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one leaf")]
    fn zero_leaves_panics() {
        let _ = FlatSchemaWorkload::new(0, 0.8);
    }
}
