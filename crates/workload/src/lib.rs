//! # mmqjp-workload
//!
//! Synthetic workload generators reproducing the evaluation setup of
//! Hong et al., SIGMOD 2007 (Section 6):
//!
//! * [`zipf`] — the Zipf sampler used to draw the number of value joins per
//!   query (smaller values are more likely as the parameter grows).
//! * [`flat_schema`] — the 2-level ("simple") document schema benchmark of
//!   Section 6.1: two fixed documents with `N` leaves whose corresponding
//!   leaves carry equal string values, plus the random query generator of
//!   Figure 17.
//! * [`complex_schema`] — the 3-level ("complex") schema with branching
//!   factor 4 (16 leaves) and its query generator, which additionally binds
//!   the intermediate nodes along the chosen root-to-leaf paths.
//! * [`rss`] — a synthetic RSS/Atom feed stream standing in for the paper's
//!   private 418-channel / 225 K-item trace (Section 6.3), together with the
//!   corresponding random query generator over the five feed-item fields.
//! * [`churn`] — a churn-heavy *windowed* variant of the RSS workload for
//!   sustained-throughput experiments: finite heterogeneous windows over a
//!   long stream, so join state continuously expires while value joins keep
//!   firing.
//! * [`subscription_churn`] — the query-side twin of [`churn`]: a Poisson
//!   subscribe/unsubscribe mix interleaved with the windowed document
//!   stream, for exercising the engine's online query lifecycle
//!   (`register_query` / `unregister_query`) at steady state.
//! * [`params`] — the default parameter values of Table 5 and the scale
//!   knobs used by the benchmark harness.
//!
//! All generators are deterministic given a seed, so experiments are
//! repeatable.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod churn;
pub mod complex_schema;
pub mod flat_schema;
pub mod params;
pub mod rss;
pub mod subscription_churn;
pub mod zipf;

pub use churn::{ChurnConfig, ChurnWorkload};
pub use complex_schema::ComplexSchemaWorkload;
pub use flat_schema::FlatSchemaWorkload;
pub use params::{BenchScale, Defaults};
pub use rss::{RssQueryGenerator, RssStreamConfig, RssStreamGenerator};
pub use subscription_churn::{
    SubscriptionChurnConfig, SubscriptionChurnWorkload, SubscriptionEvent,
};
pub use zipf::Zipf;
