//! The complex (3-level) document schema benchmark of Section 6.1.
//!
//! The schema has a root, `branching` intermediate nodes and `branching`
//! leaves under each intermediate (the paper uses a branching factor of 4,
//! i.e. 16 leaves). As in the simple-schema benchmark, two fixed documents
//! are composed with equal string values at corresponding leaf positions.
//!
//! Query generation follows Section 6.1: draw `k` from a Zipf distribution
//! over `1..=K` (the maximum number of value joins), bind the root, pick `k`
//! distinct leaves per side uniformly at random, and *additionally bind the
//! intermediate nodes on the paths from the root to the chosen leaves*,
//! which is what introduces extra structural joins into the per-template
//! conjunctive queries.

use crate::zipf::Zipf;
use mmqjp_xml::{Document, DocumentBuilder, Timestamp};
use mmqjp_xpath::{Axis, NodeTest, PatternNodeId, TreePattern};
use mmqjp_xscl::{JoinOp, QueryBlock, ValueJoin, Window, XsclQuery};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashMap;

/// The complex-schema workload generator.
#[derive(Debug, Clone)]
pub struct ComplexSchemaWorkload {
    branching: usize,
    max_value_joins: usize,
    zipf: Zipf,
}

impl ComplexSchemaWorkload {
    /// Create a workload with the given branching factor, maximum number of
    /// value joins per query and Zipf parameter.
    pub fn new(branching: usize, max_value_joins: usize, zipf_theta: f64) -> Self {
        assert!(branching >= 1, "branching factor must be positive");
        assert!(max_value_joins >= 1, "queries need at least one value join");
        ComplexSchemaWorkload {
            branching,
            max_value_joins,
            zipf: Zipf::new(max_value_joins, zipf_theta),
        }
    }

    /// Branching factor of the schema.
    pub fn branching(&self) -> usize {
        self.branching
    }

    /// Number of leaves of the schema (`branching^2`).
    pub fn num_leaves(&self) -> usize {
        self.branching * self.branching
    }

    /// Maximum number of value joins per generated query.
    pub fn max_value_joins(&self) -> usize {
        self.max_value_joins
    }

    /// Tag of intermediate node `m`.
    pub fn mid_tag(&self, m: usize) -> String {
        format!("mid{m}")
    }

    /// Tag of leaf `l` under intermediate `m`.
    pub fn leaf_tag(&self, m: usize, l: usize) -> String {
        format!("leaf{m}_{l}")
    }

    /// The two fixed benchmark documents `(d1, d2)`.
    pub fn documents(&self) -> (Document, Document) {
        (self.document(1), self.document(2))
    }

    /// One benchmark document with the given timestamp.
    pub fn document(&self, timestamp: u64) -> Document {
        let mut b = DocumentBuilder::new("doc");
        b.timestamp(Timestamp(timestamp));
        for m in 0..self.branching {
            b.open(self.mid_tag(m));
            for l in 0..self.branching {
                b.child_text(self.leaf_tag(m, l), format!("value-{m}-{l}"));
            }
            b.close();
        }
        b.finish()
    }

    /// Generate one random query.
    pub fn generate_query<R: Rng + ?Sized>(&self, rng: &mut R) -> XsclQuery {
        let k = self.zipf.sample(rng);
        self.query_with_k(k, rng)
    }

    /// Generate a query with exactly `k` value joins.
    pub fn query_with_k<R: Rng + ?Sized>(&self, k: usize, rng: &mut R) -> XsclQuery {
        let k = k.clamp(1, self.num_leaves());
        let left_leaves = self.pick_leaves(k, rng);
        let right_leaves = self.pick_leaves(k, rng);
        let (left, left_vars) = self.block_pattern(&left_leaves, "l");
        let (right, right_vars) = self.block_pattern(&right_leaves, "r");
        let predicates = left_vars
            .into_iter()
            .zip(right_vars)
            .map(|(l, r)| ValueJoin::new(l, r))
            .collect();
        XsclQuery::join(
            QueryBlock::new(left),
            JoinOp::FollowedBy,
            predicates,
            Window::Infinite,
            QueryBlock::new(right),
        )
    }

    /// Generate `n` random queries.
    pub fn generate_queries<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<XsclQuery> {
        (0..n).map(|_| self.generate_query(rng)).collect()
    }

    fn pick_leaves<R: Rng + ?Sized>(&self, k: usize, rng: &mut R) -> Vec<(usize, usize)> {
        let mut all: Vec<(usize, usize)> = (0..self.branching)
            .flat_map(|m| (0..self.branching).map(move |l| (m, l)))
            .collect();
        all.shuffle(rng);
        all.truncate(k);
        all
    }

    /// Build one query block binding the root, the intermediates on the
    /// chosen paths and the chosen leaves; returns the pattern and the leaf
    /// variable names in pick order.
    fn block_pattern(&self, leaves: &[(usize, usize)], prefix: &str) -> (TreePattern, Vec<String>) {
        let mut pattern =
            TreePattern::new(Some("S".to_owned()), Axis::Descendant, NodeTest::tag("doc"));
        pattern
            .bind_variable(PatternNodeId::ROOT, format!("{prefix}_root"))
            // lint:allow a fresh pattern has no variables to collide with
            .expect("fresh pattern");
        let mut mid_nodes: HashMap<usize, PatternNodeId> = HashMap::new();
        let mut vars = Vec::with_capacity(leaves.len());
        for (i, &(m, l)) in leaves.iter().enumerate() {
            let mid_id = *mid_nodes.entry(m).or_insert_with(|| {
                let id = pattern.add_child(
                    PatternNodeId::ROOT,
                    Axis::Descendant,
                    NodeTest::tag(self.mid_tag(m)),
                );
                pattern
                    .bind_variable(id, format!("{prefix}_mid{m}"))
                    // lint:allow mid_nodes guarantees one binding per intermediate tag
                    .expect("unique intermediate variable");
                id
            });
            let leaf_id =
                pattern.add_child(mid_id, Axis::Descendant, NodeTest::tag(self.leaf_tag(m, l)));
            let var = format!("{prefix}{i}");
            pattern
                .bind_variable(leaf_id, var.clone())
                // lint:allow the index-suffixed names are distinct by construction
                .expect("unique leaf variable");
            vars.push(var);
        }
        (pattern, vars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmqjp_core::{EngineConfig, MmqjpEngine};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn documents_have_three_levels_and_matching_values() {
        let w = ComplexSchemaWorkload::new(4, 4, 0.8);
        let (d1, d2) = w.documents();
        // 1 root + 4 intermediates + 16 leaves.
        assert_eq!(d1.len(), 21);
        assert_eq!(w.num_leaves(), 16);
        for m in 0..4 {
            for l in 0..4 {
                let tag = w.leaf_tag(m, l);
                let n1 = d1.first_with_tag(&tag).unwrap();
                let n2 = d2.first_with_tag(&tag).unwrap();
                assert_eq!(d1.string_value(n1), d2.string_value(n2));
                assert_eq!(d1.depth(n1), 2);
            }
        }
    }

    #[test]
    fn queries_bind_intermediates_on_chosen_paths() {
        let w = ComplexSchemaWorkload::new(4, 4, 0.0);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..30 {
            let q = w.generate_query(&mut rng);
            let k = q.predicates().len();
            assert!((1..=4).contains(&k));
            let (l, _) = q.blocks().unwrap();
            // The pattern has root + one node per distinct intermediate +
            // one node per leaf, so strictly more nodes than leaves + 1 when
            // k >= 1.
            assert!(l.pattern.len() >= k + 2);
            assert!(l.pattern.len() <= 1 + 4 + k);
        }
    }

    #[test]
    fn template_counts_grow_with_k_cap() {
        // With K = 2 at most 3 templates exist; with K = 4 more appear
        // (up to 16 per Table 3 — the generator's paired-position joins only
        // produce matchings, so the observed count is smaller but must
        // exceed the K = 2 count).
        let mut rng = StdRng::seed_from_u64(9);
        let count_templates = |max_vj: usize, rng: &mut StdRng| {
            let w = ComplexSchemaWorkload::new(4, max_vj, 0.0);
            let mut engine = MmqjpEngine::new(EngineConfig::mmqjp());
            for q in w.generate_queries(400, rng) {
                engine.register_query(q).unwrap();
            }
            engine.num_templates()
        };
        let t2 = count_templates(2, &mut rng);
        let t4 = count_templates(4, &mut rng);
        assert!(
            t2 < t4,
            "expected more templates with larger K ({t2} vs {t4})"
        );
        assert!(t2 >= 2);
    }

    #[test]
    fn generated_queries_match_documents_end_to_end() {
        let w = ComplexSchemaWorkload::new(3, 3, 0.0);
        let mut rng = StdRng::seed_from_u64(21);
        let mut engine = MmqjpEngine::new(EngineConfig::mmqjp_view_mat());
        for q in w.generate_queries(150, &mut rng) {
            engine.register_query(q).unwrap();
        }
        let (d1, d2) = w.documents();
        engine.process_document(d1).unwrap();
        let out = engine.process_document(d2).unwrap();
        assert!(!out.is_empty());
    }

    #[test]
    fn accessors_and_k_clamping() {
        let w = ComplexSchemaWorkload::new(4, 5, 0.8);
        assert_eq!(w.branching(), 4);
        assert_eq!(w.max_value_joins(), 5);
        assert_eq!(w.mid_tag(2), "mid2");
        assert_eq!(w.leaf_tag(1, 3), "leaf1_3");
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(w.query_with_k(0, &mut rng).predicates().len(), 1);
        assert_eq!(w.query_with_k(99, &mut rng).predicates().len(), 16);
    }

    #[test]
    #[should_panic(expected = "branching factor must be positive")]
    fn zero_branching_panics() {
        let _ = ComplexSchemaWorkload::new(0, 2, 0.8);
    }
}
