//! Zipf-distributed sampling.
//!
//! The paper draws the number of value joins per generated query "from 1 to
//! N with a Zipfian distribution" whose parameter is varied between 0.0
//! (uniform) and 1.6 (strongly skewed toward small values) in Figures 10 and
//! 13. This module implements that sampler by explicit inverse-CDF lookup
//! over the (small) support, which is exact and needs no external crates
//! beyond `rand`.

use rand::Rng;

/// A Zipf distribution over `1..=n` with skew parameter `theta ≥ 0`.
///
/// `P(k) ∝ 1 / k^theta`. With `theta = 0` the distribution is uniform; larger
/// values make small outcomes increasingly likely.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Create a Zipf distribution over `1..=n`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is negative or non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf support must be non-empty");
        assert!(
            theta >= 0.0 && theta.is_finite(),
            "Zipf parameter must be a non-negative finite number"
        );
        let weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(theta)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Zipf { cdf }
    }

    /// The size of the support.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one sample in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        // Linear scan is fine: the support is tiny (≤ 16 in all experiments).
        for (i, &c) in self.cdf.iter().enumerate() {
            if u <= c {
                return i + 1;
            }
        }
        self.cdf.len()
    }

    /// The probability of drawing `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 || k > self.cdf.len() {
            return 0.0;
        }
        let prev = if k == 1 { 0.0 } else { self.cdf[k - 2] };
        self.cdf[k - 1] - prev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(4, 0.0);
        for k in 1..=4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
        assert_eq!(z.n(), 4);
    }

    #[test]
    fn skewed_distribution_prefers_small_values() {
        let z = Zipf::new(6, 0.8);
        assert!(z.pmf(1) > z.pmf(2));
        assert!(z.pmf(2) > z.pmf(6));
        let total: f64 = (1..=6).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pmf_out_of_range_is_zero() {
        let z = Zipf::new(3, 1.0);
        assert_eq!(z.pmf(0), 0.0);
        assert_eq!(z.pmf(4), 0.0);
    }

    #[test]
    fn samples_stay_in_range_and_follow_skew() {
        let z = Zipf::new(6, 1.6);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 7];
        for _ in 0..10_000 {
            let k = z.sample(&mut rng);
            assert!((1..=6).contains(&k));
            counts[k] += 1;
        }
        // With theta = 1.6, 1 must dominate 6 by a wide margin.
        assert!(counts[1] > counts[6] * 5);
    }

    #[test]
    fn deterministic_given_seed() {
        let z = Zipf::new(8, 0.8);
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let sa: Vec<usize> = (0..50).map(|_| z.sample(&mut a)).collect();
        let sb: Vec<usize> = (0..50).map(|_| z.sample(&mut b)).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    #[should_panic(expected = "support must be non-empty")]
    fn zero_support_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_theta_panics() {
        let _ = Zipf::new(3, -1.0);
    }
}
