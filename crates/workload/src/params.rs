//! Default experiment parameters (paper Table 5) and benchmark scale knobs.

use serde::{Deserialize, Serialize};

/// The default parameter values of the paper's technical benchmark
/// (Table 5) plus the fixed parameters of the complex-schema and RSS
/// experiments quoted in the text of Section 6.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Defaults;

impl Defaults {
    /// Default number of XSCL queries (Table 5).
    pub const NUM_QUERIES: usize = 1000;
    /// Default number of leaves in the simple (2-level) document schema
    /// (Table 5).
    pub const SIMPLE_LEAVES: usize = 6;
    /// Default Zipf parameter for the number of value joins per query
    /// (Table 5).
    pub const ZIPF: f64 = 0.8;
    /// Branching factor of the complex (3-level) schema (Section 6.1).
    pub const COMPLEX_BRANCHING: usize = 4;
    /// Number of leaves of the complex schema (`branching^2`).
    pub const COMPLEX_LEAVES: usize = 16;
    /// Default maximum number of value joins per query for the complex
    /// schema (Section 6.1).
    pub const COMPLEX_MAX_VJ: usize = 4;
    /// Number of feed channels in the RSS experiment (Section 6.3).
    pub const RSS_CHANNELS: usize = 418;
    /// Number of feed items in the paper's RSS trace (Section 6.3).
    pub const RSS_ITEMS_PAPER: usize = 225_000;
    /// Number of queries used for the view-materialization breakdown
    /// (Figures 14 and 15).
    pub const VIEWMAT_QUERIES: usize = 100_000;
}

/// How large the benchmark sweeps should be.
///
/// The paper's sweeps reach 100 000 queries and 225 000 RSS items on a
/// disk-based DBMS; the default scale keeps `cargo bench` in the minutes
/// range while preserving every qualitative comparison. Set the environment
/// variable `MMQJP_BENCH_SCALE=paper` to run the full-size sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum BenchScale {
    /// Reduced sweep sizes (default).
    #[default]
    Default,
    /// The paper's sweep sizes.
    Paper,
    /// Tiny sizes used by integration tests of the bench harness itself.
    Smoke,
}

impl BenchScale {
    /// Read the scale from the `MMQJP_BENCH_SCALE` environment variable.
    pub fn from_env() -> Self {
        match std::env::var("MMQJP_BENCH_SCALE").as_deref() {
            Ok("paper") | Ok("PAPER") => BenchScale::Paper,
            Ok("smoke") | Ok("SMOKE") => BenchScale::Smoke,
            _ => BenchScale::Default,
        }
    }

    /// The query-count sweep used for Figures 8, 11 and 16.
    pub fn query_counts(&self) -> Vec<usize> {
        match self {
            BenchScale::Paper => vec![10, 100, 1000, 10_000, 100_000],
            BenchScale::Default => vec![10, 100, 1000, 10_000],
            BenchScale::Smoke => vec![10, 50],
        }
    }

    /// The query count at which Sequential evaluation is no longer run (it
    /// is orders of magnitude slower; the paper still ran it, we cap it by
    /// default to keep bench times reasonable).
    pub fn sequential_cap(&self) -> usize {
        match self {
            BenchScale::Paper => usize::MAX,
            BenchScale::Default => 10_000,
            BenchScale::Smoke => 50,
        }
    }

    /// Number of queries for the view-materialization breakdown
    /// (Figures 14–15).
    pub fn viewmat_queries(&self) -> usize {
        match self {
            BenchScale::Paper => Defaults::VIEWMAT_QUERIES,
            BenchScale::Default => 20_000,
            BenchScale::Smoke => 200,
        }
    }

    /// Number of RSS items replayed for Figure 16.
    pub fn rss_items(&self) -> usize {
        match self {
            BenchScale::Paper => Defaults::RSS_ITEMS_PAPER,
            BenchScale::Default => 10_000,
            BenchScale::Smoke => 120,
        }
    }

    /// The query count beyond which Sequential evaluation is skipped in the
    /// RSS throughput experiment (it evaluates every query for every batch
    /// and dominates the bench wall time long before the trend is visible).
    pub fn rss_sequential_cap(&self) -> usize {
        match self {
            BenchScale::Paper => usize::MAX,
            BenchScale::Default => 100,
            BenchScale::Smoke => 50,
        }
    }

    /// The shard-count sweep of the sharded-throughput experiment
    /// (Figure 17): the query population is hash-partitioned across this
    /// many worker threads.
    pub fn shard_counts(&self) -> Vec<usize> {
        match self {
            BenchScale::Paper => vec![1, 2, 4, 8, 16],
            BenchScale::Default | BenchScale::Smoke => vec![1, 2, 4, 8],
        }
    }

    /// Stream lengths (in feed items) swept by the sustained-throughput
    /// churn experiment (Figure 18, beyond the paper): doubling lengths so
    /// any per-batch cost that grows with total stream length shows up as a
    /// falling docs/s curve.
    pub fn churn_stream_lengths(&self) -> Vec<usize> {
        match self {
            BenchScale::Paper => vec![5_000, 10_000, 20_000, 40_000],
            BenchScale::Default => vec![1_000, 2_000, 4_000],
            BenchScale::Smoke => vec![250, 500],
        }
    }

    /// Number of queries registered for the churn experiment.
    pub fn churn_queries(&self) -> usize {
        match self {
            BenchScale::Paper => 500,
            BenchScale::Default => 100,
            BenchScale::Smoke => 25,
        }
    }

    /// Stream lengths swept by the subscription-churn experiment
    /// (Figure 19, beyond the paper): a base length and a 10×-longer stream,
    /// so any unregistration cost that scales with the registry (rather than
    /// the departing query's footprint) shows up as degraded steady-state
    /// docs/s on the long run.
    pub fn subscription_churn_lengths(&self) -> Vec<usize> {
        match self {
            BenchScale::Paper => vec![2_000, 20_000],
            BenchScale::Default => vec![400, 4_000],
            BenchScale::Smoke => vec![40, 400],
        }
    }

    /// Initial subscription population for the subscription-churn
    /// experiment.
    pub fn subscription_churn_queries(&self) -> usize {
        match self {
            BenchScale::Paper => 300,
            BenchScale::Default => 60,
            BenchScale::Smoke => 12,
        }
    }

    /// Batch size used for the RSS replay (the paper batches SQL statements;
    /// we batch witness loading the same way).
    pub fn rss_batch(&self) -> usize {
        match self {
            BenchScale::Paper => 1000,
            BenchScale::Default => 500,
            BenchScale::Smoke => 100,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table5() {
        assert_eq!(Defaults::NUM_QUERIES, 1000);
        assert_eq!(Defaults::SIMPLE_LEAVES, 6);
        assert!((Defaults::ZIPF - 0.8).abs() < f64::EPSILON);
        assert_eq!(Defaults::COMPLEX_BRANCHING, 4);
        assert_eq!(Defaults::COMPLEX_LEAVES, 16);
        assert_eq!(Defaults::RSS_CHANNELS, 418);
    }

    #[test]
    fn scales_are_ordered() {
        let paper = BenchScale::Paper;
        let default = BenchScale::Default;
        let smoke = BenchScale::Smoke;
        assert!(paper.query_counts().len() >= default.query_counts().len());
        assert!(default.query_counts().len() >= smoke.query_counts().len());
        assert!(paper.rss_items() > default.rss_items());
        assert!(default.rss_items() > smoke.rss_items());
        assert!(smoke.sequential_cap() <= default.sequential_cap());
        assert!(paper.viewmat_queries() >= default.viewmat_queries());
        assert!(paper.rss_batch() >= smoke.rss_batch());
        assert!(paper.shard_counts().len() >= smoke.shard_counts().len());
        assert!(smoke.shard_counts().contains(&1));
        assert!(smoke.shard_counts().contains(&4));
        assert!(paper.churn_stream_lengths().len() >= smoke.churn_stream_lengths().len());
        assert!(paper.churn_queries() > smoke.churn_queries());
        // Doubling lengths: the last entry is at least 2x the first.
        let lengths = default.churn_stream_lengths();
        assert!(lengths.last().unwrap() >= &(2 * lengths[0]));
    }

    #[test]
    fn scale_from_env_defaults() {
        // Do not set the variable here (tests run in parallel); just check
        // the fallback path by ensuring the call does not panic and returns
        // one of the variants.
        let s = BenchScale::from_env();
        assert!(matches!(
            s,
            BenchScale::Default | BenchScale::Paper | BenchScale::Smoke
        ));
        assert_eq!(BenchScale::default(), BenchScale::Default);
    }
}
