//! Synthetic RSS/Atom feed stream (Section 6.3 of the paper).
//!
//! The paper replays a private trace of 225 000 feed items collected from
//! 418 channels between June and October 2006. That trace is not publicly
//! archived, so this module generates a synthetic stream that preserves the
//! properties the experiment depends on:
//!
//! * the flat five-leaf item schema (`item_url`, `channel_url`, `title`,
//!   `timestamp`, `description`);
//! * a fixed set of channels (418 by default) with Zipf-skewed posting
//!   frequency;
//! * titles and descriptions drawn from bounded vocabularies with Zipf
//!   popularity, so that value joins across items actually fire
//!   (cross-postings, recurring topics);
//! * unique item URLs and strictly increasing timestamps.
//!
//! Queries are generated the same way as in Section 6.1, over the five item
//! fields — which bounds the number of query templates by five, matching the
//! paper's observation.

use crate::zipf::Zipf;
use mmqjp_xml::rss::{FeedItem, ITEM_FIELDS};
use mmqjp_xml::{DocId, Document};
use mmqjp_xpath::{Axis, NodeTest, PatternNodeId, TreePattern};
use mmqjp_xscl::{JoinOp, QueryBlock, ValueJoin, Window, XsclQuery};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic RSS stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RssStreamConfig {
    /// Number of channels (blogs / news feeds).
    pub channels: usize,
    /// Number of items to generate.
    pub items: usize,
    /// Size of the title vocabulary (smaller ⇒ more cross-item joins).
    pub title_vocabulary: usize,
    /// Size of the description vocabulary.
    pub description_vocabulary: usize,
    /// Zipf parameter for channel activity and vocabulary popularity.
    pub skew: f64,
    /// Seed for deterministic generation.
    pub seed: u64,
}

impl Default for RssStreamConfig {
    fn default() -> Self {
        RssStreamConfig {
            channels: 418,
            items: 10_000,
            title_vocabulary: 2_000,
            description_vocabulary: 5_000,
            skew: 0.8,
            seed: 42,
        }
    }
}

/// Generator of the synthetic feed stream.
#[derive(Debug)]
pub struct RssStreamGenerator {
    config: RssStreamConfig,
    rng: StdRng,
    channel_zipf: Zipf,
    title_zipf: Zipf,
    description_zipf: Zipf,
    next_index: usize,
}

impl RssStreamGenerator {
    /// Create a generator for the given configuration.
    pub fn new(config: RssStreamConfig) -> Self {
        assert!(config.channels >= 1, "need at least one channel");
        assert!(config.title_vocabulary >= 1, "need at least one title");
        assert!(
            config.description_vocabulary >= 1,
            "need at least one description"
        );
        RssStreamGenerator {
            rng: StdRng::seed_from_u64(config.seed),
            channel_zipf: Zipf::new(config.channels, config.skew),
            title_zipf: Zipf::new(config.title_vocabulary, config.skew),
            description_zipf: Zipf::new(config.description_vocabulary, config.skew),
            next_index: 0,
            config,
        }
    }

    /// The configuration this generator was built with.
    pub fn config(&self) -> &RssStreamConfig {
        &self.config
    }

    /// Generate the next feed item, or `None` once `config.items` items have
    /// been produced.
    pub fn next_item(&mut self) -> Option<FeedItem> {
        if self.next_index >= self.config.items {
            return None;
        }
        let idx = self.next_index;
        self.next_index += 1;
        let channel = self.channel_zipf.sample(&mut self.rng);
        let title = self.title_zipf.sample(&mut self.rng);
        let description = self.description_zipf.sample(&mut self.rng);
        Some(FeedItem {
            item_url: format!("http://channel{channel}.example.org/post/{idx}"),
            channel_url: format!("http://channel{channel}.example.org/feed"),
            title: format!("Title {title}"),
            // Timestamps advance by 1–3 units per item.
            timestamp: (idx as u64) * 2 + 1,
            description: format!("Description text {description}"),
        })
    }

    /// Generate the whole stream as feed items.
    pub fn items(mut self) -> Vec<FeedItem> {
        let mut out = Vec::with_capacity(self.config.items);
        while let Some(item) = self.next_item() {
            out.push(item);
        }
        out
    }

    /// Generate the whole stream as documents (ids are assigned by the
    /// engine at processing time; the ids set here are provisional).
    pub fn documents(self) -> Vec<Document> {
        self.items()
            .into_iter()
            .enumerate()
            .map(|(i, item)| item.to_document(DocId(i as u64 + 1)))
            .collect()
    }
}

impl Iterator for RssStreamGenerator {
    type Item = FeedItem;

    fn next(&mut self) -> Option<FeedItem> {
        self.next_item()
    }
}

/// Random query generator over the five feed-item fields, mirroring the
/// Section 6.1 generation scheme (Figure 17) applied to the RSS schema.
#[derive(Debug, Clone)]
pub struct RssQueryGenerator {
    zipf: Zipf,
    window: Window,
}

impl RssQueryGenerator {
    /// Create a generator with the given Zipf parameter for the per-query
    /// number of value joins. The window defaults to `∞`, as in the paper's
    /// RSS experiment.
    pub fn new(zipf_theta: f64) -> Self {
        RssQueryGenerator {
            zipf: Zipf::new(ITEM_FIELDS.len(), zipf_theta),
            window: Window::Infinite,
        }
    }

    /// Use a finite time window instead of `∞`.
    pub fn with_window(mut self, window: Window) -> Self {
        self.window = window;
        self
    }

    /// The maximum number of templates this generator can produce (the
    /// number of item fields; the paper reports five).
    pub fn max_templates(&self) -> usize {
        ITEM_FIELDS.len()
    }

    /// Generate one query.
    pub fn generate_query<R: Rng + ?Sized>(&self, rng: &mut R) -> XsclQuery {
        let k = self.zipf.sample(rng);
        // Both blocks use the same field subset, so every value-join
        // predicate equates a field with *itself* across two items
        // (title = title', channel = channel', …) — the Section 6.1 scheme.
        // Pairing independently drawn subsets instead produces predicates
        // like `title = channel_url` over disjoint vocabularies, which can
        // never be satisfied by any document pair.
        let fields = pick_fields(k, rng);
        let (left, left_vars) = block_pattern(&fields, "l");
        let (right, right_vars) = block_pattern(&fields, "r");
        let predicates = left_vars
            .into_iter()
            .zip(right_vars)
            .map(|(l, r)| ValueJoin::new(l, r))
            .collect();
        XsclQuery::join(
            QueryBlock::new(left),
            JoinOp::FollowedBy,
            predicates,
            self.window,
            QueryBlock::new(right),
        )
    }

    /// Generate `n` queries.
    pub fn generate_queries<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<XsclQuery> {
        (0..n).map(|_| self.generate_query(rng)).collect()
    }
}

fn pick_fields<R: Rng + ?Sized>(k: usize, rng: &mut R) -> Vec<&'static str> {
    let mut fields: Vec<&'static str> = ITEM_FIELDS.to_vec();
    fields.shuffle(rng);
    fields.truncate(k.clamp(1, ITEM_FIELDS.len()));
    fields
}

fn block_pattern(fields: &[&str], prefix: &str) -> (TreePattern, Vec<String>) {
    let mut pattern = TreePattern::new(
        Some("S".to_owned()),
        Axis::Descendant,
        NodeTest::tag("item"),
    );
    pattern
        .bind_variable(PatternNodeId::ROOT, format!("{prefix}_root"))
        // lint:allow a fresh pattern has no variables to collide with
        .expect("fresh pattern");
    let mut vars = Vec::with_capacity(fields.len());
    for (i, field) in fields.iter().enumerate() {
        let id = pattern.add_child(PatternNodeId::ROOT, Axis::Descendant, NodeTest::tag(*field));
        let var = format!("{prefix}{i}");
        pattern
            .bind_variable(id, var.clone())
            // lint:allow the index-suffixed names are distinct by construction
            .expect("unique variable");
        vars.push(var);
    }
    (pattern, vars)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmqjp_core::{EngineConfig, MmqjpEngine};
    use mmqjp_xml::rss::is_feed_item;
    use std::collections::HashSet;

    #[test]
    fn stream_is_deterministic_and_well_formed() {
        let config = RssStreamConfig {
            items: 200,
            ..RssStreamConfig::default()
        };
        let a: Vec<FeedItem> = RssStreamGenerator::new(config.clone()).items();
        let b: Vec<FeedItem> = RssStreamGenerator::new(config.clone()).items();
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        // Item URLs are unique; timestamps strictly increase.
        let urls: HashSet<&String> = a.iter().map(|i| &i.item_url).collect();
        assert_eq!(urls.len(), 200);
        for w in a.windows(2) {
            assert!(w[0].timestamp < w[1].timestamp);
        }
        // Channels stay within the configured universe.
        let channels: HashSet<&String> = a.iter().map(|i| &i.channel_url).collect();
        assert!(channels.len() <= config.channels);
        assert_eq!(
            RssStreamGenerator::new(config.clone()).config().channels,
            418
        );
    }

    #[test]
    fn titles_repeat_across_items() {
        let config = RssStreamConfig {
            items: 1000,
            title_vocabulary: 50,
            ..RssStreamConfig::default()
        };
        let items = RssStreamGenerator::new(config).items();
        let titles: HashSet<&String> = items.iter().map(|i| &i.title).collect();
        assert!(
            titles.len() < items.len(),
            "titles must repeat for joins to fire"
        );
    }

    #[test]
    fn documents_conform_to_the_item_schema() {
        let config = RssStreamConfig {
            items: 20,
            ..RssStreamConfig::default()
        };
        for doc in RssStreamGenerator::new(config).documents() {
            assert!(is_feed_item(&doc));
            assert_eq!(doc.len(), 6);
        }
    }

    #[test]
    fn iterator_interface_yields_all_items() {
        let config = RssStreamConfig {
            items: 37,
            ..RssStreamConfig::default()
        };
        assert_eq!(RssStreamGenerator::new(config).count(), 37);
    }

    #[test]
    fn query_generator_is_bounded_by_five_templates() {
        let gen = RssQueryGenerator::new(0.8);
        assert_eq!(gen.max_templates(), 5);
        let mut rng = StdRng::seed_from_u64(3);
        let mut engine = MmqjpEngine::new(EngineConfig::mmqjp());
        for q in gen.generate_queries(500, &mut rng) {
            engine.register_query(q).unwrap();
        }
        assert!(engine.num_templates() <= 5);
        assert!(engine.num_templates() >= 2);
    }

    #[test]
    fn end_to_end_rss_matches_are_produced() {
        let gen = RssQueryGenerator::new(0.8);
        let mut rng = StdRng::seed_from_u64(17);
        let mut engine =
            MmqjpEngine::new(EngineConfig::mmqjp_view_mat().with_retain_documents(false));
        for q in gen.generate_queries(200, &mut rng) {
            engine.register_query(q).unwrap();
        }
        let config = RssStreamConfig {
            items: 300,
            title_vocabulary: 20,
            channels: 10,
            ..RssStreamConfig::default()
        };
        let mut matches = 0usize;
        for doc in RssStreamGenerator::new(config).documents() {
            matches += engine.process_document(doc).unwrap().len();
        }
        assert!(matches > 0, "repeated titles/channels must produce matches");
        assert_eq!(engine.stats().documents_processed, 300);
    }

    #[test]
    fn value_joins_equate_identical_fields() {
        // Regression: independently drawn field subsets used to be zipped
        // into predicates like `title = channel_url`, which no document pair
        // can satisfy (the fig17 zero-match bug). Every predicate must
        // equate a field with itself across the two blocks.
        let gen = RssQueryGenerator::new(0.8);
        let mut rng = StdRng::seed_from_u64(7);
        for q in gen.generate_queries(100, &mut rng) {
            let (left, right) = q.blocks().expect("generated queries are joins");
            for p in q.predicates() {
                let l = left
                    .pattern
                    .variable_node(&p.left_var)
                    .expect("left variable is bound in the left block");
                let r = right
                    .pattern
                    .variable_node(&p.right_var)
                    .expect("right variable is bound in the right block");
                assert_eq!(
                    left.pattern.node(l).test(),
                    right.pattern.node(r).test(),
                    "value join must pair the same item field"
                );
            }
        }
    }

    #[test]
    fn window_override() {
        let gen = RssQueryGenerator::new(0.8).with_window(Window::Time(100));
        let mut rng = StdRng::seed_from_u64(1);
        let q = gen.generate_query(&mut rng);
        assert_eq!(q.window(), Some(Window::Time(100)));
    }
}
