//! Online subscription churn: a Poisson subscribe/unsubscribe mix over a
//! windowed RSS stream.
//!
//! Real pub/sub populations churn — users subscribe and unsubscribe
//! continuously while documents keep flowing. This workload interleaves a
//! long, join-heavy windowed document stream (the same generator the
//! [`churn`](crate::churn) workload uses) with subscription lifecycle
//! events: for every document, a Poisson-distributed number of new
//! subscriptions arrives and a matching Poisson-distributed number of
//! existing subscriptions departs, keeping the live population statistically
//! stable around its initial size.
//!
//! An engine with an incremental `unregister_query` sustains flat
//! steady-state throughput and a flat resident-state plateau on this
//! workload; an append-only engine (one that merely *stops reporting* for
//! departed queries, or the pre-lifecycle engine that could not remove them
//! at all) accumulates templates, patterns and `RT` tuples linearly with
//! stream length. The `fig19_subscription_churn` bench and the
//! subscription-churn boundedness tests are built on this generator.

use crate::rss::{RssQueryGenerator, RssStreamConfig, RssStreamGenerator};
use mmqjp_xml::Document;
use mmqjp_xscl::{Window, XsclQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the subscription-churn workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubscriptionChurnConfig {
    /// Number of feed items in the stream (timestamps advance by 2 per
    /// item).
    pub items: usize,
    /// Size of the initial subscription population, registered before the
    /// first document.
    pub initial_queries: usize,
    /// Expected number of *subscribe* events per document; the unsubscribe
    /// rate is the same, so the live population stays statistically stable.
    pub churn_rate: f64,
    /// The finite time windows assigned round-robin to generated queries.
    pub windows: Vec<u64>,
    /// Title vocabulary size (small ⇒ heavy cross-item joining).
    pub title_vocabulary: usize,
    /// Description vocabulary size.
    pub description_vocabulary: usize,
    /// Number of channels.
    pub channels: usize,
    /// Zipf parameter for query shape and vocabulary popularity.
    pub skew: f64,
    /// Seed for deterministic generation.
    pub seed: u64,
}

impl Default for SubscriptionChurnConfig {
    fn default() -> Self {
        SubscriptionChurnConfig {
            items: 1_000,
            initial_queries: 80,
            churn_rate: 0.25,
            windows: vec![40, 120, 400],
            title_vocabulary: 40,
            description_vocabulary: 80,
            channels: 25,
            skew: 0.8,
            seed: 1719,
        }
    }
}

/// One event of the interleaved subscription/document script.
#[derive(Debug, Clone)]
pub enum SubscriptionEvent {
    /// Register this query. The driver should append the returned
    /// [`QueryId`](mmqjp_xscl::QueryId) to its registration list — later
    /// [`Unregister`](SubscriptionEvent::Unregister) events refer to
    /// registrations by position in that list.
    Register(Box<XsclQuery>),
    /// Unregister the `n`-th `Register` event of this script (0-based).
    /// The generator guarantees the target is live at this point: it was
    /// registered earlier and no previous event unregistered it.
    Unregister(usize),
    /// Process this document.
    Document(Box<Document>),
}

/// Generator of the subscription-churn script: an initial query population,
/// then documents interleaved with Poisson subscribe/unsubscribe events.
#[derive(Debug, Clone)]
pub struct SubscriptionChurnWorkload {
    config: SubscriptionChurnConfig,
}

impl SubscriptionChurnWorkload {
    /// Create a workload for the given configuration.
    pub fn new(config: SubscriptionChurnConfig) -> Self {
        assert!(!config.windows.is_empty(), "need at least one window");
        assert!(config.initial_queries > 0, "need a live population");
        SubscriptionChurnWorkload { config }
    }

    /// The configuration this workload was built with.
    pub fn config(&self) -> &SubscriptionChurnConfig {
        &self.config
    }

    /// The largest configured window.
    pub fn max_window(&self) -> u64 {
        // lint:allow every constructor populates at least one window
        *self.config.windows.iter().max().expect("non-empty windows")
    }

    /// Generate the full event script for the configured stream length.
    pub fn events(&self) -> Vec<SubscriptionEvent> {
        self.events_with_items(self.config.items)
    }

    /// Generate the event script for a different stream length with
    /// otherwise identical parameters (used by the bench to sweep length).
    /// Scripts of different lengths share their prefix.
    pub fn events_with_items(&self, items: usize) -> Vec<SubscriptionEvent> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let docs = RssStreamGenerator::new(RssStreamConfig {
            items,
            channels: self.config.channels,
            title_vocabulary: self.config.title_vocabulary,
            description_vocabulary: self.config.description_vocabulary,
            skew: self.config.skew,
            seed: self.config.seed,
        })
        .documents();

        let mut events = Vec::with_capacity(items * 2 + self.config.initial_queries);
        // Registration positions still live, by Register-event ordinal.
        let mut live: Vec<usize> = Vec::new();
        let mut registered = 0usize;
        let mut register =
            |events: &mut Vec<SubscriptionEvent>, live: &mut Vec<usize>, rng: &mut StdRng| {
                let window = self.config.windows[registered % self.config.windows.len()];
                let generator =
                    RssQueryGenerator::new(self.config.skew).with_window(Window::Time(window));
                let query = generator
                    .generate_queries(1, rng)
                    .pop()
                    // lint:allow generate_queries(1, ..) returns exactly one query
                    .expect("one query was requested");
                events.push(SubscriptionEvent::Register(Box::new(query)));
                live.push(registered);
                registered += 1;
            };

        for _ in 0..self.config.initial_queries {
            register(&mut events, &mut live, &mut rng);
        }
        for doc in docs {
            for _ in 0..poisson(&mut rng, self.config.churn_rate) {
                register(&mut events, &mut live, &mut rng);
            }
            // Unsubscribe as a birth–death process: the departure rate is
            // proportional to the live population, so it equilibrates at
            // `initial_queries` instead of drifting on a random walk.
            let departure_rate =
                self.config.churn_rate * live.len() as f64 / self.config.initial_queries as f64;
            for _ in 0..poisson(&mut rng, departure_rate) {
                // Keep at least one live subscription so the stream always
                // exercises the join path.
                if live.len() <= 1 {
                    break;
                }
                let victim = rng.gen_range(0..live.len());
                events.push(SubscriptionEvent::Unregister(live.swap_remove(victim)));
            }
            events.push(SubscriptionEvent::Document(Box::new(doc)));
        }
        events
    }
}

impl Default for SubscriptionChurnWorkload {
    fn default() -> Self {
        SubscriptionChurnWorkload::new(SubscriptionChurnConfig::default())
    }
}

/// Draw from a Poisson distribution (Knuth's product method; fine for the
/// small rates this workload uses).
fn poisson(rng: &mut StdRng, lambda: f64) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    let limit = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen_range(0.0..1.0);
        if p <= limit || k >= 64 {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmqjp_core::{EngineConfig, MmqjpEngine};
    use mmqjp_xscl::QueryId;

    #[test]
    fn script_is_deterministic_and_well_formed() {
        let w = SubscriptionChurnWorkload::new(SubscriptionChurnConfig {
            items: 200,
            ..SubscriptionChurnConfig::default()
        });
        let events = w.events();
        let again = w.events();
        assert_eq!(events.len(), again.len());
        assert_eq!(w.max_window(), 400);

        let mut registered = 0usize;
        let mut live = std::collections::HashSet::new();
        let mut docs = 0usize;
        let mut unregisters = 0usize;
        for e in &events {
            match e {
                SubscriptionEvent::Register(_) => {
                    live.insert(registered);
                    registered += 1;
                }
                SubscriptionEvent::Unregister(n) => {
                    assert!(live.remove(n), "unregister of a non-live target {n}");
                    unregisters += 1;
                }
                SubscriptionEvent::Document(_) => docs += 1,
            }
        }
        assert_eq!(docs, 200);
        assert!(registered > 80, "churn must add subscriptions");
        assert!(unregisters > 0, "churn must remove subscriptions");
        assert!(!live.is_empty());
        // The population stays near its initial size: departures track
        // arrivals.
        let net = live.len() as i64 - 80;
        assert!(net.abs() < 40, "population drifted to {}", live.len());
    }

    #[test]
    fn scripts_of_different_lengths_share_their_prefix() {
        let w = SubscriptionChurnWorkload::default();
        let short = w.events_with_items(50);
        let long = w.events_with_items(100);
        assert!(short.len() < long.len());
        for (a, b) in short.iter().zip(&long) {
            match (a, b) {
                (SubscriptionEvent::Register(x), SubscriptionEvent::Register(y)) => {
                    assert_eq!(x.to_string(), y.to_string());
                }
                (SubscriptionEvent::Unregister(x), SubscriptionEvent::Unregister(y)) => {
                    assert_eq!(x, y);
                }
                (SubscriptionEvent::Document(x), SubscriptionEvent::Document(y)) => {
                    assert_eq!(x.timestamp(), y.timestamp());
                }
                (a, b) => panic!("prefix diverged: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn replaying_the_script_matches_and_churns() {
        let w = SubscriptionChurnWorkload::new(SubscriptionChurnConfig {
            items: 250,
            initial_queries: 30,
            churn_rate: 0.4,
            ..SubscriptionChurnConfig::default()
        });
        let mut engine = MmqjpEngine::new(EngineConfig::mmqjp().with_prune_state_by_window(true));
        let mut reg_ids: Vec<QueryId> = Vec::new();
        let mut matches = 0usize;
        for event in w.events() {
            match event {
                SubscriptionEvent::Register(q) => {
                    reg_ids.push(engine.register_query(*q).unwrap());
                }
                SubscriptionEvent::Unregister(n) => {
                    engine.unregister_query(reg_ids[n]).unwrap();
                }
                SubscriptionEvent::Document(d) => {
                    matches += engine.process_document(*d).unwrap().len();
                }
            }
        }
        assert!(matches > 0, "small vocabularies must produce joins");
        let stats = engine.stats();
        assert!(stats.queries_unregistered > 0);
        assert_eq!(
            stats.queries_registered,
            reg_ids.len() - stats.queries_unregistered
        );
    }
}
