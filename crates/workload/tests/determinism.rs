//! Deterministic-seed tests for the workload generators: the Zipf sampler's
//! distribution shape, and that the flat/complex schema generators produce
//! schema-valid queries and documents reproducibly under a fixed `StdRng`
//! seed.

use mmqjp_workload::{
    ComplexSchemaWorkload, FlatSchemaWorkload, RssStreamConfig, RssStreamGenerator, Zipf,
};
use mmqjp_xpath::NodeTest;
use mmqjp_xscl::XsclQuery;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

/// Collect the tag names a query's two tree patterns reference.
fn query_tags(q: &XsclQuery) -> HashSet<String> {
    let (l, r) = q.blocks().expect("generated queries are joins");
    let mut tags = HashSet::new();
    for block in [l, r] {
        for node in block.pattern.nodes() {
            match node.test() {
                NodeTest::Tag(t) => {
                    tags.insert(t.clone());
                }
                other => panic!("generators only emit tag tests, got {other:?}"),
            }
        }
    }
    tags
}

#[test]
fn zipf_empirical_frequencies_match_pmf() {
    let n = 6;
    let theta = 0.8;
    let z = Zipf::new(n, theta);
    let mut rng = StdRng::seed_from_u64(20_070_611);
    let draws = 40_000usize;
    let mut counts = vec![0usize; n + 1];
    for _ in 0..draws {
        counts[z.sample(&mut rng)] += 1;
    }
    // Empirical frequency of every outcome within 2 percentage points of the
    // exact pmf — loose enough for any healthy uniform source, tight enough
    // to catch a broken sampler or a skew inversion.
    for (k, &count) in counts.iter().enumerate().skip(1) {
        let freq = count as f64 / draws as f64;
        assert!(
            (freq - z.pmf(k)).abs() < 0.02,
            "outcome {k}: frequency {freq:.4} vs pmf {:.4}",
            z.pmf(k)
        );
    }
    // Shape: strictly more mass on smaller outcomes for positive theta.
    assert!(counts[1] > counts[n]);
}

#[test]
fn zipf_uniform_when_theta_zero_empirically() {
    let z = Zipf::new(4, 0.0);
    let mut rng = StdRng::seed_from_u64(99);
    let draws = 40_000usize;
    let mut counts = [0usize; 5];
    for _ in 0..draws {
        counts[z.sample(&mut rng)] += 1;
    }
    for (k, &count) in counts.iter().enumerate().skip(1) {
        let freq = count as f64 / draws as f64;
        assert!(
            (freq - 0.25).abs() < 0.02,
            "outcome {k}: frequency {freq:.4}"
        );
    }
}

#[test]
fn flat_generator_is_deterministic_under_fixed_seed() {
    let w = FlatSchemaWorkload::new(6, 0.8);
    let a: Vec<String> = w
        .generate_queries(40, &mut StdRng::seed_from_u64(12345))
        .iter()
        .map(|q| q.to_string())
        .collect();
    let b: Vec<String> = w
        .generate_queries(40, &mut StdRng::seed_from_u64(12345))
        .iter()
        .map(|q| q.to_string())
        .collect();
    assert_eq!(a, b);
    // A different seed must not reproduce the same sequence.
    let c: Vec<String> = w
        .generate_queries(40, &mut StdRng::seed_from_u64(54321))
        .iter()
        .map(|q| q.to_string())
        .collect();
    assert_ne!(a, c);
}

#[test]
fn flat_generator_queries_and_documents_are_schema_valid() {
    let w = FlatSchemaWorkload::new(6, 0.8);
    let schema_tags: HashSet<String> = std::iter::once("item".to_owned())
        .chain(w.leaf_tags().iter().cloned())
        .collect();
    let mut rng = StdRng::seed_from_u64(777);
    for q in w.generate_queries(60, &mut rng) {
        let tags = query_tags(&q);
        assert!(
            tags.is_subset(&schema_tags),
            "query references tags outside the schema: {tags:?}"
        );
        let (l, r) = q.blocks().unwrap();
        l.pattern.check_invariants().unwrap();
        r.pattern.check_invariants().unwrap();
    }
    let (d1, d2) = w.documents();
    d1.check_invariants().unwrap();
    d2.check_invariants().unwrap();
}

#[test]
fn complex_generator_is_deterministic_under_fixed_seed() {
    let w = ComplexSchemaWorkload::new(4, 4, 0.8);
    let a: Vec<String> = w
        .generate_queries(40, &mut StdRng::seed_from_u64(2007))
        .iter()
        .map(|q| q.to_string())
        .collect();
    let b: Vec<String> = w
        .generate_queries(40, &mut StdRng::seed_from_u64(2007))
        .iter()
        .map(|q| q.to_string())
        .collect();
    assert_eq!(a, b);
}

#[test]
fn complex_generator_queries_and_documents_are_schema_valid() {
    let w = ComplexSchemaWorkload::new(4, 4, 0.8);
    let mut schema_tags: HashSet<String> = std::iter::once("doc".to_owned()).collect();
    for m in 0..4 {
        schema_tags.insert(w.mid_tag(m));
        for l in 0..4 {
            schema_tags.insert(w.leaf_tag(m, l));
        }
    }
    let mut rng = StdRng::seed_from_u64(404);
    for q in w.generate_queries(60, &mut rng) {
        let tags = query_tags(&q);
        assert!(
            tags.is_subset(&schema_tags),
            "query references tags outside the schema: {tags:?}"
        );
    }
    let (d1, d2) = w.documents();
    d1.check_invariants().unwrap();
    d2.check_invariants().unwrap();
    // 1 root + 4 intermediates + 16 leaves.
    assert_eq!(d1.len(), 21);
    assert_eq!(d2.len(), 21);
}

#[test]
fn rss_stream_is_deterministic_under_fixed_config_seed() {
    let config = RssStreamConfig {
        channels: 10,
        items: 50,
        title_vocabulary: 20,
        description_vocabulary: 30,
        skew: 0.8,
        seed: 31415,
    };
    let a = RssStreamGenerator::new(config.clone()).documents();
    let b = RssStreamGenerator::new(config.clone()).documents();
    assert_eq!(a.len(), 50);
    assert_eq!(a.len(), b.len());
    for (da, db) in a.iter().zip(&b) {
        assert_eq!(mmqjp_xml::serialize(da), mmqjp_xml::serialize(db));
        da.check_invariants().unwrap();
    }
    // A different seed must produce a different stream.
    let c = RssStreamGenerator::new(RssStreamConfig { seed: 8, ..config }).documents();
    let serialize_all =
        |docs: &[mmqjp_xml::Document]| docs.iter().map(mmqjp_xml::serialize).collect::<Vec<_>>();
    assert_ne!(serialize_all(&a), serialize_all(&c));
}
