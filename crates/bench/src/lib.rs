//! Shared harness code for the benchmark targets that regenerate every table
//! and figure of the paper's evaluation (Section 6).
//!
//! Each bench target under `benches/` is a `harness = false` binary that
//! prints the corresponding series in a plain-text table, so
//! `cargo bench --workspace` reproduces the whole evaluation and the output
//! can be diffed against the paper's reported shapes (see the "Benchmarks"
//! section of the repository `README.md`).
//!
//! Sweep sizes are controlled by the `MMQJP_BENCH_SCALE` environment variable
//! (`default`, `paper`, `smoke`); see
//! [`mmqjp_workload::BenchScale`].

#![forbid(unsafe_code)]

use mmqjp_core::{
    EngineConfig, EngineStats, MmqjpEngine, PhaseTimings, ProcessingMode, ShardedEngine,
};
use mmqjp_workload::{
    BenchScale, ChurnConfig, ChurnWorkload, ComplexSchemaWorkload, FlatSchemaWorkload,
    RssQueryGenerator, RssStreamConfig, RssStreamGenerator,
};
use mmqjp_xml::Document;
use mmqjp_xscl::XsclQuery;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// The three competitors of the paper's evaluation.
pub const MODES: [ProcessingMode; 3] = [
    ProcessingMode::MmqjpViewMat,
    ProcessingMode::Mmqjp,
    ProcessingMode::Sequential,
];

/// Pretty-print a results table: one row per x value, one column per series.
pub fn print_table(title: &str, x_label: &str, columns: &[String], rows: &[(String, Vec<String>)]) {
    println!("\n=== {title} ===");
    print!("{x_label:>24}");
    for c in columns {
        print!("  {c:>18}");
    }
    println!();
    for (x, values) in rows {
        print!("{x:>24}");
        for v in values {
            print!("  {v:>18}");
        }
        println!();
    }
}

/// Format a duration in milliseconds with three significant decimals.
pub fn fmt_ms(d: Duration) -> String {
    format!("{:.3} ms", d.as_secs_f64() * 1e3)
}

/// Format an events/second throughput.
pub fn fmt_throughput(t: f64) -> String {
    format!("{t:.0} ev/s")
}

/// Build an engine in `mode`, register `queries`, and return it. Document
/// retention is disabled — the benchmarks measure join processing, not output
/// construction, matching the paper's measurement.
pub fn engine_with(mode: ProcessingMode, queries: &[XsclQuery]) -> MmqjpEngine {
    let config = EngineConfig {
        mode,
        ..EngineConfig::default()
    }
    .with_retain_documents(false);
    engine_with_config(config, queries)
}

/// Build an engine from an explicit configuration and register `queries`.
pub fn engine_with_config(config: EngineConfig, queries: &[XsclQuery]) -> MmqjpEngine {
    let mut engine = MmqjpEngine::new(config);
    for q in queries {
        engine
            .register_query(q.clone())
            .expect("generated queries register cleanly");
    }
    engine
}

/// Result of one technical-benchmark run.
#[derive(Debug, Clone, Copy)]
pub struct TechnicalRun {
    /// Stage-2 join time (the paper's "total conjunctive query processing
    /// time").
    pub join_time: Duration,
    /// Full phase breakdown.
    pub timings: PhaseTimings,
    /// Number of query templates the engine compiled the workload into.
    pub templates: usize,
    /// Number of matches produced.
    pub matches: usize,
}

/// Run the technical benchmark of Section 6.1: register the queries, stream
/// the two fixed documents through the engine, and report the Stage-2 join
/// time.
pub fn run_two_document_benchmark(
    mode: ProcessingMode,
    queries: &[XsclQuery],
    d1: Document,
    d2: Document,
) -> TechnicalRun {
    let mut engine = engine_with(mode, queries);
    let mut matches = 0;
    matches += engine.process_document(d1).expect("d1 processes").len();
    matches += engine.process_document(d2).expect("d2 processes").len();
    let stats = engine.stats();
    TechnicalRun {
        join_time: stats.timings.stage2_join_time(),
        timings: stats.timings,
        templates: stats.templates,
        matches,
    }
}

/// Generate the flat-schema workload of Figures 8–10.
pub fn flat_workload(
    num_queries: usize,
    leaves: usize,
    zipf: f64,
    seed: u64,
) -> (Vec<XsclQuery>, Document, Document) {
    let w = FlatSchemaWorkload::new(leaves, zipf);
    let mut rng = StdRng::seed_from_u64(seed);
    let queries = w.generate_queries(num_queries, &mut rng);
    let (d1, d2) = w.documents();
    (queries, d1, d2)
}

/// Generate the complex-schema workload of Figures 11–13.
pub fn complex_workload(
    num_queries: usize,
    branching: usize,
    max_vj: usize,
    zipf: f64,
    seed: u64,
) -> (Vec<XsclQuery>, Document, Document) {
    let w = ComplexSchemaWorkload::new(branching, max_vj, zipf);
    let mut rng = StdRng::seed_from_u64(seed);
    let queries = w.generate_queries(num_queries, &mut rng);
    let (d1, d2) = w.documents();
    (queries, d1, d2)
}

/// Result of one RSS stream replay.
#[derive(Debug, Clone, Copy)]
pub struct RssRun {
    /// Join-processing throughput in events per second (Stage-2 time only,
    /// matching Figure 16's measurement).
    pub throughput: f64,
    /// Total matches produced.
    pub matches: usize,
    /// Number of templates.
    pub templates: usize,
}

/// Replay a synthetic RSS stream against `num_queries` random subscriptions
/// in the given mode, batching witness loading as the paper does.
pub fn run_rss_benchmark(
    mode: ProcessingMode,
    num_queries: usize,
    items: usize,
    batch: usize,
    seed: u64,
) -> RssRun {
    let generator = RssQueryGenerator::new(0.8);
    let mut rng = StdRng::seed_from_u64(seed);
    let queries = generator.generate_queries(num_queries, &mut rng);
    let mut engine = engine_with(mode, &queries);

    let stream = RssStreamGenerator::new(RssStreamConfig {
        items,
        ..RssStreamConfig::default()
    });
    let docs = stream.documents();
    let mut matches = 0usize;
    for chunk in docs.chunks(batch.max(1)) {
        matches += engine
            .process_batch(chunk.to_vec())
            .expect("batch processes")
            .len();
    }
    let stats = engine.stats();
    RssRun {
        throughput: stats.join_throughput_docs_per_sec(),
        matches,
        templates: stats.templates,
    }
}

/// Result of the streaming-vs-DOM Stage-1 front comparison on the RSS
/// workload (recorded alongside the Figure-17 artifact).
#[derive(Debug, Clone, Copy)]
pub struct FrontStage1Comparison {
    /// Total Stage-1 time with the shared streaming automaton
    /// ([`EngineConfig::streaming_front`] on): one document traversal
    /// answers every registered pattern.
    pub streaming: Duration,
    /// Total Stage-1 time with the per-pattern DOM front end
    /// (`streaming_front` off): one matcher run per distinct pattern.
    pub dom: Duration,
    /// Matches produced by the streaming run.
    pub matches_streaming: usize,
    /// Matches produced by the DOM run (must equal the streaming count —
    /// the two fronts are required to be byte-identical).
    pub matches_dom: usize,
}

/// Replay the RSS workload through a single engine with each Stage-1
/// strategy — the shared streaming automaton and the per-pattern DOM front —
/// and report the Stage-1 time of each. Both runs use the same seed, so the
/// query set, stream and match output are identical; only the Stage-1
/// strategy differs.
///
/// Each leg is replayed `1 + REPS` times (one warmup, then `REPS` timed
/// repetitions, legs interleaved) and the *minimum* Stage-1 time is kept:
/// at artifact scale one replay is a handful of milliseconds, where a single
/// scheduler preemption or clock ramp would otherwise dominate the ratio.
pub fn run_front_stage1_comparison(
    mode: ProcessingMode,
    num_queries: usize,
    items: usize,
    batch: usize,
    seed: u64,
) -> FrontStage1Comparison {
    const REPS: usize = 5;
    let generator = RssQueryGenerator::new(0.8);
    let mut rng = StdRng::seed_from_u64(seed);
    let queries = generator.generate_queries(num_queries, &mut rng);
    let docs = RssStreamGenerator::new(RssStreamConfig {
        items,
        ..RssStreamConfig::default()
    })
    .documents();

    let replay = |streaming: bool| -> (Duration, usize) {
        let config = EngineConfig {
            mode,
            ..EngineConfig::default()
        }
        .with_retain_documents(false)
        .with_streaming_front(streaming);
        let mut engine = engine_with_config(config, &queries);
        let mut matches = 0usize;
        for chunk in docs.chunks(batch.max(1)) {
            matches += engine
                .process_batch(chunk.to_vec())
                .expect("batch processes")
                .len();
        }
        (engine.stats().timings.xpath, matches)
    };

    let mut times = [Duration::MAX; 2];
    let mut match_counts = [0usize; 2];
    for rep in 0..=REPS {
        for (i, streaming) in [true, false].into_iter().enumerate() {
            let (t, matches) = replay(streaming);
            match_counts[i] = matches;
            if rep > 0 {
                times[i] = times[i].min(t);
            }
        }
    }
    FrontStage1Comparison {
        streaming: times[0],
        dom: times[1],
        matches_streaming: match_counts[0],
        matches_dom: match_counts[1],
    }
}

/// Result of one sharded RSS stream replay (Figure 17).
#[derive(Debug, Clone, Copy)]
pub struct ShardedRssRun {
    /// Wall-clock throughput of the replay loop in documents per second.
    /// Unlike [`RssRun::throughput`] (which counts only single-threaded
    /// Stage-2 time) this is end-to-end wall time — the quantity sharding
    /// actually improves on a multi-core machine.
    pub wall_throughput: f64,
    /// Total Stage-1 (parse + pattern-match + witness construction) work
    /// summed across every shard *and* the front stage. In the replicated
    /// topology every shard re-runs Stage 1 over every document, so this
    /// grows roughly linearly with the shard count; in the hybrid topology
    /// the front pool parses each document exactly once, so it stays flat.
    pub parse_time: Duration,
    /// Total Stage-2 join work summed across the shards.
    pub join_time: Duration,
    /// Documents counted by the engine — `num_shards ×` the stream length
    /// in the replicated topology (per-shard work), exactly the stream
    /// length in the hybrid topology (parse-once).
    pub documents_processed: usize,
    /// Pipeline stalls reported by the hybrid front (always 0 replicated).
    pub pipeline_stalls: usize,
    /// Total matches produced.
    pub matches: usize,
    /// Sum of per-shard template counts (shared templates are replicated
    /// into every shard holding one of their member queries).
    pub templates: usize,
}

/// Replay the Figure-16 RSS workload through a [`ShardedEngine`] with the
/// given shard count, front-pool size (`0` = the replicated topology,
/// `>= 1` = the hybrid parse-once topology) and inner mode, measuring
/// wall-clock throughput and the Stage-1 / Stage-2 work split. The hybrid
/// replay goes through [`ShardedEngine::process_batches`] so Stage 1 of
/// batch `k+1` overlaps Stage 2 of batch `k`.
pub fn run_sharded_rss_benchmark(
    mode: ProcessingMode,
    num_shards: usize,
    front_pool: usize,
    num_queries: usize,
    items: usize,
    batch: usize,
    seed: u64,
) -> ShardedRssRun {
    let generator = RssQueryGenerator::new(0.8);
    let mut rng = StdRng::seed_from_u64(seed);
    let queries = generator.generate_queries(num_queries, &mut rng);
    let config = EngineConfig {
        mode,
        ..EngineConfig::default()
    }
    .with_retain_documents(false)
    .with_num_shards(num_shards)
    .with_front_pool(front_pool);
    let mut engine = ShardedEngine::new(config);
    for q in queries {
        engine
            .register_query(q)
            .expect("generated queries register cleanly");
    }

    let stream = RssStreamGenerator::new(RssStreamConfig {
        items,
        ..RssStreamConfig::default()
    });
    let docs = stream.documents();
    let num_docs = docs.len();
    let mut matches = 0usize;
    let start = std::time::Instant::now();
    if front_pool > 0 {
        let batches: Vec<Vec<Document>> = docs.chunks(batch.max(1)).map(<[_]>::to_vec).collect();
        matches += engine
            .process_batches(batches)
            .expect("batches process")
            .iter()
            .map(Vec::len)
            .sum::<usize>();
    } else {
        for chunk in docs.chunks(batch.max(1)) {
            matches += engine
                .process_batch(chunk.to_vec())
                .expect("batch processes")
                .len();
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    let stats = engine.stats().expect("shard workers are alive");
    ShardedRssRun {
        wall_throughput: if elapsed > 0.0 {
            num_docs as f64 / elapsed
        } else {
            0.0
        },
        // Total Stage-1 work: pattern matching plus witness-relation
        // construction. Replicated shards ingest what they each matched
        // (`ingest`); the hybrid front routes pre-built batches, so its
        // equivalent cost is already inside the front's `xpath` bucket.
        parse_time: stats.timings.xpath + stats.timings.ingest,
        join_time: stats.timings.stage2_join_time(),
        documents_processed: stats.documents_processed,
        pipeline_stalls: stats.pipeline_stalls,
        matches,
        templates: stats.templates,
    }
}

/// Result of one sustained-throughput churn replay (Figure 18).
#[derive(Debug, Clone, Copy)]
pub struct ChurnRun {
    /// Steady-state throughput: wall-clock docs/s over the *second half* of
    /// the stream, after the windows have filled. With incremental expiry
    /// this stays flat as the stream grows; with rebuild-on-prune it falls.
    pub steady_throughput: f64,
    /// Wall-clock docs/s over the whole stream.
    pub total_throughput: f64,
    /// Total matches produced.
    pub matches: usize,
    /// Final engine statistics (eviction counters, resident state).
    pub stats: EngineStats,
}

/// Replay a churn-heavy windowed stream of `items` documents against the
/// standard churn query set in the given mode, with window pruning and
/// document retention enabled (the sustained-operation configuration), and
/// measure steady-state wall-clock throughput.
pub fn run_churn_benchmark(mode: ProcessingMode, num_queries: usize, items: usize) -> ChurnRun {
    let workload = ChurnWorkload::new(ChurnConfig {
        items,
        num_queries,
        ..ChurnConfig::default()
    });
    let config = EngineConfig {
        mode,
        ..EngineConfig::default()
    }
    .with_prune_state_by_window(true);
    let mut engine = MmqjpEngine::new(config);
    for q in workload.queries() {
        engine
            .register_query(q)
            .expect("generated queries register cleanly");
    }
    let docs = workload.documents_with_items(items);
    let half = docs.len() / 2;
    let mut matches = 0usize;
    let start = std::time::Instant::now();
    let mut half_elapsed = 0.0f64;
    for (i, doc) in docs.into_iter().enumerate() {
        if i == half {
            half_elapsed = start.elapsed().as_secs_f64();
        }
        matches += engine
            .process_document(doc)
            .expect("document processes")
            .len();
    }
    let elapsed = start.elapsed().as_secs_f64();
    let steady_secs = elapsed - half_elapsed;
    ChurnRun {
        steady_throughput: if steady_secs > 0.0 {
            (items - half) as f64 / steady_secs
        } else {
            0.0
        },
        total_throughput: if elapsed > 0.0 {
            items as f64 / elapsed
        } else {
            0.0
        },
        matches,
        stats: engine.stats(),
    }
}

/// Result of one subscription-churn replay (Figure 19).
#[derive(Debug, Clone, Copy)]
pub struct SubscriptionChurnRun {
    /// Steady-state throughput: wall-clock docs/s over the second half of
    /// the stream (subscription events are replayed inline, so this includes
    /// register/unregister cost). With O(footprint) unregistration this
    /// stays flat as the stream — and therefore the cumulative number of
    /// lifecycle events — grows 10×.
    pub steady_throughput: f64,
    /// Total matches produced.
    pub matches: usize,
    /// Queries registered over the whole replay (cumulative).
    pub total_registered: usize,
    /// Final engine statistics (live population, retirement counters,
    /// resident state).
    pub stats: EngineStats,
}

/// Replay a subscription-churn script of `items` documents in the given
/// mode. With `honor_unregister = false` the unsubscribe events are skipped
/// — the append-only population an engine without a query lifecycle would
/// accumulate — which makes the resident-state plateau visible by contrast.
pub fn run_subscription_churn_benchmark(
    mode: ProcessingMode,
    initial_queries: usize,
    items: usize,
    honor_unregister: bool,
) -> SubscriptionChurnRun {
    use mmqjp_workload::{SubscriptionChurnConfig, SubscriptionEvent};
    let workload = mmqjp_workload::SubscriptionChurnWorkload::new(SubscriptionChurnConfig {
        items,
        initial_queries,
        ..SubscriptionChurnConfig::default()
    });
    let config = EngineConfig {
        mode,
        ..EngineConfig::default()
    }
    .with_prune_state_by_window(true);
    let mut engine = MmqjpEngine::new(config);
    let events = workload.events_with_items(items);
    let mut reg_ids = Vec::new();
    let half = items / 2;
    let mut docs_seen = 0usize;
    let mut matches = 0usize;
    let start = std::time::Instant::now();
    let mut half_elapsed = 0.0f64;
    for event in events {
        match event {
            SubscriptionEvent::Register(q) => {
                reg_ids.push(engine.register_query(*q).expect("query registers"));
            }
            SubscriptionEvent::Unregister(n) => {
                if honor_unregister {
                    engine
                        .unregister_query(reg_ids[n])
                        .expect("scripted targets are live");
                }
            }
            SubscriptionEvent::Document(d) => {
                if docs_seen == half {
                    half_elapsed = start.elapsed().as_secs_f64();
                }
                docs_seen += 1;
                matches += engine
                    .process_document(*d)
                    .expect("document processes")
                    .len();
            }
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    let steady_secs = elapsed - half_elapsed;
    SubscriptionChurnRun {
        steady_throughput: if steady_secs > 0.0 {
            (docs_seen - half) as f64 / steady_secs
        } else {
            0.0
        },
        matches,
        total_registered: reg_ids.len(),
        stats: engine.stats(),
    }
}

/// The scale selected through the environment.
pub fn scale() -> BenchScale {
    BenchScale::from_env()
}

/// Print the standard header for a figure bench.
pub fn figure_header(figure: &str, description: &str) {
    println!("--------------------------------------------------------------------------------");
    println!("{figure}: {description}");
    println!(
        "scale: {:?} (set MMQJP_BENCH_SCALE=paper|default|smoke to change)",
        scale()
    );
    println!("--------------------------------------------------------------------------------");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_workload_generation() {
        let (queries, d1, d2) = flat_workload(50, 6, 0.8, 1);
        assert_eq!(queries.len(), 50);
        assert_eq!(d1.len(), 7);
        assert_eq!(d2.len(), 7);
    }

    #[test]
    fn two_document_benchmark_runs_in_all_modes() {
        let (queries, d1, d2) = flat_workload(40, 4, 0.8, 2);
        let mut results = Vec::new();
        for mode in MODES {
            let run = run_two_document_benchmark(mode, &queries, d1.clone(), d2.clone());
            assert!(run.templates >= 1 && run.templates <= 4);
            results.push(run.matches);
        }
        // All modes find the same number of matches.
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn rss_benchmark_smoke() {
        let run = run_rss_benchmark(ProcessingMode::MmqjpViewMat, 30, 100, 50, 3);
        assert!(run.templates <= 5);
        assert!(run.throughput >= 0.0);
    }

    #[test]
    fn sharded_rss_benchmark_matches_single_engine_counts() {
        let single = run_rss_benchmark(ProcessingMode::Mmqjp, 30, 100, 50, 3);
        for shards in [1, 3] {
            let sharded =
                run_sharded_rss_benchmark(ProcessingMode::Mmqjp, shards, 0, 30, 100, 50, 3);
            assert_eq!(sharded.matches, single.matches, "{shards} shards");
            assert!(sharded.wall_throughput > 0.0);
            assert!(sharded.templates >= single.templates);
            // Replicated accounting: every shard re-parses every document.
            assert_eq!(sharded.documents_processed, 100 * shards);
            assert_eq!(sharded.pipeline_stalls, 0);
            assert!(sharded.parse_time > Duration::ZERO);
        }
    }

    #[test]
    fn hybrid_rss_benchmark_parses_once_and_matches_replicated() {
        let replicated = run_sharded_rss_benchmark(ProcessingMode::Mmqjp, 2, 0, 30, 100, 50, 3);
        let hybrid = run_sharded_rss_benchmark(ProcessingMode::Mmqjp, 2, 2, 30, 100, 50, 3);
        assert_eq!(hybrid.matches, replicated.matches);
        assert!(hybrid.wall_throughput > 0.0);
        // Parse-once accounting: each document is counted (and parsed)
        // exactly once at the front, not once per shard.
        assert_eq!(hybrid.documents_processed, 100);
        assert_eq!(replicated.documents_processed, 200);
        assert!(hybrid.parse_time > Duration::ZERO);
        assert!(hybrid.join_time > Duration::ZERO);
    }

    #[test]
    fn front_stage1_comparison_outputs_agree() {
        let cmp = run_front_stage1_comparison(ProcessingMode::Mmqjp, 30, 100, 50, 3);
        // Byte-identical fronts ⇒ identical match counts; the fixed RSS
        // workload joins fields with themselves, so joins actually fire.
        assert_eq!(cmp.matches_streaming, cmp.matches_dom);
        assert!(cmp.matches_streaming > 0, "workload must produce matches");
        assert!(cmp.streaming > Duration::ZERO);
        assert!(cmp.dom > Duration::ZERO);
    }

    #[test]
    fn churn_benchmark_reports_eviction_counters() {
        // 500 items span 1000 time units — well past the largest (400)
        // window, so state must churn.
        let run = run_churn_benchmark(ProcessingMode::MmqjpViewMat, 20, 500);
        assert!(run.matches > 0);
        assert!(run.steady_throughput > 0.0);
        assert!(run.total_throughput > 0.0);
        assert!(
            run.stats.state_rows_evicted > 0,
            "a 1000-time-unit churn stream must evict state: {:?}",
            run.stats
        );
        assert!(run.stats.docs_evicted > 0);
        // Resident state is bounded by the windows, below stream length.
        assert!(run.stats.docs_retained < 300);
    }

    #[test]
    fn subscription_churn_benchmark_contrasts_live_and_append_only() {
        let run = run_subscription_churn_benchmark(ProcessingMode::Mmqjp, 12, 200, true);
        assert!(run.matches > 0);
        assert!(run.steady_throughput > 0.0);
        assert!(run.stats.queries_unregistered > 0, "{:?}", run.stats);
        assert_eq!(
            run.stats.queries_registered,
            run.total_registered - run.stats.queries_unregistered
        );
        // The same script with unsubscribes ignored accumulates the whole
        // population — the growth an engine without a query lifecycle pays.
        let append = run_subscription_churn_benchmark(ProcessingMode::Mmqjp, 12, 200, false);
        assert_eq!(append.total_registered, run.total_registered);
        assert_eq!(append.stats.queries_registered, append.total_registered);
        assert!(append.stats.queries_registered > run.stats.queries_registered);
        assert!(append.stats.distinct_patterns >= run.stats.distinct_patterns);
    }

    #[test]
    fn formatting_helpers() {
        assert!(fmt_ms(Duration::from_millis(12)).starts_with("12.000"));
        assert_eq!(fmt_throughput(1234.56), "1235 ev/s");
    }
}
