//! Smoke test: compile every bench harness into this test binary and run
//! each one once at `MMQJP_BENCH_SCALE=smoke`, so `crates/bench` can never
//! silently bit-rot. The bench targets are `harness = false` binaries that
//! plain `cargo test` would otherwise never build or execute; here each is
//! mounted as a `#[path]` module and its (public) `main` invoked directly.

/// Make the benches observe smoke scale regardless of test ordering. All
/// tests set the same value, so concurrent setters are benign.
fn force_smoke_scale() {
    std::env::set_var("MMQJP_BENCH_SCALE", "smoke");
}

macro_rules! bench_smoke {
    ($($name:ident => $file:literal;)*) => {
        $(
            #[path = $file]
            #[allow(dead_code)]
            mod $name;
        )*

        $(
            #[test]
            fn $name() {
                force_smoke_scale();
                self::$name::main();
            }
        )*
    };
}

bench_smoke! {
    fig08_simple_num_queries => "../benches/fig08_simple_num_queries.rs";
    fig09_simple_leaves => "../benches/fig09_simple_leaves.rs";
    fig10_simple_zipf => "../benches/fig10_simple_zipf.rs";
    fig11_complex_num_queries => "../benches/fig11_complex_num_queries.rs";
    fig12_complex_max_vj => "../benches/fig12_complex_max_vj.rs";
    fig13_complex_zipf => "../benches/fig13_complex_zipf.rs";
    fig14_viewmat_simple => "../benches/fig14_viewmat_simple.rs";
    fig15_viewmat_complex => "../benches/fig15_viewmat_complex.rs";
    fig16_rss_throughput => "../benches/fig16_rss_throughput.rs";
    fig17_sharded_throughput => "../benches/fig17_sharded_throughput.rs";
    fig18_window_churn => "../benches/fig18_window_churn.rs";
    fig19_subscription_churn => "../benches/fig19_subscription_churn.rs";
    micro_operators => "../benches/micro_operators.rs";
    table3_templates => "../benches/table3_templates.rs";
}
