//! Figure 11: total conjunctive-query processing time vs. number of queries,
//! complex (3-level) document schema.
//!
//! Paper shape: growth is more than linear for both approaches (more queries
//! bring in more templates); MMQJP still wins by about two orders of
//! magnitude at 100 000 queries.

use mmqjp_bench::{
    complex_workload, figure_header, fmt_ms, print_table, run_two_document_benchmark, scale, MODES,
};
use mmqjp_core::ProcessingMode;
use mmqjp_workload::Defaults;

pub fn main() {
    figure_header(
        "Figure 11",
        "complex schema — join time vs number of queries (branching 4, K=4, Zipf 0.8)",
    );
    let scale = scale();
    let columns: Vec<String> = MODES.iter().map(|m| m.label().to_owned()).collect();
    let mut rows = Vec::new();
    for &n in &scale.query_counts() {
        let (queries, d1, d2) = complex_workload(
            n,
            Defaults::COMPLEX_BRANCHING,
            Defaults::COMPLEX_MAX_VJ,
            Defaults::ZIPF,
            11,
        );
        let mut values = Vec::new();
        let mut templates = 0;
        for mode in MODES {
            if mode == ProcessingMode::Sequential && n > scale.sequential_cap() {
                values.push("(skipped)".to_owned());
                continue;
            }
            let run = run_two_document_benchmark(mode, &queries, d1.clone(), d2.clone());
            templates = templates.max(run.templates);
            values.push(fmt_ms(run.join_time));
        }
        rows.push((format!("{n} queries ({templates} templates)"), values));
    }
    print_table("Figure 11", "number of queries", &columns, &rows);
}
