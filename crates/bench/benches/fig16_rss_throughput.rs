//! Figure 16: join-processing throughput (events/second) on the RSS feed
//! stream vs. the number of registered queries, for MMQJP with view
//! materialization, MMQJP, and Sequential evaluation.
//!
//! Paper shape: MMQJP sustains thousands of events per second and stays flat
//! beyond ~10 000 queries (the random generator starts producing duplicate
//! queries); view materialization adds a further constant-factor gain;
//! Sequential throughput collapses as the query count grows.

use mmqjp_bench::{figure_header, fmt_throughput, print_table, run_rss_benchmark, scale, MODES};
use mmqjp_core::ProcessingMode;

pub fn main() {
    figure_header(
        "Figure 16",
        "RSS stream — join throughput vs number of queries (T = INF, batched)",
    );
    let scale = scale();
    let items = scale.rss_items();
    let batch = scale.rss_batch();
    println!("stream: {items} items, 418 channels, batch size {batch}");

    let columns: Vec<String> = MODES.iter().map(|m| m.label().to_owned()).collect();
    let mut rows = Vec::new();
    for &n in &scale.query_counts() {
        let mut values = Vec::new();
        for mode in MODES {
            if mode == ProcessingMode::Sequential && n > scale.rss_sequential_cap() {
                values.push("(skipped)".to_owned());
                continue;
            }
            let run = run_rss_benchmark(mode, n, items, batch, 16);
            values.push(fmt_throughput(run.throughput));
        }
        rows.push((format!("{n} queries"), values));
    }
    print_table("Figure 16", "number of queries", &columns, &rows);
}
