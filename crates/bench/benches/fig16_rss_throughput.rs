//! Figure 16: join-processing throughput (events/second) on the RSS feed
//! stream vs. the number of registered queries, for MMQJP with view
//! materialization, MMQJP, and Sequential evaluation.
//!
//! Paper shape: MMQJP sustains thousands of events per second and stays flat
//! beyond ~10 000 queries (the random generator starts producing duplicate
//! queries); view materialization adds a further constant-factor gain;
//! Sequential throughput collapses as the query count grows.
//!
//! When the `MMQJP_BENCH_JSON` environment variable names a file, the run
//! additionally writes the docs/s series as JSON (`BENCH_fig16.json` in CI),
//! so the perf trajectory is tracked as an artifact from PR to PR.

use mmqjp_bench::{figure_header, fmt_throughput, print_table, run_rss_benchmark, scale, MODES};
use mmqjp_core::ProcessingMode;

/// Fixed workload seed: the query set and stream are deterministic, so two
/// runs on the same machine and scale differ only by timer noise.
const SEED: u64 = 16;

pub fn main() {
    figure_header(
        "Figure 16",
        "RSS stream — join throughput vs number of queries (T = INF, batched)",
    );
    let scale = scale();
    let items = scale.rss_items();
    let batch = scale.rss_batch();
    println!("stream: {items} items, 418 channels, batch size {batch}");

    let columns: Vec<String> = MODES.iter().map(|m| m.label().to_owned()).collect();
    let mut rows = Vec::new();
    // (queries, mode label, docs/s) series for the JSON artifact.
    let mut series: Vec<(usize, &'static str, f64)> = Vec::new();
    for &n in &scale.query_counts() {
        let mut values = Vec::new();
        for mode in MODES {
            if mode == ProcessingMode::Sequential && n > scale.rss_sequential_cap() {
                values.push("(skipped)".to_owned());
                continue;
            }
            let run = run_rss_benchmark(mode, n, items, batch, SEED);
            series.push((n, mode.label(), run.throughput));
            values.push(fmt_throughput(run.throughput));
        }
        rows.push((format!("{n} queries"), values));
    }
    print_table("Figure 16", "number of queries", &columns, &rows);

    if let Ok(path) = std::env::var("MMQJP_BENCH_JSON") {
        // Bench binaries run with the package directory as CWD; anchor
        // relative paths at the workspace root so CI finds the artifact.
        let mut target = std::path::PathBuf::from(&path);
        if target.is_relative() {
            target = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(target);
        }
        let json = fig16_json(&format!("{:?}", scale), items, batch, &series);
        match std::fs::write(&target, json) {
            Ok(()) => println!("\nwrote throughput series to {}", target.display()),
            // Fail loudly: CI uploads this file, and a swallowed write error
            // would only surface later as a misleading missing-artifact
            // failure.
            Err(e) => panic!("failed to write {}: {e}", target.display()),
        }
    }
}

/// Hand-rolled JSON for the docs/s series (no serde_json in the build
/// environment): `{"figure", "scale", "items", "batch", "seed", "note",
/// "series": [...]}`.
fn fig16_json(scale: &str, items: usize, batch: usize, series: &[(usize, &str, f64)]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"figure\": \"fig16_rss_throughput\",\n");
    out.push_str(&format!("  \"scale\": \"{scale}\",\n"));
    out.push_str(&format!("  \"items\": {items},\n"));
    out.push_str(&format!("  \"batch\": {batch},\n"));
    out.push_str(&format!("  \"seed\": {SEED},\n"));
    out.push_str(
        "  \"note\": \"docs_per_sec counts single-threaded Stage-2 join time only \
         (release build); absolute numbers vary by machine — only the cross-mode \
         ratios at equal query counts are comparable across runs\",\n",
    );
    out.push_str("  \"series\": [\n");
    let entries: Vec<String> = series
        .iter()
        .map(|(queries, mode, docs_per_sec)| {
            format!(
                "    {{\"queries\": {queries}, \"mode\": \"{mode}\", \"docs_per_sec\": {docs_per_sec:.1}}}"
            )
        })
        .collect();
    out.push_str(&entries.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}
