//! Figure 9: total conjunctive-query processing time vs. number of leaf
//! nodes in the simple document schema (1000 queries, Zipf 0.8).
//!
//! Paper shape: both approaches grow with N (about 6x from N=4 to N=12);
//! MMQJP grows because more leaves mean more query templates.

use mmqjp_bench::{
    figure_header, flat_workload, fmt_ms, print_table, run_two_document_benchmark, MODES,
};
use mmqjp_workload::Defaults;

pub fn main() {
    figure_header(
        "Figure 9",
        "simple schema — join time vs number of leaves (1000 queries, Zipf 0.8)",
    );
    let columns: Vec<String> = MODES.iter().map(|m| m.label().to_owned()).collect();
    let mut rows = Vec::new();
    for n_leaves in [4usize, 6, 8, 10, 12] {
        let (queries, d1, d2) = flat_workload(Defaults::NUM_QUERIES, n_leaves, Defaults::ZIPF, 9);
        let mut values = Vec::new();
        let mut templates = 0;
        for mode in MODES {
            let run = run_two_document_benchmark(mode, &queries, d1.clone(), d2.clone());
            templates = templates.max(run.templates);
            values.push(fmt_ms(run.join_time));
        }
        rows.push((format!("{n_leaves} leaves ({templates} templates)"), values));
    }
    print_table("Figure 9", "leaves in schema", &columns, &rows);
}
