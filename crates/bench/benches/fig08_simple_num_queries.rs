//! Figure 8: total conjunctive-query processing time vs. number of queries,
//! simple (2-level) document schema, MMQJP vs Sequential.
//!
//! Paper shape: comparable at small query counts, MMQJP more than two orders
//! of magnitude faster at 100 000 queries.

use mmqjp_bench::{
    figure_header, flat_workload, fmt_ms, print_table, run_two_document_benchmark, scale, MODES,
};
use mmqjp_core::ProcessingMode;
use mmqjp_workload::Defaults;

pub fn main() {
    figure_header(
        "Figure 8",
        "simple schema — join time vs number of queries (N=6 leaves, Zipf 0.8)",
    );
    let scale = scale();
    let columns: Vec<String> = MODES.iter().map(|m| m.label().to_owned()).collect();
    let mut rows = Vec::new();
    for &n in &scale.query_counts() {
        let (queries, d1, d2) = flat_workload(n, Defaults::SIMPLE_LEAVES, Defaults::ZIPF, 8);
        let mut values = Vec::new();
        for mode in MODES {
            if mode == ProcessingMode::Sequential && n > scale.sequential_cap() {
                values.push("(skipped)".to_owned());
                continue;
            }
            let run = run_two_document_benchmark(mode, &queries, d1.clone(), d2.clone());
            values.push(fmt_ms(run.join_time));
        }
        rows.push((format!("{n} queries"), values));
    }
    print_table("Figure 8", "number of queries", &columns, &rows);
}
