//! Figure 15: view-materialization breakdown on the complex document schema.
//!
//! Same measurement as Figure 14 but over the 3-level schema, which compiles
//! into many more query templates — so sharing the materialized `RL`/`RR`
//! across templates saves more work.
//!
//! Paper shape: the benefit of view materialization is significantly larger
//! than on the simple schema (22 templates vs 6).

use mmqjp_bench::{
    complex_workload, figure_header, fmt_ms, print_table, run_two_document_benchmark, scale,
};
use mmqjp_core::ProcessingMode;
use mmqjp_workload::Defaults;

pub fn main() {
    figure_header(
        "Figure 15",
        "view materialization breakdown — complex schema",
    );
    let num_queries = scale().viewmat_queries();
    println!("queries: {num_queries}");
    let (queries, d1, d2) = complex_workload(
        num_queries,
        Defaults::COMPLEX_BRANCHING,
        Defaults::COMPLEX_MAX_VJ,
        Defaults::ZIPF,
        15,
    );

    let columns = vec![
        "computing Rvj".to_owned(),
        "computing RL".to_owned(),
        "computing RR".to_owned(),
        "conjunctive query".to_owned(),
        "total".to_owned(),
    ];
    let mut rows = Vec::new();
    let mut templates = 0;
    for (label, mode) in [
        ("MMQJP", ProcessingMode::Mmqjp),
        ("MMQJP, View Materialization", ProcessingMode::MmqjpViewMat),
    ] {
        let run = run_two_document_benchmark(mode, &queries, d1.clone(), d2.clone());
        templates = templates.max(run.templates);
        let t = run.timings;
        rows.push((
            label.to_owned(),
            vec![
                fmt_ms(t.compute_rvj),
                fmt_ms(t.compute_rl),
                fmt_ms(t.compute_rr),
                fmt_ms(t.conjunctive),
                fmt_ms(t.stage2_join_time()),
            ],
        ));
    }
    print_table("Figure 15", "strategy", &columns, &rows);
    println!("\ntemplates in this workload: {templates}");
}
