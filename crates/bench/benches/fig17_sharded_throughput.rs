//! Figure 17 (beyond the paper): wall-clock RSS throughput of the
//! `ShardedEngine` vs shard count, for MMQJP and MMQJP with view
//! materialization on the Figure-16 workload.
//!
//! Expected shape on an `N`-core machine: throughput grows with the shard
//! count until it saturates at the core count (each shard is an independent
//! engine on its own thread; the document stream is replicated, so Stage-1
//! work is partly duplicated and scaling is sublinear). On a single-core
//! runner the sweep degenerates to ≈ 1× — the table still prints the
//! speedup column so the trend is visible wherever the bench runs.

use mmqjp_bench::{figure_header, run_sharded_rss_benchmark, scale};
use mmqjp_core::ProcessingMode;

pub fn main() {
    figure_header(
        "Figure 17",
        "RSS stream — wall-clock throughput vs shard count (query-population sharding)",
    );
    let scale = scale();
    let items = scale.rss_items();
    let batch = scale.rss_batch();
    let shard_counts = scale.shard_counts();
    let num_queries = *scale.query_counts().last().expect("non-empty sweep");
    println!(
        "stream: {items} items, 418 channels, batch size {batch}, {num_queries} queries, \
         {} cores available",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    for mode in [ProcessingMode::MmqjpViewMat, ProcessingMode::Mmqjp] {
        println!("\n=== Figure 17 — {} ===", mode.label());
        println!(
            "{:>24}  {:>18}  {:>12}  {:>10}",
            "shards", "throughput", "speedup", "matches"
        );
        let mut base = None;
        for &shards in &shard_counts {
            let run = run_sharded_rss_benchmark(mode, shards, num_queries, items, batch, 16);
            let base = *base.get_or_insert(run.wall_throughput);
            let speedup = if base > 0.0 {
                run.wall_throughput / base
            } else {
                0.0
            };
            println!(
                "{:>24}  {:>18}  {:>11.2}x  {:>10}",
                format!("{shards} shards"),
                format!("{:.0} docs/s", run.wall_throughput),
                speedup,
                run.matches,
            );
        }
    }
}
