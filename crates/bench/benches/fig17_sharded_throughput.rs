//! Figure 17 (beyond the paper): wall-clock RSS throughput of the
//! `ShardedEngine` vs shard count, for MMQJP and MMQJP with view
//! materialization on the Figure-16 workload — in both topologies.
//!
//! Two series per mode:
//!
//! - **replicated** (`front_pool = 0`): the document stream is cloned to
//!   every shard, so each shard re-runs parsing and Stage-1 pattern matching.
//!   The `parse` column (total Stage-1 work summed across shards) grows
//!   roughly linearly with the shard count — the replication tax.
//! - **hybrid** (`front_pool >= 1`): a document-parallel front stage parses
//!   each document exactly once and routes witness rows to subscribing
//!   shards, pipelining Stage 1 of batch `k+1` with Stage 2 of batch `k`.
//!   The `parse` column stays flat as shards are added — the per-document
//!   Stage-1 cost no longer scales with the shard count.
//!
//! Expected shape on an `N`-core machine: both series grow with the shard
//! count until saturation, with hybrid holding its advantage as the
//! replicated topology's duplicated Stage-1 work eats its scaling. On a
//! single-core runner the sweep degenerates to ≈ 1× — the table still
//! prints the speedup and parse columns so the trend is visible wherever
//! the bench runs.
//!
//! When the `MMQJP_BENCH_JSON_FIG17` environment variable names a file, the
//! run additionally writes both series as JSON (`BENCH_fig17.json` in CI) so
//! the sharding trajectory is tracked as an artifact from PR to PR. (A
//! separate variable from fig16's `MMQJP_BENCH_JSON`, which is set for the
//! whole bench run in CI and must keep naming fig16's artifact.)

use mmqjp_bench::{
    figure_header, run_front_stage1_comparison, run_sharded_rss_benchmark, scale,
    FrontStage1Comparison, ShardedRssRun,
};
use mmqjp_core::ProcessingMode;

/// Fixed workload seed: the query set and stream are deterministic, so two
/// runs on the same machine and scale differ only by timer noise.
const SEED: u64 = 16;

/// Front-pool size of the hybrid series. Small on purpose: the point of the
/// figure is that parse-once wins on routing, not on front-stage
/// parallelism, so the front is kept narrower than the shard sweep.
const FRONT_POOL: usize = 2;

pub fn main() {
    figure_header(
        "Figure 17",
        "RSS stream — wall-clock throughput vs shard count (replicated vs hybrid sharding)",
    );
    let scale = scale();
    let items = scale.rss_items();
    let batch = scale.rss_batch();
    let shard_counts = scale.shard_counts();
    let num_queries = *scale.query_counts().last().expect("non-empty sweep");
    println!(
        "stream: {items} items, 418 channels, batch size {batch}, {num_queries} queries, \
         hybrid front pool {FRONT_POOL}, {} cores available",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    // (mode label, topology, shards, run) tuples for the JSON artifact.
    let mut series: Vec<(&'static str, &'static str, usize, ShardedRssRun)> = Vec::new();
    for mode in [ProcessingMode::MmqjpViewMat, ProcessingMode::Mmqjp] {
        for (topology, front_pool) in [("replicated", 0), ("hybrid", FRONT_POOL)] {
            println!("\n=== Figure 17 — {} / {topology} ===", mode.label());
            println!(
                "{:>24}  {:>18}  {:>12}  {:>12}  {:>12}  {:>10}",
                "shards", "throughput", "speedup", "parse", "join", "matches"
            );
            let mut base = None;
            for &shards in &shard_counts {
                let run = run_sharded_rss_benchmark(
                    mode,
                    shards,
                    front_pool,
                    num_queries,
                    items,
                    batch,
                    SEED,
                );
                series.push((mode.label(), topology, shards, run));
                let base = *base.get_or_insert(run.wall_throughput);
                let speedup = if base > 0.0 {
                    run.wall_throughput / base
                } else {
                    0.0
                };
                println!(
                    "{:>24}  {:>18}  {:>11.2}x  {:>12}  {:>12}  {:>10}",
                    format!("{shards} shards"),
                    format!("{:.0} docs/s", run.wall_throughput),
                    speedup,
                    format!("{:.1} ms", run.parse_time.as_secs_f64() * 1e3),
                    format!("{:.1} ms", run.join_time.as_secs_f64() * 1e3),
                    run.matches,
                );
            }
        }
    }

    // Streaming-vs-DOM Stage-1 front comparison at the full query count:
    // the shared automaton answers every pattern in one traversal, so its
    // Stage-1 time must stay clearly below the per-pattern DOM front.
    let front = run_front_stage1_comparison(ProcessingMode::Mmqjp, num_queries, items, batch, SEED);
    let ratio = front.streaming.as_secs_f64() / front.dom.as_secs_f64().max(f64::MIN_POSITIVE);
    println!(
        "\nStage-1 front at {num_queries} queries: streaming {:.1} ms vs DOM {:.1} ms \
         ({ratio:.2}x), {} matches each",
        front.streaming.as_secs_f64() * 1e3,
        front.dom.as_secs_f64() * 1e3,
        front.matches_streaming,
    );
    assert_eq!(
        front.matches_streaming, front.matches_dom,
        "streaming and DOM fronts must be byte-identical"
    );

    if let Ok(path) = std::env::var("MMQJP_BENCH_JSON_FIG17") {
        // Bench binaries run with the package directory as CWD; anchor
        // relative paths at the workspace root so CI finds the artifact.
        let mut target = std::path::PathBuf::from(&path);
        if target.is_relative() {
            target = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(target);
        }
        let json = fig17_json(
            &format!("{:?}", scale),
            items,
            batch,
            num_queries,
            &front,
            &series,
        );
        match std::fs::write(&target, json) {
            Ok(()) => println!("\nwrote sharding series to {}", target.display()),
            // Fail loudly: CI uploads this file, and a swallowed write error
            // would only surface later as a misleading missing-artifact
            // failure.
            Err(e) => panic!("failed to write {}: {e}", target.display()),
        }
    }
}

/// Hand-rolled JSON for the sharding series (no serde_json in the build
/// environment): `{"figure", "scale", "items", "batch", "queries", "seed",
/// "front_pool", "cores", "note", "series": [...]}`.
fn fig17_json(
    scale: &str,
    items: usize,
    batch: usize,
    queries: usize,
    front: &FrontStage1Comparison,
    series: &[(&str, &str, usize, ShardedRssRun)],
) -> String {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let ratio = front.streaming.as_secs_f64() / front.dom.as_secs_f64().max(f64::MIN_POSITIVE);
    let mut out = String::from("{\n");
    out.push_str("  \"figure\": \"fig17_sharded_throughput\",\n");
    out.push_str(&format!("  \"scale\": \"{scale}\",\n"));
    out.push_str(&format!("  \"items\": {items},\n"));
    out.push_str(&format!("  \"batch\": {batch},\n"));
    out.push_str(&format!("  \"queries\": {queries},\n"));
    out.push_str(&format!("  \"seed\": {SEED},\n"));
    out.push_str(&format!("  \"front_pool\": {FRONT_POOL},\n"));
    out.push_str(&format!("  \"cores\": {cores},\n"));
    out.push_str(&format!(
        "  \"stage1_streaming_ms\": {:.3},\n",
        front.streaming.as_secs_f64() * 1e3
    ));
    out.push_str(&format!(
        "  \"stage1_dom_ms\": {:.3},\n",
        front.dom.as_secs_f64() * 1e3
    ));
    out.push_str(&format!("  \"stage1_ratio\": {ratio:.3},\n"));
    out.push_str(&format!(
        "  \"note\": \"docs_per_sec is end-to-end wall clock; parse_ms is total Stage-1 \
         work summed across shards and front (grows with shards when replicated, flat \
         when hybrid); stage1_ratio is the shared streaming automaton's Stage-1 time over \
         the per-pattern DOM front's at {queries} queries (single engine, identical output; \
         must stay <= 0.7); every row's matches must be nonzero — the workload joins \
         fields with themselves, so cross-document joins fire; absolute numbers vary by \
         machine — only the cross-topology ratios at equal shard counts are comparable \
         across runs\",\n",
    ));
    out.push_str("  \"series\": [\n");
    let entries: Vec<String> = series
        .iter()
        .map(|(mode, topology, shards, run)| {
            format!(
                "    {{\"mode\": \"{mode}\", \"topology\": \"{topology}\", \"shards\": {shards}, \
                 \"docs_per_sec\": {:.1}, \"parse_ms\": {:.3}, \"join_ms\": {:.3}, \
                 \"pipeline_stalls\": {}, \"matches\": {}}}",
                run.wall_throughput,
                run.parse_time.as_secs_f64() * 1e3,
                run.join_time.as_secs_f64() * 1e3,
                run.pipeline_stalls,
                run.matches,
            )
        })
        .collect();
    out.push_str(&entries.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}
