//! Figure 13: total conjunctive-query processing time vs. the Zipf parameter,
//! complex (3-level) document schema (1000 queries, K=4).
//!
//! Paper shape: like Figure 10, but the effect on Sequential is larger
//! because complex-schema queries shrink more as the parameter grows, while
//! MMQJP's template count stays roughly constant (around 20).

use mmqjp_bench::{
    complex_workload, figure_header, fmt_ms, print_table, run_two_document_benchmark, MODES,
};
use mmqjp_workload::Defaults;

pub fn main() {
    figure_header(
        "Figure 13",
        "complex schema — join time vs Zipf parameter (1000 queries, K=4)",
    );
    let columns: Vec<String> = MODES.iter().map(|m| m.label().to_owned()).collect();
    let mut rows = Vec::new();
    for zipf in [0.0f64, 0.4, 0.8, 1.2, 1.6] {
        let (queries, d1, d2) = complex_workload(
            Defaults::NUM_QUERIES,
            Defaults::COMPLEX_BRANCHING,
            Defaults::COMPLEX_MAX_VJ,
            zipf,
            13,
        );
        let mut values = Vec::new();
        let mut templates = 0;
        for mode in MODES {
            let run = run_two_document_benchmark(mode, &queries, d1.clone(), d2.clone());
            templates = templates.max(run.templates);
            values.push(fmt_ms(run.join_time));
        }
        rows.push((format!("Zipf {zipf:.1} ({templates} templates)"), values));
    }
    print_table("Figure 13", "Zipf parameter", &columns, &rows);
}
