//! Table 3: number of query templates as a function of the number of value
//! joins per query, for the flat (2-level) and complex (3-level, branching 4)
//! document schemas.
//!
//! Paper values — flat: 1, 3, 6, 16; complex: 1, 3, 16, < 230.

use mmqjp_bench::{figure_header, print_table, scale};
use mmqjp_workload::BenchScale;
use mmqjp_xscl::enumerate::{count_complex_templates, count_flat_templates};

pub fn main() {
    figure_header(
        "Table 3",
        "number of query templates vs. number of value joins per query",
    );
    let max_k = match scale() {
        BenchScale::Smoke => 3,
        _ => 4,
    };
    let columns = vec![
        "#QT (flat schema)".to_owned(),
        "#QT (complex schema)".to_owned(),
    ];
    let mut rows = Vec::new();
    for k in 1..=max_k {
        let flat = count_flat_templates(k);
        let complex = count_complex_templates(k, 4);
        rows.push((
            format!("{k} value joins"),
            vec![flat.to_string(), complex.to_string()],
        ));
    }
    print_table("Table 3", "#value joins", &columns, &rows);
    println!("\npaper reference — flat: 1, 3, 6, 16; complex: 1, 3, 16, <230");
}
