//! Figure 19 (beyond the paper): steady-state throughput under online
//! subscription churn.
//!
//! Replays a Poisson subscribe/unsubscribe mix interleaved with the
//! windowed RSS stream: for every document, ~0.25 subscriptions arrive and
//! ~0.25 depart, so the live population stays flat while the *cumulative*
//! number of lifecycle events grows with the stream. Two stream lengths are
//! swept, the second 10× the first.
//!
//! Expected shape: steady-state docs/s stays **flat** (≤1.1× degradation)
//! on the 10×-longer stream, because `unregister_query` is O(the departing
//! query's footprint) — RT tuples removed in place, refcounted pattern
//! drops, no registry rebuild. The final columns contrast the live
//! population against the append-only population (the same script with
//! unsubscribes ignored — what an engine without a query lifecycle would
//! accumulate): live queries/templates/patterns plateau where the
//! append-only engine grows linearly with stream length.

use mmqjp_bench::{figure_header, run_subscription_churn_benchmark, scale};
use mmqjp_core::ProcessingMode;

pub fn main() {
    figure_header(
        "Figure 19",
        "subscription churn — steady-state throughput and state plateau vs stream length",
    );
    let scale = scale();
    let lengths = scale.subscription_churn_lengths();
    let initial = scale.subscription_churn_queries();
    println!(
        "{initial} initial queries, Poisson subscribe/unsubscribe at 0.25/doc, \
         windows 40/120/400, prune_state_by_window=on"
    );

    for mode in [ProcessingMode::MmqjpViewMat, ProcessingMode::Mmqjp] {
        println!("\n=== Figure 19 — {} ===", mode.label());
        println!(
            "{:>12}  {:>18}  {:>9}  {:>11}  {:>11}  {:>12}  {:>12}  {:>12}",
            "stream",
            "steady docs/s",
            "matches",
            "registered",
            "live",
            "tmpl retired",
            "pat dropped",
            "append-only"
        );
        let mut baseline = None;
        for &items in &lengths {
            let run = run_subscription_churn_benchmark(mode, initial, items, true);
            let append_only = run_subscription_churn_benchmark(mode, initial, items, false);
            let base = *baseline.get_or_insert(run.steady_throughput);
            let vs_base = if base > 0.0 {
                run.steady_throughput / base
            } else {
                0.0
            };
            println!(
                "{:>12}  {:>18}  {:>9}  {:>11}  {:>11}  {:>12}  {:>12}  {:>12}",
                format!("{items} docs"),
                format!("{:.0} ({:.2}x)", run.steady_throughput, vs_base),
                run.matches,
                run.total_registered,
                format!(
                    "{}q/{}t/{}p",
                    run.stats.queries_registered, run.stats.templates, run.stats.distinct_patterns
                ),
                run.stats.templates_retired,
                run.stats.patterns_dropped,
                format!(
                    "{}q/{}t/{}p",
                    append_only.stats.queries_registered,
                    append_only.stats.templates,
                    append_only.stats.distinct_patterns
                ),
            );
        }
    }
}
