//! Figure 14: view-materialization breakdown on the simple document schema.
//!
//! The paper compares MMQJP without view materialization against MMQJP with
//! the `Rvj` / `RL` / `RR` intermediates materialized, at 100 000 registered
//! queries, and breaks the total time into computing `Rvj`, `RL`, `RR` and
//! evaluating the per-template conjunctive queries.
//!
//! Paper shape: materialization reduces the total time; on the simple schema
//! (6 templates) the benefit is modest compared with the complex schema
//! (Figure 15).

use mmqjp_bench::{
    figure_header, flat_workload, fmt_ms, print_table, run_two_document_benchmark, scale,
};
use mmqjp_core::ProcessingMode;
use mmqjp_workload::Defaults;

pub fn main() {
    figure_header(
        "Figure 14",
        "view materialization breakdown — simple schema",
    );
    let num_queries = scale().viewmat_queries();
    println!("queries: {num_queries}");
    let (queries, d1, d2) = flat_workload(num_queries, Defaults::SIMPLE_LEAVES, Defaults::ZIPF, 14);

    let columns = vec![
        "computing Rvj".to_owned(),
        "computing RL".to_owned(),
        "computing RR".to_owned(),
        "conjunctive query".to_owned(),
        "total".to_owned(),
    ];
    let mut rows = Vec::new();
    for (label, mode) in [
        ("MMQJP", ProcessingMode::Mmqjp),
        ("MMQJP, View Materialization", ProcessingMode::MmqjpViewMat),
    ] {
        let run = run_two_document_benchmark(mode, &queries, d1.clone(), d2.clone());
        let t = run.timings;
        rows.push((
            label.to_owned(),
            vec![
                fmt_ms(t.compute_rvj),
                fmt_ms(t.compute_rl),
                fmt_ms(t.compute_rr),
                fmt_ms(t.conjunctive),
                fmt_ms(t.stage2_join_time()),
            ],
        ));
    }
    print_table("Figure 14", "strategy", &columns, &rows);
}
