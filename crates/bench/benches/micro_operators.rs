//! Criterion micro-benchmarks of the performance-critical building blocks:
//! relational hash joins, tree-pattern matching, witness construction,
//! template insertion and single-document engine processing.
//!
//! These are not paper figures; they guard against regressions in the
//! substrate the figures are built on.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mmqjp_core::{EngineConfig, MmqjpEngine};
use mmqjp_relational::{
    ops, Atom, ConjunctiveQuery, Database, ExecScratch, PhysicalPlan, PlanInput, Relation, Schema,
    Term, Value,
};
use mmqjp_workload::{FlatSchemaWorkload, RssQueryGenerator, RssStreamConfig, RssStreamGenerator};
use mmqjp_xpath::{parse_pattern, PatternMatcher};
use mmqjp_xscl::{normalize_query, JoinGraph, ReducedGraph, TemplateCatalog};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_hash_join(c: &mut Criterion) {
    let mut left = Relation::new(Schema::new(["k", "x"]));
    let mut right = Relation::new(Schema::new(["k", "y"]));
    for i in 0..2000i64 {
        left.push_values(vec![Value::Int(i % 200), Value::Int(i)])
            .unwrap();
        right
            .push_values(vec![Value::Int(i % 300), Value::Int(i)])
            .unwrap();
    }
    c.bench_function("relational/hash_join_2k_x_2k", |b| {
        b.iter(|| ops::hash_join(&left, &right, &["k"], &["k"]).unwrap().len());
    });
}

fn bench_rowid_vs_materializing_join(c: &mut Criterion) {
    // The late-materialization contrast on one conjunctive join:
    // `out(x, y) :- l(k, x), r(k, y)`. The materializing legs clone binding
    // relations and combined tuples per call (ops::hash_join and the
    // interpreting Database::evaluate); the row-id leg executes the compiled
    // PhysicalPlan over borrowed inputs with pooled scratch, materializing
    // only the final output tuples.
    let mut left = Relation::new(Schema::new(["k", "x"]));
    let mut right = Relation::new(Schema::new(["k", "y"]));
    for i in 0..2000i64 {
        left.push_values(vec![Value::Int(i % 200), Value::Int(i)])
            .unwrap();
        right
            .push_values(vec![Value::Int(i % 300), Value::Int(i)])
            .unwrap();
    }
    let cq = ConjunctiveQuery::new(["x", "y"])
        .atom(Atom::new("l", [Term::var("k"), Term::var("x")]))
        .atom(Atom::new("r", [Term::var("k"), Term::var("y")]));
    let mut db = Database::new();
    db.register("l", left.clone());
    db.register("r", right.clone());

    c.bench_function("relational/materializing_join_interpreted_2k", |b| {
        b.iter(|| db.evaluate(&cq).unwrap().len());
    });

    let plan = PhysicalPlan::compile(&cq, |_| Some(2)).unwrap();
    let inputs: Vec<PlanInput<'_>> = plan
        .relations()
        .iter()
        .map(|name| {
            if name == "l" {
                PlanInput::from(&left)
            } else {
                PlanInput::from(&right)
            }
        })
        .collect();
    let mut scratch = ExecScratch::new();
    c.bench_function("relational/rowid_join_compiled_2k", |b| {
        b.iter(|| plan.execute(&inputs, &mut scratch, false).len());
    });
}

fn bench_pattern_matching(c: &mut Criterion) {
    let item = RssStreamGenerator::new(RssStreamConfig {
        items: 1,
        ..RssStreamConfig::default()
    })
    .documents()
    .pop()
    .unwrap();
    let pattern =
        parse_pattern("S//item->r[.//title->t][.//channel_url->u][.//description->d]").unwrap();
    let matcher = PatternMatcher::new(&pattern);
    c.bench_function("xpath/witnesses_feed_item", |b| {
        b.iter(|| matcher.witnesses(&item).len());
    });
    c.bench_function("xpath/edge_bindings_feed_item", |b| {
        b.iter(|| matcher.all_edge_bindings(&item).len());
    });
}

fn bench_template_insertion(c: &mut Criterion) {
    let w = FlatSchemaWorkload::new(6, 0.8);
    let mut rng = StdRng::seed_from_u64(5);
    let graphs: Vec<ReducedGraph> = w
        .generate_queries(200, &mut rng)
        .into_iter()
        .map(|q| {
            let n = normalize_query(&q).unwrap().query;
            ReducedGraph::from_join_graph(&JoinGraph::from_query(&n).unwrap())
        })
        .collect();
    c.bench_function("xscl/template_catalog_insert_200", |b| {
        b.iter_batched(
            TemplateCatalog::new,
            |mut catalog| {
                for g in &graphs {
                    catalog.insert(g);
                }
                catalog.len()
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_query_registration(c: &mut Criterion) {
    let gen = RssQueryGenerator::new(0.8);
    let mut rng = StdRng::seed_from_u64(6);
    let queries = gen.generate_queries(500, &mut rng);
    c.bench_function("core/register_500_rss_queries", |b| {
        b.iter_batched(
            || MmqjpEngine::new(EngineConfig::mmqjp().with_retain_documents(false)),
            |mut engine| {
                for q in &queries {
                    engine.register_query(q.clone()).unwrap();
                }
                engine.num_templates()
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_document_processing(c: &mut Criterion) {
    let gen = RssQueryGenerator::new(0.8);
    let mut rng = StdRng::seed_from_u64(7);
    let queries = gen.generate_queries(300, &mut rng);
    let docs = RssStreamGenerator::new(RssStreamConfig {
        items: 40,
        title_vocabulary: 20,
        ..RssStreamConfig::default()
    })
    .documents();

    c.bench_function("core/process_document_viewmat_300_queries", |b| {
        b.iter_batched(
            || {
                let mut engine =
                    MmqjpEngine::new(EngineConfig::mmqjp_view_mat().with_retain_documents(false));
                for q in &queries {
                    engine.register_query(q.clone()).unwrap();
                }
                // Pre-load part of the stream as join state.
                for d in docs[..30].iter().cloned() {
                    engine.process_document(d).unwrap();
                }
                (engine, docs[30].clone())
            },
            |(mut engine, doc)| engine.process_document(doc).unwrap().len(),
            BatchSize::LargeInput,
        );
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_hash_join,
        bench_rowid_vs_materializing_join,
        bench_pattern_matching,
        bench_template_insertion,
        bench_query_registration,
        bench_document_processing
);
criterion_main!(benches);
