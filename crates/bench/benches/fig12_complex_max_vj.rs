//! Figure 12: total conjunctive-query processing time vs. the maximum number
//! of value joins per query, complex (3-level) document schema (1000
//! queries).
//!
//! Paper shape: MMQJP's cost grows faster than Sequential's with K because
//! the number of templates grows with K (the paper reports 2, 6, 20, 39
//! templates for K = 2..5).

use mmqjp_bench::{
    complex_workload, figure_header, fmt_ms, print_table, run_two_document_benchmark, MODES,
};
use mmqjp_workload::Defaults;

pub fn main() {
    figure_header(
        "Figure 12",
        "complex schema — join time vs maximum value joins per query (1000 queries)",
    );
    let columns: Vec<String> = MODES.iter().map(|m| m.label().to_owned()).collect();
    let mut rows = Vec::new();
    for max_vj in [2usize, 3, 4, 5, 6] {
        let (queries, d1, d2) = complex_workload(
            Defaults::NUM_QUERIES,
            Defaults::COMPLEX_BRANCHING,
            max_vj,
            Defaults::ZIPF,
            12,
        );
        let mut values = Vec::new();
        let mut templates = 0;
        for mode in MODES {
            let run = run_two_document_benchmark(mode, &queries, d1.clone(), d2.clone());
            templates = templates.max(run.templates);
            values.push(fmt_ms(run.join_time));
        }
        rows.push((format!("K={max_vj} ({templates} templates)"), values));
    }
    print_table("Figure 12", "max value joins per query", &columns, &rows);
}
