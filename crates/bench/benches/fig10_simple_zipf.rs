//! Figure 10: total conjunctive-query processing time vs. the Zipf parameter
//! governing the number of value joins per query, simple schema (1000
//! queries, 6 leaves).
//!
//! Paper shape: MMQJP is largely insensitive to the parameter (the template
//! set stays the same); Sequential becomes about 2x faster as the parameter
//! grows because the average query gets simpler.

use mmqjp_bench::{
    figure_header, flat_workload, fmt_ms, print_table, run_two_document_benchmark, MODES,
};
use mmqjp_workload::Defaults;

pub fn main() {
    figure_header(
        "Figure 10",
        "simple schema — join time vs Zipf parameter (1000 queries, 6 leaves)",
    );
    let columns: Vec<String> = MODES.iter().map(|m| m.label().to_owned()).collect();
    let mut rows = Vec::new();
    for zipf in [0.0f64, 0.4, 0.8, 1.2, 1.6] {
        let (queries, d1, d2) =
            flat_workload(Defaults::NUM_QUERIES, Defaults::SIMPLE_LEAVES, zipf, 10);
        let mut values = Vec::new();
        for mode in MODES {
            let run = run_two_document_benchmark(mode, &queries, d1.clone(), d2.clone());
            values.push(fmt_ms(run.join_time));
        }
        rows.push((format!("Zipf {zipf:.1}"), values));
    }
    print_table("Figure 10", "Zipf parameter", &columns, &rows);
}
