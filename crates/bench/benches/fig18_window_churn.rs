//! Figure 18 (beyond the paper): sustained throughput under window churn.
//!
//! Replays the churn-heavy windowed workload (finite 40/120/400 windows,
//! small value vocabularies) at doubling stream lengths, with window pruning
//! and document retention enabled, and reports the *steady-state* docs/s —
//! wall-clock throughput over the second half of the stream, after the
//! windows have filled.
//!
//! Expected shape: steady-state throughput stays **flat** as the stream
//! doubles, because expiry is a whole-bucket drop costing O(expired rows)
//! and the view cache is only invalidated for the string values that
//! actually lost rows. The seed implementation's retain-and-rebuild pruning
//! (O(total state) per batch plus a full view-cache clear) degrades down
//! this sweep instead. The eviction counters from `EngineStats` are printed
//! per run so the churn is visible: evicted rows scale with the stream while
//! resident state does not.

use mmqjp_bench::{figure_header, run_churn_benchmark, scale};
use mmqjp_core::ProcessingMode;

pub fn main() {
    figure_header(
        "Figure 18",
        "windowed churn stream — steady-state throughput vs stream length",
    );
    let scale = scale();
    let lengths = scale.churn_stream_lengths();
    let num_queries = scale.churn_queries();
    println!(
        "{num_queries} queries over windows 40/120/400, prune_state_by_window=on, \
         retain_documents=on"
    );

    for mode in [ProcessingMode::MmqjpViewMat, ProcessingMode::Mmqjp] {
        println!("\n=== Figure 18 — {} ===", mode.label());
        println!(
            "{:>14}  {:>18}  {:>10}  {:>12}  {:>12}  {:>10}  {:>10}",
            "stream",
            "steady docs/s",
            "matches",
            "rows evicted",
            "docs evicted",
            "resident",
            "slices inv"
        );
        let mut baseline = None;
        for &items in &lengths {
            let run = run_churn_benchmark(mode, num_queries, items);
            let base = *baseline.get_or_insert(run.steady_throughput);
            let vs_base = if base > 0.0 {
                run.steady_throughput / base
            } else {
                0.0
            };
            println!(
                "{:>14}  {:>18}  {:>10}  {:>12}  {:>12}  {:>10}  {:>10}",
                format!("{items} docs"),
                format!("{:.0} ({:.2}x)", run.steady_throughput, vs_base),
                run.matches,
                run.stats.state_rows_evicted,
                run.stats.docs_evicted,
                run.stats.rdoc_tuples + run.stats.rbin_tuples,
                run.stats.view_slices_invalidated,
            );
        }
    }
}
