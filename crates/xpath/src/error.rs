//! Error types for pattern parsing and evaluation.

use std::fmt;

/// Convenience result alias used throughout the crate.
pub type XPathResult<T> = Result<T, XPathError>;

/// Errors produced while parsing or evaluating tree patterns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XPathError {
    /// The pattern text ended unexpectedly.
    UnexpectedEnd {
        /// What was being parsed.
        context: &'static str,
    },
    /// An unexpected character in the pattern text.
    UnexpectedChar {
        /// Byte offset of the character.
        offset: usize,
        /// The character found.
        found: char,
        /// What was expected instead.
        expected: &'static str,
    },
    /// A variable is bound more than once within a single pattern.
    DuplicateVariable {
        /// The duplicated variable name.
        name: String,
    },
    /// The pattern has no steps (e.g. just a stream name).
    EmptyPattern,
    /// A referenced variable does not exist in the pattern.
    UnknownVariable {
        /// The missing variable name.
        name: String,
    },
}

impl fmt::Display for XPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XPathError::UnexpectedEnd { context } => {
                write!(f, "pattern ended unexpectedly while parsing {context}")
            }
            XPathError::UnexpectedChar {
                offset,
                found,
                expected,
            } => write!(
                f,
                "unexpected character {found:?} at offset {offset}: expected {expected}"
            ),
            XPathError::DuplicateVariable { name } => {
                write!(
                    f,
                    "variable `{name}` is bound more than once in the pattern"
                )
            }
            XPathError::EmptyPattern => write!(f, "pattern contains no steps"),
            XPathError::UnknownVariable { name } => {
                write!(f, "variable `{name}` is not bound in the pattern")
            }
        }
    }
}

impl std::error::Error for XPathError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(XPathError::UnexpectedEnd { context: "a step" }
            .to_string()
            .contains("a step"));
        assert!(XPathError::UnexpectedChar {
            offset: 4,
            found: '?',
            expected: "tag name"
        }
        .to_string()
        .contains("tag name"));
        assert!(XPathError::DuplicateVariable { name: "x1".into() }
            .to_string()
            .contains("x1"));
        assert!(!XPathError::EmptyPattern.to_string().is_empty());
        assert!(XPathError::UnknownVariable { name: "x9".into() }
            .to_string()
            .contains("x9"));
    }

    #[test]
    fn is_std_error() {
        fn check<E: std::error::Error>(_: &E) {}
        check(&XPathError::EmptyPattern);
    }
}
