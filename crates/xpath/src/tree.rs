//! Abstraction over element trees that tree patterns can be evaluated on.
//!
//! The matcher historically evaluated against a fully built
//! [`Document`]. The streaming front end needs the same algorithms over a
//! flat skeleton captured from a pull-parser event stream without building a
//! DOM, so everything the matcher touches is factored into [`ElementTree`]:
//! pre-order element ids, tags, attributes, parent links, ancestorship and
//! XPath string values. [`Document`] implements it trivially;
//! [`StreamSkeleton`](crate::StreamSkeleton) implements it from interval
//! arithmetic over pre-order ids.

use mmqjp_xml::{Document, NodeId};

/// Read access to an element tree with pre-order element ids `0..len`.
///
/// Implementations must assign ids in pre-order (a parent's id is smaller
/// than all ids in its subtree), which is what makes witness enumeration
/// order deterministic across implementations.
pub trait ElementTree {
    /// Number of elements; valid ids are `0..node_count`.
    fn node_count(&self) -> usize;
    /// The tag of an element.
    fn tag_of(&self, id: NodeId) -> &str;
    /// The value of an attribute of an element, if present.
    fn attribute_of(&self, id: NodeId, name: &str) -> Option<&str>;
    /// The parent element (None for the root).
    fn parent_of(&self, id: NodeId) -> Option<NodeId>;
    /// `true` if `ancestor` is a *proper* ancestor of `descendant`.
    fn is_ancestor_of(&self, ancestor: NodeId, descendant: NodeId) -> bool;
    /// The XPath string value: concatenation of all text in the subtree, in
    /// document order.
    fn string_value_of(&self, id: NodeId) -> String;

    /// All element ids in pre-order.
    fn element_ids(&self) -> std::iter::Map<std::ops::Range<u32>, fn(u32) -> NodeId> {
        (0..self.node_count() as u32).map(NodeId::from_raw)
    }
}

impl ElementTree for Document {
    fn node_count(&self) -> usize {
        self.len()
    }

    fn tag_of(&self, id: NodeId) -> &str {
        self.node(id).tag()
    }

    fn attribute_of(&self, id: NodeId, name: &str) -> Option<&str> {
        self.node(id).attribute(name)
    }

    fn parent_of(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).parent()
    }

    fn is_ancestor_of(&self, ancestor: NodeId, descendant: NodeId) -> bool {
        self.is_ancestor(ancestor, descendant)
    }

    fn string_value_of(&self, id: NodeId) -> String {
        self.string_value(id)
    }
}

/// A flat element skeleton captured from a streaming parse: everything the
/// matcher needs to finish pattern evaluation and resolve value-join string
/// values, without building a [`Document`].
///
/// Elements are numbered in pre-order as they open, so the ids coincide with
/// the [`NodeId`]s a DOM parse of the same input would assign. Ancestorship
/// is interval arithmetic (`a` is a proper ancestor of `d` iff
/// `a < d < subtree_end(a)`), and the XPath string value of an element is the
/// concatenation of the per-element text runs over its subtree id range —
/// the same document-order concatenation [`Document::string_value`] does.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamSkeleton {
    tags: Vec<String>,
    /// Parent id + 1; 0 marks the root.
    parents: Vec<u32>,
    /// Exclusive end of each element's subtree id range (patched on close).
    subtree_end: Vec<u32>,
    attributes: Vec<Vec<(String, String)>>,
    /// Concatenated text runs owned directly by each element.
    text: Vec<String>,
    /// Ids of currently open elements.
    open_stack: Vec<u32>,
}

impl StreamSkeleton {
    /// Create an empty skeleton.
    pub fn new() -> Self {
        StreamSkeleton::default()
    }

    /// Record an element opening; returns its pre-order id.
    pub fn open_element(&mut self, tag: String, attributes: Vec<(String, String)>) -> NodeId {
        let id = self.tags.len() as u32;
        let parent = self.open_stack.last().map_or(0, |&p| p + 1);
        self.tags.push(tag);
        self.parents.push(parent);
        self.subtree_end.push(id + 1);
        self.attributes.push(attributes);
        self.text.push(String::new());
        self.open_stack.push(id);
        NodeId::from_raw(id)
    }

    /// Record a text run owned by the innermost open element.
    pub fn append_text(&mut self, text: &str) {
        if let Some(&id) = self.open_stack.last() {
            self.text[id as usize].push_str(text);
        }
    }

    /// Record the innermost open element closing.
    pub fn close_element(&mut self) {
        if let Some(id) = self.open_stack.pop() {
            self.subtree_end[id as usize] = self.tags.len() as u32;
        }
    }

    /// `true` when no elements have been recorded.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Number of elements recorded so far.
    pub fn len(&self) -> usize {
        self.tags.len()
    }
}

impl ElementTree for StreamSkeleton {
    fn node_count(&self) -> usize {
        self.tags.len()
    }

    fn tag_of(&self, id: NodeId) -> &str {
        &self.tags[id.index()]
    }

    fn attribute_of(&self, id: NodeId, name: &str) -> Option<&str> {
        self.attributes[id.index()]
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn parent_of(&self, id: NodeId) -> Option<NodeId> {
        match self.parents[id.index()] {
            0 => None,
            p => Some(NodeId::from_raw(p - 1)),
        }
    }

    fn is_ancestor_of(&self, ancestor: NodeId, descendant: NodeId) -> bool {
        ancestor.raw() < descendant.raw() && descendant.raw() < self.subtree_end[ancestor.index()]
    }

    fn string_value_of(&self, id: NodeId) -> String {
        let end = self.subtree_end[id.index()] as usize;
        let mut out = String::new();
        for t in &self.text[id.index()..end] {
            out.push_str(t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmqjp_xml::parse_document;

    #[test]
    fn document_implements_element_tree() {
        let d = parse_document("<a x=\"1\"><b>t</b><c>u</c></a>").unwrap();
        assert_eq!(d.node_count(), 3);
        assert_eq!(d.tag_of(NodeId::ROOT), "a");
        assert_eq!(d.attribute_of(NodeId::ROOT, "x"), Some("1"));
        assert_eq!(d.attribute_of(NodeId::ROOT, "y"), None);
        assert_eq!(d.parent_of(NodeId::from_raw(1)), Some(NodeId::ROOT));
        assert!(d.is_ancestor_of(NodeId::ROOT, NodeId::from_raw(2)));
        assert!(!d.is_ancestor_of(NodeId::from_raw(1), NodeId::from_raw(2)));
        assert_eq!(d.string_value_of(NodeId::ROOT), "tu");
        assert_eq!(d.element_ids().count(), 3);
    }

    #[test]
    fn skeleton_agrees_with_document_on_mixed_content() {
        // <a q="1">x<b>y</b>z<c/></a>
        let doc = parse_document(r#"<a q="1">x<b>y</b>z<c/></a>"#).unwrap();
        let mut s = StreamSkeleton::new();
        s.open_element("a".into(), vec![("q".into(), "1".into())]);
        s.append_text("x");
        s.open_element("b".into(), Vec::new());
        s.append_text("y");
        s.close_element();
        s.append_text("z");
        s.open_element("c".into(), Vec::new());
        s.close_element();
        s.close_element();

        assert_eq!(s.len(), doc.node_count());
        assert!(!s.is_empty());
        for id in doc.element_ids() {
            assert_eq!(s.tag_of(id), doc.tag_of(id));
            assert_eq!(s.parent_of(id), doc.parent_of(id));
            assert_eq!(s.string_value_of(id), doc.string_value_of(id));
            assert_eq!(s.attribute_of(id, "q"), doc.attribute_of(id, "q"));
            for other in doc.element_ids() {
                assert_eq!(
                    s.is_ancestor_of(id, other),
                    doc.is_ancestor_of(id, other),
                    "ancestorship diverged for ({id}, {other})"
                );
            }
        }
    }
}
