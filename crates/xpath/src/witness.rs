//! Witness types: the output of Stage-1 XPath evaluation.

use crate::pattern::{NodeTest, PatternNodeId, TreePattern};
use crate::tree::ElementTree;
use mmqjp_xml::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A complete witness: one binding of every variable of a tree pattern to a
/// document node, such that all structural constraints of the pattern hold.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Witness {
    bindings: Vec<(String, NodeId)>,
}

impl Witness {
    /// Create a witness from `(variable, node)` bindings. Bindings are sorted
    /// by variable name so witnesses compare structurally.
    pub fn new(mut bindings: Vec<(String, NodeId)>) -> Self {
        bindings.sort();
        Witness { bindings }
    }

    /// The node bound to `variable`, if present.
    pub fn get(&self, variable: &str) -> Option<NodeId> {
        self.bindings
            .iter()
            .find(|(v, _)| v == variable)
            .map(|(_, n)| *n)
    }

    /// All bindings, sorted by variable name.
    pub fn bindings(&self) -> &[(String, NodeId)] {
        &self.bindings
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// `true` when no variables are bound.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }
}

impl fmt::Display for Witness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .bindings
            .iter()
            .map(|(v, n)| format!("{v}={n}"))
            .collect();
        write!(f, "{{{}}}", parts.join(", "))
    }
}

/// A pair of variable bindings for one edge of the (possibly reduced)
/// variable tree pattern — the unit stored in the Join Processor's binary
/// witness relations `RbinW` / `Rbin`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeBinding {
    /// Variable bound at the ancestor end of the edge.
    pub ancestor_var: String,
    /// Variable bound at the descendant end of the edge.
    pub descendant_var: String,
    /// Document node bound to the ancestor variable.
    pub ancestor: NodeId,
    /// Document node bound to the descendant variable.
    pub descendant: NodeId,
}

impl fmt::Display for EdgeBinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({}={}, {}={})",
            self.ancestor_var, self.ancestor, self.descendant_var, self.descendant
        )
    }
}

/// All witnesses of one pattern over one document, plus the document they
/// were produced from. Convenience container used by tests and the
/// sequential baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WitnessSet {
    /// Signature of the pattern that produced these witnesses.
    pub pattern_signature: String,
    /// The witnesses.
    pub witnesses: Vec<Witness>,
}

impl WitnessSet {
    /// Number of witnesses.
    pub fn len(&self) -> usize {
        self.witnesses.len()
    }

    /// `true` when the pattern did not match the document at all.
    pub fn is_empty(&self) -> bool {
        self.witnesses.is_empty()
    }
}

/// The string value a binding contributes to value joins.
///
/// For ordinary element steps this is the XPath string value of the bound
/// node. For attribute steps (`@name`) — which are represented by binding the
/// carrying element — it is the attribute's value.
pub fn binding_string_value<T: ElementTree + ?Sized>(
    doc: &T,
    pattern: &TreePattern,
    pattern_node: PatternNodeId,
    node: NodeId,
) -> String {
    match pattern.node(pattern_node).test() {
        NodeTest::Attribute(name) => doc
            .attribute_of(node, name)
            .map(|s| s.to_owned())
            .unwrap_or_default(),
        _ => doc.string_value_of(node),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_pattern;
    use mmqjp_xml::DocumentBuilder;

    #[test]
    fn witness_accessors() {
        let w = Witness::new(vec![
            ("x2".into(), NodeId::from_raw(5)),
            ("x1".into(), NodeId::from_raw(0)),
        ]);
        assert_eq!(w.len(), 2);
        assert!(!w.is_empty());
        assert_eq!(w.get("x1"), Some(NodeId::from_raw(0)));
        assert_eq!(w.get("x2"), Some(NodeId::from_raw(5)));
        assert_eq!(w.get("x3"), None);
        // Bindings are sorted by variable name.
        assert_eq!(w.bindings()[0].0, "x1");
        assert!(w.to_string().contains("x1=n0"));
    }

    #[test]
    fn witness_equality_is_order_insensitive() {
        let a = Witness::new(vec![
            ("b".into(), NodeId::from_raw(2)),
            ("a".into(), NodeId::from_raw(1)),
        ]);
        let b = Witness::new(vec![
            ("a".into(), NodeId::from_raw(1)),
            ("b".into(), NodeId::from_raw(2)),
        ]);
        assert_eq!(a, b);
    }

    #[test]
    fn edge_binding_display() {
        let e = EdgeBinding {
            ancestor_var: "x1".into(),
            descendant_var: "x2".into(),
            ancestor: NodeId::from_raw(0),
            descendant: NodeId::from_raw(2),
        };
        assert_eq!(e.to_string(), "(x1=n0, x2=n2)");
    }

    #[test]
    fn witness_set_len() {
        let ws = WitnessSet {
            pattern_signature: "sig".into(),
            witnesses: vec![Witness::new(vec![("x".into(), NodeId::ROOT)])],
        };
        assert_eq!(ws.len(), 1);
        assert!(!ws.is_empty());
    }

    #[test]
    fn binding_string_value_element_and_attribute() {
        let mut b = DocumentBuilder::new("link");
        b.attribute("href", "http://example.org");
        b.text("anchor text");
        let doc = b.finish();

        let elem_pattern = parse_pattern("//link->l").unwrap();
        let v = binding_string_value(&doc, &elem_pattern, PatternNodeId::ROOT, NodeId::ROOT);
        assert_eq!(v, "anchor text");

        let attr_pattern = parse_pattern("//link[./@href->h]").unwrap();
        let attr_node = attr_pattern.variable_node("h").unwrap();
        let v = binding_string_value(&doc, &attr_pattern, attr_node, NodeId::ROOT);
        assert_eq!(v, "http://example.org");
    }
}
