//! The shared streaming pattern automaton.
//!
//! [`PatternAutomaton`] compiles *all* registered tree patterns into one
//! flat slot table and evaluates every pattern's bottom-up satisfiability
//! pass in a **single** document traversal, driven by open/close element
//! events — either replayed from a [`Document`] or pulled straight from XML
//! text ([`PullParser`]) with no DOM in between. Per-document work is one
//! pass over the elements plus per-element bit operations over the slot
//! table, independent of how many queries registered each pattern.
//!
//! Every `(pattern, pattern node)` pair is a *slot*. Slots of one pattern
//! are contiguous and keep the pattern's node-id order, so a pattern child's
//! slot is always greater than its parent's; evaluating slots in descending
//! order at element close therefore sees every pattern child finalized
//! first, exactly mirroring the reverse-id iteration of the two-pass
//! matcher. Each open element carries three bitsets:
//!
//! * its *test mask* (which slots' node tests the element passes, computed
//!   once at open from a tag-dispatch table plus wildcard and attribute
//!   slots),
//! * `child_sat` — the OR of the final satisfiability bits of its direct
//!   children (checked for child-axis pattern edges),
//! * `desc_sat` — the OR over all strict descendants (checked for
//!   descendant-axis edges).
//!
//! Attribute steps bind the element carrying the attribute, so they are
//! dependencies on the *same* element's bits. Pattern roots with a child
//! axis only ever bind the document root element; their bits are cleared for
//! every other element. The result of a pass ([`SharedPass`]) holds, for
//! each pattern, the same satisfiability sets (ascending element id) the
//! two-pass matcher computes — the top-down usefulness pass and
//! witness/edge-binding enumeration are then shared with the DOM path via
//! [`PatternMatcher::useful_from_sat`] and friends, which is what makes the
//! streaming front end byte-identical to the reference evaluator.

use crate::index::PatternId;
use crate::pattern::{Axis, NodeTest, TreePattern};
use crate::tree::StreamSkeleton;
use mmqjp_xml::{Document, NodeId, PullParser, XmlEvent, XmlResult};
use std::collections::HashMap;

#[cfg(doc)]
use crate::matcher::PatternMatcher;

/// How a slot depends on one of its pattern children.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DepKind {
    /// Attribute step: must hold at the same element.
    SameElement,
    /// Child axis: must hold at some direct child element.
    Child,
    /// Descendant axis: must hold at some strict descendant element.
    Descendant,
}

/// One pattern's slot range in the automaton.
#[derive(Debug, Clone)]
struct PatternEntry {
    key: PatternId,
    base: u32,
    len: u32,
}

/// All registered tree patterns compiled into one event-driven evaluator.
#[derive(Debug, Clone, Default)]
pub struct PatternAutomaton {
    patterns: Vec<PatternEntry>,
    slot_count: usize,
    /// Bitset words per element row.
    words: usize,
    /// Tag dispatch: slots whose node test is this tag.
    by_tag: HashMap<String, Vec<u32>>,
    /// Mask of wildcard slots (pass every element's test).
    wildcard_mask: Vec<u64>,
    /// Attribute-test slots with the attribute name to probe.
    attr_slots: Vec<(u32, String)>,
    /// Mask that *keeps* everything except child-axis pattern roots; ANDed
    /// into every non-root element's bits.
    non_root_keep: Vec<u64>,
    /// Per slot: dependencies on pattern children (child slot, kind).
    deps: Vec<Vec<(u32, DepKind)>>,
    /// Per slot: the parent slot and the axis kind linking them (`None` for
    /// pattern roots) — the top-down usefulness pass walks these upward.
    up: Vec<Option<(u32, DepKind)>>,
}

impl PatternAutomaton {
    /// Compile an automaton over `(id, pattern)` pairs. Slot layout follows
    /// the iteration order, so callers should pass patterns in a stable
    /// order (e.g. ascending [`PatternId`], as
    /// [`PatternIndex::patterns`](crate::PatternIndex::patterns) does).
    pub fn new<'p>(patterns: impl IntoIterator<Item = (PatternId, &'p TreePattern)>) -> Self {
        let mut a = PatternAutomaton::default();
        let mut slots = 0u32;
        let mut compiled: Vec<(PatternId, &TreePattern, u32)> = Vec::new();
        for (key, pattern) in patterns {
            let base = slots;
            let len = pattern.len() as u32;
            slots += len;
            a.patterns.push(PatternEntry { key, base, len });
            compiled.push((key, pattern, base));
        }
        a.slot_count = slots as usize;
        a.words = a.slot_count.div_ceil(64);
        a.wildcard_mask = vec![0; a.words];
        a.non_root_keep = vec![u64::MAX; a.words];
        a.deps = vec![Vec::new(); a.slot_count];
        a.up = vec![None; a.slot_count];
        for (_, pattern, base) in compiled {
            for pnode in pattern.nodes() {
                let slot = base + pnode.id().raw();
                match pnode.test() {
                    NodeTest::Tag(t) => a.by_tag.entry(t.clone()).or_default().push(slot),
                    NodeTest::Wildcard => set_bit(&mut a.wildcard_mask, slot),
                    NodeTest::Attribute(name) => a.attr_slots.push((slot, name.clone())),
                }
                if pnode.parent().is_none() && pnode.axis() == Axis::Child {
                    clear_bit(&mut a.non_root_keep, slot);
                }
                for &c in pnode.children() {
                    let child = pattern.node(c);
                    let kind = match child.test() {
                        NodeTest::Attribute(_) => DepKind::SameElement,
                        _ => match child.axis() {
                            Axis::Child => DepKind::Child,
                            Axis::Descendant => DepKind::Descendant,
                        },
                    };
                    a.deps[slot as usize].push((base + c.raw(), kind));
                    a.up[(base + c.raw()) as usize] = Some((slot, kind));
                }
            }
        }
        a
    }

    /// Compile an automaton from a pattern index's live patterns.
    pub fn from_patterns<'p, I>(patterns: I) -> Self
    where
        I: IntoIterator<Item = (PatternId, &'p TreePattern)>,
    {
        PatternAutomaton::new(patterns)
    }

    /// Number of compiled patterns.
    pub fn pattern_count(&self) -> usize {
        self.patterns.len()
    }

    /// Begin a document pass over caller-provided scratch buffers (reused
    /// across documents to keep the hot path allocation-free).
    pub fn start<'a>(&'a self, scratch: &'a mut AutomatonScratch) -> AutomatonRun<'a> {
        scratch.reset(self.words);
        AutomatonRun {
            automaton: self,
            scratch,
        }
    }

    /// Evaluate all compiled patterns over a built document in one
    /// traversal, replaying its tree as open/close events.
    pub fn pass_over(&self, doc: &Document) -> SharedPass {
        let mut scratch = AutomatonScratch::default();
        self.pass_over_with(doc, &mut scratch)
    }

    /// [`pass_over`](Self::pass_over) with reusable scratch buffers.
    pub fn pass_over_with(&self, doc: &Document, scratch: &mut AutomatonScratch) -> SharedPass {
        let mut pass = SharedPass::default();
        self.pass_over_reusing(doc, scratch, &mut pass);
        pass
    }

    /// [`pass_over`](Self::pass_over) reusing both the scratch buffers and
    /// the result's own buffers — with a warm `pass`, a document pass
    /// performs no heap allocation beyond result-set growth.
    pub fn pass_over_reusing(
        &self,
        doc: &Document,
        scratch: &mut AutomatonScratch,
        pass: &mut SharedPass,
    ) {
        let mut run = self.start(scratch);
        if !doc.is_empty() {
            enum Step {
                Open(NodeId),
                Close,
            }
            let mut stack = vec![Step::Open(NodeId::ROOT)];
            while let Some(step) = stack.pop() {
                match step {
                    Step::Open(n) => {
                        let node = doc.node(n);
                        run.open(node.tag(), |name| node.attribute(name).is_some());
                        stack.push(Step::Close);
                        for &c in node.children().iter().rev() {
                            stack.push(Step::Open(c));
                        }
                    }
                    Step::Close => run.close(),
                }
            }
        }
        run.finish_into(pass);
    }

    /// Evaluate all compiled patterns directly over XML text via the pull
    /// parser — no DOM is built. Returns the captured [`StreamSkeleton`]
    /// (for witness enumeration and string-value resolution) alongside the
    /// per-pattern useful sets.
    pub fn pass_over_text(&self, xml: &str) -> XmlResult<(StreamSkeleton, SharedPass)> {
        let mut parser = PullParser::new(xml);
        let mut scratch = AutomatonScratch::default();
        let mut run = self.start(&mut scratch);
        let mut skel = StreamSkeleton::new();
        while let Some(ev) = parser.next_event()? {
            match ev {
                XmlEvent::StartElement { tag, attributes } => {
                    run.open(&tag, |name| attributes.iter().any(|(n, _)| n == name));
                    skel.open_element(tag, attributes);
                }
                XmlEvent::Text(text) => skel.append_text(&text),
                XmlEvent::EndElement { .. } => {
                    run.close();
                    skel.close_element();
                }
            }
        }
        Ok((skel, run.finish()))
    }
}

/// One open element's state during a pass.
#[derive(Debug, Default, Clone)]
struct Frame {
    element: u32,
    /// Test mask at open; becomes the final satisfiability bits at close.
    mask: Vec<u64>,
    /// OR of direct children's final bits.
    child_sat: Vec<u64>,
    /// OR over all strict descendants' final bits.
    desc_sat: Vec<u64>,
}

/// Reusable buffers for [`AutomatonRun`]s. One scratch serves any number of
/// sequential passes; reusing it across documents keeps the per-document
/// pass free of heap allocation (rows, frames and the parent table all keep
/// their capacity).
#[derive(Debug, Default, Clone)]
pub struct AutomatonScratch {
    frames: Vec<Frame>,
    /// Recycled frames (their vectors keep capacity across elements).
    spare: Vec<Frame>,
    /// Final satisfiability bits per element, `words` per row.
    sat_bits: Vec<u64>,
    /// Useful bits per element (filled by `finish`).
    useful_bits: Vec<u64>,
    /// OR of the useful rows of each element's strict ancestors.
    anc_bits: Vec<u64>,
    /// Per element: parent element id + 1 (`0` for the document root).
    parents: Vec<u32>,
    count: u32,
}

impl AutomatonScratch {
    fn reset(&mut self, _words: usize) {
        self.frames.clear();
        self.sat_bits.clear();
        self.useful_bits.clear();
        self.anc_bits.clear();
        self.parents.clear();
        self.count = 0;
    }
}

/// An in-progress document pass over a [`PatternAutomaton`].
#[derive(Debug)]
pub struct AutomatonRun<'a> {
    automaton: &'a PatternAutomaton,
    scratch: &'a mut AutomatonScratch,
}

impl AutomatonRun<'_> {
    /// Feed an element-open event. `has_attr` probes the element's
    /// attributes by name.
    pub fn open<F: Fn(&str) -> bool>(&mut self, tag: &str, has_attr: F) {
        let a = self.automaton;
        let s = &mut *self.scratch;
        let mut frame = s.spare.pop().unwrap_or_default();
        frame.element = s.count;
        frame.mask.clear();
        frame.mask.extend_from_slice(&a.wildcard_mask);
        frame.child_sat.clear();
        frame.child_sat.resize(a.words, 0);
        frame.desc_sat.clear();
        frame.desc_sat.resize(a.words, 0);
        if let Some(slots) = a.by_tag.get(tag) {
            for &slot in slots {
                set_bit(&mut frame.mask, slot);
            }
        }
        for (slot, name) in &a.attr_slots {
            if has_attr(name) {
                set_bit(&mut frame.mask, *slot);
            }
        }
        s.parents.push(s.frames.last().map_or(0, |f| f.element + 1));
        s.count += 1;
        s.sat_bits.extend(std::iter::repeat(0).take(a.words));
        s.frames.push(frame);
    }

    /// Feed an element-close event, finalizing the innermost open element's
    /// satisfiability bits.
    pub fn close(&mut self) {
        let a = self.automaton;
        let s = &mut *self.scratch;
        let Some(mut frame) = s.frames.pop() else {
            return;
        };
        // Descending slot order over the *set* bits only: every pattern
        // child (larger slot) of a slot is finalized before the slot itself
        // is checked, and slots whose node test already failed cost nothing.
        for w in (0..a.words).rev() {
            let mut bits = frame.mask[w];
            while bits != 0 {
                let b = 63 - bits.leading_zeros();
                bits &= !(1u64 << b);
                let slot = (w as u32) * 64 + b;
                let deps = &a.deps[slot as usize];
                if deps.is_empty() {
                    continue;
                }
                let ok = deps.iter().all(|&(c, kind)| match kind {
                    DepKind::SameElement => get_bit(&frame.mask, c),
                    DepKind::Child => get_bit(&frame.child_sat, c),
                    DepKind::Descendant => get_bit(&frame.desc_sat, c),
                });
                if !ok {
                    clear_bit(&mut frame.mask, slot);
                }
            }
        }
        if frame.element != 0 {
            for (m, keep) in frame.mask.iter_mut().zip(&a.non_root_keep) {
                *m &= keep;
            }
        }
        let row = frame.element as usize * a.words;
        s.sat_bits[row..row + a.words].copy_from_slice(&frame.mask);
        if let Some(parent) = s.frames.last_mut() {
            for w in 0..a.words {
                parent.child_sat[w] |= frame.mask[w];
                parent.desc_sat[w] |= frame.mask[w] | frame.desc_sat[w];
            }
        }
        s.spare.push(frame);
    }

    /// Finish the pass: run the top-down usefulness pass over the stored
    /// satisfiability rows (the exact bit-level analogue of
    /// [`PatternMatcher::useful_from_sat`]) and extract per-pattern useful
    /// sets in ascending element-id order — the order, sets and downstream
    /// passes are all identical to the per-pattern matcher's.
    pub fn finish(self) -> SharedPass {
        let mut pass = SharedPass::default();
        self.finish_into(&mut pass);
        pass
    }

    /// [`finish`](Self::finish) into a reused [`SharedPass`], keeping its
    /// buffers (the slot-set vectors retain capacity across documents).
    pub fn finish_into(self, pass: &mut SharedPass) {
        let a = self.automaton;
        let s = self.scratch;
        let n = s.count as usize;
        let words = a.words;
        s.useful_bits.clear();
        s.useful_bits.resize(n * words, 0);
        s.anc_bits.clear();
        s.anc_bits.resize(n * words, 0);
        // Elements in pre-order (ascending id): ancestors are resolved
        // before their descendants, parent slots before child slots.
        for e in 0..n {
            let row = e * words;
            if e > 0 {
                let p = (s.parents[e] - 1) as usize * words;
                for w in 0..words {
                    s.anc_bits[row + w] = s.anc_bits[p + w] | s.useful_bits[p + w];
                }
            }
            for w in 0..words {
                let mut bits = s.sat_bits[row + w];
                while bits != 0 {
                    let b = bits.trailing_zeros();
                    bits &= bits - 1;
                    let slot = (w as u32) * 64 + b;
                    let useful = match a.up[slot as usize] {
                        // Pattern roots: useful = sat.
                        None => true,
                        // Attribute steps bind the same element; the parent
                        // slot is smaller, so its bit is already final.
                        Some((ps, DepKind::SameElement)) => {
                            get_bit(&s.useful_bits[row..row + words], ps)
                        }
                        Some((ps, DepKind::Child)) => {
                            e > 0 && {
                                let p = (s.parents[e] - 1) as usize * words;
                                get_bit(&s.useful_bits[p..p + words], ps)
                            }
                        }
                        Some((ps, DepKind::Descendant)) => {
                            get_bit(&s.anc_bits[row..row + words], ps)
                        }
                    };
                    if useful {
                        s.useful_bits[row + w] |= 1u64 << b;
                    }
                }
            }
        }
        // Extraction: ascending element id per slot, touching set bits only.
        pass.index.clear();
        pass.index.extend(
            a.patterns
                .iter()
                .map(|entry| (entry.key, entry.base, entry.len)),
        );
        pass.sets.truncate(a.slot_count);
        pass.sets.resize_with(a.slot_count, Vec::new);
        for set in &mut pass.sets {
            set.clear();
        }
        for e in 0..n {
            let row = e * words;
            for w in 0..words {
                let mut bits = s.useful_bits[row + w];
                while bits != 0 {
                    let b = bits.trailing_zeros();
                    bits &= bits - 1;
                    let slot = w * 64 + b as usize;
                    pass.sets[slot].push(NodeId::from_raw(e as u32));
                }
            }
        }
    }
}

/// The result of one shared automaton pass: per-pattern *useful* sets (the
/// output of the bottom-up satisfiability pass followed by the top-down
/// usefulness pass), identical to what
/// [`PatternMatcher::useful_nodes`](crate::PatternMatcher::useful_nodes)
/// computes pattern by pattern.
#[derive(Debug, Clone, Default)]
pub struct SharedPass {
    /// `(pattern, first slot, slot count)` in ascending pattern-id order.
    index: Vec<(PatternId, u32, u32)>,
    /// Slot-indexed useful sets (ascending document-node ids).
    sets: Vec<Vec<NodeId>>,
}

impl SharedPass {
    /// The useful sets of one pattern (indexed by pattern node id, document
    /// nodes ascending), if the pattern was compiled into the automaton that
    /// produced this pass.
    pub fn useful(&self, id: PatternId) -> Option<&[Vec<NodeId>]> {
        let i = self
            .index
            .binary_search_by_key(&id, |&(key, _, _)| key)
            .ok()?;
        let (_, base, len) = self.index[i];
        Some(&self.sets[base as usize..(base + len) as usize])
    }

    /// Number of patterns evaluated.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` when no patterns were evaluated.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }
}

fn set_bit(words: &mut [u64], bit: u32) {
    words[(bit / 64) as usize] |= 1 << (bit % 64);
}

fn clear_bit(words: &mut [u64], bit: u32) {
    words[(bit / 64) as usize] &= !(1 << (bit % 64));
}

fn get_bit(words: &[u64], bit: u32) -> bool {
    words[(bit / 64) as usize] & (1 << (bit % 64)) != 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::PatternMatcher;
    use crate::parser::parse_pattern;
    use crate::tree::ElementTree;
    use mmqjp_xml::{parse_document, rss, DocumentBuilder};

    fn patterns() -> Vec<TreePattern> {
        [
            "S//book->x1[.//author->x2][.//title->x3]",
            "S//book->x1[.//author->x2][.//title->x3][.//category->x7]",
            "S//blog->x4[.//author->x5]",
            "/book->r",
            "/author->r",
            "//author->a",
            "//book/*->x",
            "//a->va[.//b->vb[.//c->vc]]",
            "//a->x[.//b->y]",
            "//feed->f[.//entry->e[.//title->t][.//author->a]]",
            "//link[./@href->h]",
            "//link[./@rel->r]",
            "S//*->w",
            "/a/c->x",
            "/a//c->x",
        ]
        .iter()
        .map(|s| parse_pattern(s).unwrap())
        .collect()
    }

    fn docs() -> Vec<Document> {
        let mut out = vec![
            rss::book_announcement(
                &["Danny Ayers", "Andrew Watt"],
                "Beginning RSS and Atom Programming",
                &["Scripting & Programming", "Web Site Development"],
                "Wrox",
                "0764579169",
            ),
            rss::blog_article(
                "Danny Ayers",
                "http://dannyayers.com/topics/books/rss-book",
                "Beginning RSS and Atom Programming",
                "Book Announcement",
                "Just heard ...",
            ),
        ];
        let mut b = DocumentBuilder::new("a");
        b.open("b");
        b.child_text("c", "deep");
        b.close();
        b.child_text("c", "shallow");
        out.push(b.finish());

        let mut b = DocumentBuilder::new("b");
        b.open("a");
        b.child_text("c", "x");
        b.close();
        out.push(b.finish());

        let mut b = DocumentBuilder::new("feed");
        b.open("entry");
        b.child_text("title", "t1");
        b.child_text("author", "a1");
        b.close();
        b.open("entry");
        b.child_text("title", "t2");
        b.close();
        out.push(b.finish());

        let mut b = DocumentBuilder::new("item");
        b.open("link");
        b.attribute("href", "http://example.org/x");
        b.close();
        out.push(b.finish());

        let mut b = DocumentBuilder::new("root");
        b.open("a");
        b.child_text("b", "1");
        b.close();
        b.open("a");
        b.child_text("c", "2");
        b.close();
        out.push(b.finish());

        out
    }

    /// The automaton's shared pass must reproduce the two-pass matcher's
    /// witnesses and edge bindings for every (pattern, document) pair.
    #[test]
    fn shared_pass_is_identical_to_per_pattern_matcher() {
        let pats = patterns();
        let keyed: Vec<(PatternId, &TreePattern)> = pats
            .iter()
            .enumerate()
            .map(|(i, p)| (PatternId(i as u32), p))
            .collect();
        let automaton = PatternAutomaton::new(keyed.iter().map(|&(id, p)| (id, p)));
        assert_eq!(automaton.pattern_count(), pats.len());
        for doc in docs() {
            let pass = automaton.pass_over(&doc);
            assert_eq!(pass.len(), pats.len());
            assert!(!pass.is_empty());
            for (id, pattern) in &keyed {
                let m = PatternMatcher::new(pattern);
                let useful = pass.useful(*id).unwrap();
                assert_eq!(
                    useful,
                    m.useful_nodes(&doc).as_slice(),
                    "useful sets diverged for pattern {id:?} on doc rooted {}",
                    doc.root().tag()
                );
                assert_eq!(
                    m.witnesses_from_useful(&doc, useful),
                    m.witnesses(&doc),
                    "witnesses diverged for pattern {id:?} on doc rooted {}",
                    doc.root().tag()
                );
                let edges = pattern.edges();
                assert_eq!(
                    m.edge_bindings_from_useful(&doc, useful, &edges),
                    m.edge_bindings(&doc, &edges),
                    "edge bindings diverged for pattern {id:?}"
                );
            }
        }
    }

    /// The no-DOM text pass must agree with parse-then-match.
    #[test]
    fn text_pass_matches_dom_pipeline() {
        let xml = r#"<?xml version="1.0"?>
            <book><author>Danny Ayers</author><author>Andrew Watt</author>
            <title>Beginning RSS</title><category>Web</category>
            <link href="http://example.org/b"/></book>"#;
        let pats = patterns();
        let keyed: Vec<(PatternId, &TreePattern)> = pats
            .iter()
            .enumerate()
            .map(|(i, p)| (PatternId(i as u32), p))
            .collect();
        let automaton = PatternAutomaton::new(keyed.iter().map(|&(id, p)| (id, p)));
        let (skel, pass) = automaton.pass_over_text(xml).unwrap();
        let doc = parse_document(xml).unwrap();
        assert_eq!(skel.len(), doc.len());
        for (id, pattern) in &keyed {
            let m = PatternMatcher::new(pattern);
            let useful = pass.useful(*id).unwrap();
            assert_eq!(
                m.witnesses_from_useful(&skel, useful),
                m.witnesses(&doc),
                "text-pass witnesses diverged for pattern {id:?}"
            );
        }
        // String values resolve identically off the skeleton.
        for id in doc.element_ids() {
            assert_eq!(skel.string_value_of(id), doc.string_value(id));
        }
    }

    #[test]
    fn empty_automaton_passes_cleanly() {
        let automaton = PatternAutomaton::new(std::iter::empty());
        let doc = Document::new("x");
        let pass = automaton.pass_over(&doc);
        assert!(pass.is_empty());
        assert_eq!(pass.useful(PatternId(0)), None);
    }

    #[test]
    fn malformed_text_surfaces_parse_errors() {
        let automaton = PatternAutomaton::new(std::iter::empty());
        assert!(automaton.pass_over_text("<a><b></a>").is_err());
    }
}
