//! Variable tree patterns: the structural (XPath) component of XSCL query
//! blocks.

use crate::error::{XPathError, XPathResult};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The axis connecting a pattern node to its parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Axis {
    /// `/` — the document node must be a child of the parent's match.
    /// For the pattern root, the document's root element itself.
    Child,
    /// `//` — the document node must be a descendant of the parent's match.
    /// For the pattern root, any element of the document.
    Descendant,
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Axis::Child => write!(f, "/"),
            Axis::Descendant => write!(f, "//"),
        }
    }
}

/// The node test of a pattern step.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NodeTest {
    /// Match elements with this tag name.
    Tag(String),
    /// `*` — match any element.
    Wildcard,
    /// `@name` — match the attribute with this name on the parent's match.
    /// Attribute steps are always leaves.
    Attribute(String),
}

impl NodeTest {
    /// Construct a tag test.
    pub fn tag(name: impl Into<String>) -> NodeTest {
        NodeTest::Tag(name.into())
    }

    /// Construct an attribute test.
    pub fn attribute(name: impl Into<String>) -> NodeTest {
        NodeTest::Attribute(name.into())
    }
}

impl fmt::Display for NodeTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeTest::Tag(t) => write!(f, "{t}"),
            NodeTest::Wildcard => write!(f, "*"),
            NodeTest::Attribute(a) => write!(f, "@{a}"),
        }
    }
}

/// Identifier of a node within a [`TreePattern`] (pre-order index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PatternNodeId(pub u32);

impl PatternNodeId {
    /// The pattern root id.
    pub const ROOT: PatternNodeId = PatternNodeId(0);

    /// Raw index.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Raw index as usize.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PatternNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// One step of a variable tree pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PatternNode {
    pub(crate) id: PatternNodeId,
    pub(crate) axis: Axis,
    pub(crate) test: NodeTest,
    pub(crate) variable: Option<String>,
    pub(crate) parent: Option<PatternNodeId>,
    pub(crate) children: Vec<PatternNodeId>,
}

impl PatternNode {
    /// This node's id.
    pub fn id(&self) -> PatternNodeId {
        self.id
    }

    /// The axis connecting this node to its parent (or, for the root, to the
    /// virtual document node).
    pub fn axis(&self) -> Axis {
        self.axis
    }

    /// The node test.
    pub fn test(&self) -> &NodeTest {
        &self.test
    }

    /// The variable bound to this node, if any.
    pub fn variable(&self) -> Option<&str> {
        self.variable.as_deref()
    }

    /// The parent node id (None for the pattern root).
    pub fn parent(&self) -> Option<PatternNodeId> {
        self.parent
    }

    /// Children (predicate branches and the continuation of the main path).
    pub fn children(&self) -> &[PatternNodeId] {
        &self.children
    }

    /// `true` if the node has no children.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// A variable tree pattern over one input stream: the structural component of
/// an XSCL query block.
///
/// The pattern is stored as an arena of [`PatternNode`]s in pre-order, like
/// [`mmqjp_xml::Document`]. Every node carries an axis (relative to its
/// parent), a node test and an optional variable binding.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TreePattern {
    stream: Option<String>,
    nodes: Vec<PatternNode>,
}

impl TreePattern {
    /// Create a pattern with a single root step.
    pub fn new(stream: Option<String>, axis: Axis, test: NodeTest) -> Self {
        TreePattern {
            stream,
            nodes: vec![PatternNode {
                id: PatternNodeId::ROOT,
                axis,
                test,
                variable: None,
                parent: None,
                children: Vec::new(),
            }],
        }
    }

    /// The stream this pattern reads from, if specified.
    pub fn stream(&self) -> Option<&str> {
        self.stream.as_deref()
    }

    /// Set the stream name.
    pub fn set_stream(&mut self, stream: Option<String>) {
        self.stream = stream;
    }

    /// Number of pattern nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the pattern consists of the root step only.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// The root node.
    pub fn root(&self) -> &PatternNode {
        &self.nodes[0]
    }

    /// Access a node by id.
    pub fn node(&self, id: PatternNodeId) -> &PatternNode {
        &self.nodes[id.index()]
    }

    /// Iterate over all nodes in pre-order.
    pub fn nodes(&self) -> impl Iterator<Item = &PatternNode> {
        self.nodes.iter()
    }

    /// Iterate over all node ids in pre-order.
    pub fn node_ids(&self) -> impl Iterator<Item = PatternNodeId> + '_ {
        (0..self.nodes.len() as u32).map(PatternNodeId)
    }

    /// Add a child step under `parent`. Children may be added in any order;
    /// ids remain insertion-ordered (which is pre-order when built by the
    /// parser).
    pub fn add_child(
        &mut self,
        parent: PatternNodeId,
        axis: Axis,
        test: NodeTest,
    ) -> PatternNodeId {
        let id = PatternNodeId(self.nodes.len() as u32);
        self.nodes.push(PatternNode {
            id,
            axis,
            test,
            variable: None,
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Bind a variable name to a node. Returns an error if the name is
    /// already bound to a different node in this pattern.
    pub fn bind_variable(&mut self, id: PatternNodeId, name: impl Into<String>) -> XPathResult<()> {
        let name = name.into();
        if self
            .nodes
            .iter()
            .any(|n| n.id != id && n.variable.as_deref() == Some(name.as_str()))
        {
            return Err(XPathError::DuplicateVariable { name });
        }
        self.nodes[id.index()].variable = Some(name);
        Ok(())
    }

    /// All `(variable, node id)` bindings, in pre-order of the bound nodes.
    pub fn variables(&self) -> Vec<(&str, PatternNodeId)> {
        self.nodes
            .iter()
            .filter_map(|n| n.variable.as_deref().map(|v| (v, n.id)))
            .collect()
    }

    /// The node bound to a given variable name.
    pub fn variable_node(&self, name: &str) -> XPathResult<PatternNodeId> {
        self.nodes
            .iter()
            .find(|n| n.variable.as_deref() == Some(name))
            .map(|n| n.id)
            .ok_or_else(|| XPathError::UnknownVariable {
                name: name.to_owned(),
            })
    }

    /// `true` if some node binds this variable name.
    pub fn binds(&self, name: &str) -> bool {
        self.variable_node(name).is_ok()
    }

    /// All `(parent, child)` edges of the pattern, in pre-order of the child.
    pub fn edges(&self) -> Vec<(PatternNodeId, PatternNodeId)> {
        self.nodes
            .iter()
            .filter_map(|n| n.parent.map(|p| (p, n.id)))
            .collect()
    }

    /// Ensure every node carries a variable: nodes without a user-supplied
    /// binding get a canonical, definition-derived name of the form
    /// `_<signature-of-path>`. Because the name is derived purely from the
    /// node's definition (stream, path of axes and node tests from the
    /// pattern root), structurally identical definitions in different
    /// queries receive identical names — implementing the paper's
    /// "same definition ⇒ same variable name" assumption.
    pub fn assign_canonical_variables(&mut self) {
        let paths: Vec<String> = self.node_ids().map(|id| self.definition_path(id)).collect();
        for (idx, path) in paths.iter().enumerate() {
            if self.nodes[idx].variable.is_none() {
                self.nodes[idx].variable = Some(format!("_{path}"));
            }
        }
    }

    /// The definition path of a node: stream name plus the axis/test steps
    /// from the pattern root down to the node. Two nodes (possibly in
    /// different patterns) with equal definition paths match exactly the same
    /// document nodes when evaluated from the root.
    pub fn definition_path(&self, id: PatternNodeId) -> String {
        let mut steps = Vec::new();
        let mut cur = Some(id);
        while let Some(n) = cur {
            let node = self.node(n);
            steps.push(format!("{}{}", node.axis, node.test));
            cur = node.parent();
        }
        steps.reverse();
        format!("{}{}", self.stream.as_deref().unwrap_or(""), steps.join(""))
    }

    /// A canonical signature of the entire pattern (structure + variables),
    /// used by [`PatternIndex`](crate::PatternIndex) to de-duplicate
    /// structurally identical patterns. Children are sorted so that sibling
    /// order does not affect the signature.
    pub fn signature(&self) -> String {
        fn encode(p: &TreePattern, id: PatternNodeId) -> String {
            let node = p.node(id);
            let mut kids: Vec<String> = node.children().iter().map(|&c| encode(p, c)).collect();
            kids.sort();
            format!(
                "{}{}[{}]({})",
                node.axis,
                node.test,
                node.variable().unwrap_or(""),
                kids.join(",")
            )
        }
        format!(
            "{}::{}",
            self.stream.as_deref().unwrap_or(""),
            encode(self, PatternNodeId::ROOT)
        )
    }

    /// Validate parent/child symmetry. Used by tests.
    pub fn check_invariants(&self) -> XPathResult<()> {
        for (i, n) in self.nodes.iter().enumerate() {
            if n.id.index() != i {
                return Err(XPathError::EmptyPattern);
            }
            for &c in n.children() {
                if self.nodes[c.index()].parent != Some(n.id) {
                    return Err(XPathError::EmptyPattern);
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for TreePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn write_node(
            p: &TreePattern,
            id: PatternNodeId,
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            let node = p.node(id);
            write!(f, "{}{}", node.axis, node.test)?;
            if let Some(v) = node.variable() {
                if !v.starts_with('_') {
                    write!(f, "->{v}")?;
                }
            }
            // The first child continues the main path; the rest become
            // predicates. For display purposes all children are shown as
            // predicates, which is an equivalent formulation.
            for &c in node.children() {
                write!(f, "[.")?;
                write_node(p, c, f)?;
                write!(f, "]")?;
            }
            Ok(())
        }
        if let Some(s) = self.stream() {
            write!(f, "{s}")?;
        }
        write_node(self, PatternNodeId::ROOT, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build the pattern of Q1's first query block:
    /// `S//book->x1[.//author->x2][.//title->x3]`.
    fn q1_block1() -> TreePattern {
        let mut p = TreePattern::new(Some("S".into()), Axis::Descendant, NodeTest::tag("book"));
        p.bind_variable(PatternNodeId::ROOT, "x1").unwrap();
        let a = p.add_child(
            PatternNodeId::ROOT,
            Axis::Descendant,
            NodeTest::tag("author"),
        );
        p.bind_variable(a, "x2").unwrap();
        let t = p.add_child(
            PatternNodeId::ROOT,
            Axis::Descendant,
            NodeTest::tag("title"),
        );
        p.bind_variable(t, "x3").unwrap();
        p
    }

    #[test]
    fn build_and_inspect() {
        let p = q1_block1();
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert_eq!(p.stream(), Some("S"));
        assert_eq!(p.root().test(), &NodeTest::tag("book"));
        assert_eq!(p.root().axis(), Axis::Descendant);
        assert_eq!(p.root().variable(), Some("x1"));
        assert_eq!(p.variables().len(), 3);
        assert_eq!(p.variable_node("x2").unwrap(), PatternNodeId(1));
        assert!(p.binds("x3"));
        assert!(!p.binds("x9"));
        assert!(p.variable_node("x9").is_err());
        assert_eq!(
            p.edges(),
            vec![
                (PatternNodeId(0), PatternNodeId(1)),
                (PatternNodeId(0), PatternNodeId(2))
            ]
        );
        p.check_invariants().unwrap();
    }

    #[test]
    fn duplicate_variable_rejected() {
        let mut p = q1_block1();
        let extra = p.add_child(PatternNodeId::ROOT, Axis::Child, NodeTest::tag("isbn"));
        assert!(matches!(
            p.bind_variable(extra, "x1"),
            Err(XPathError::DuplicateVariable { .. })
        ));
        // Re-binding the same node with its own name is fine.
        p.bind_variable(PatternNodeId::ROOT, "x1").unwrap();
    }

    #[test]
    fn definition_paths_are_structural() {
        let p = q1_block1();
        assert_eq!(p.definition_path(PatternNodeId(0)), "S//book");
        assert_eq!(p.definition_path(PatternNodeId(1)), "S//book//author");
        assert_eq!(p.definition_path(PatternNodeId(2)), "S//book//title");
    }

    #[test]
    fn canonical_variables_same_definition_same_name() {
        let mut p1 = TreePattern::new(Some("S".into()), Axis::Descendant, NodeTest::tag("blog"));
        p1.add_child(
            PatternNodeId::ROOT,
            Axis::Descendant,
            NodeTest::tag("author"),
        );
        let mut p2 = TreePattern::new(Some("S".into()), Axis::Descendant, NodeTest::tag("blog"));
        p2.add_child(
            PatternNodeId::ROOT,
            Axis::Descendant,
            NodeTest::tag("author"),
        );
        p1.assign_canonical_variables();
        p2.assign_canonical_variables();
        assert_eq!(
            p1.node(PatternNodeId(1)).variable(),
            p2.node(PatternNodeId(1)).variable()
        );
        // Canonical names are derived from the path.
        assert_eq!(
            p1.node(PatternNodeId(1)).variable(),
            Some("_S//blog//author")
        );
        // User-provided names are kept.
        let mut p3 = q1_block1();
        p3.assign_canonical_variables();
        assert_eq!(p3.root().variable(), Some("x1"));
    }

    #[test]
    fn signature_ignores_sibling_order() {
        let mut a = TreePattern::new(None, Axis::Descendant, NodeTest::tag("book"));
        a.add_child(
            PatternNodeId::ROOT,
            Axis::Descendant,
            NodeTest::tag("author"),
        );
        a.add_child(
            PatternNodeId::ROOT,
            Axis::Descendant,
            NodeTest::tag("title"),
        );

        let mut b = TreePattern::new(None, Axis::Descendant, NodeTest::tag("book"));
        b.add_child(
            PatternNodeId::ROOT,
            Axis::Descendant,
            NodeTest::tag("title"),
        );
        b.add_child(
            PatternNodeId::ROOT,
            Axis::Descendant,
            NodeTest::tag("author"),
        );

        assert_eq!(a.signature(), b.signature());

        let mut c = TreePattern::new(None, Axis::Descendant, NodeTest::tag("blog"));
        c.add_child(
            PatternNodeId::ROOT,
            Axis::Descendant,
            NodeTest::tag("author"),
        );
        assert_ne!(a.signature(), c.signature());
    }

    #[test]
    fn signature_distinguishes_axes_and_streams() {
        let child = TreePattern::new(Some("S".into()), Axis::Child, NodeTest::tag("a"));
        let desc = TreePattern::new(Some("S".into()), Axis::Descendant, NodeTest::tag("a"));
        assert_ne!(child.signature(), desc.signature());
        let other_stream = TreePattern::new(Some("T".into()), Axis::Child, NodeTest::tag("a"));
        assert_ne!(child.signature(), other_stream.signature());
    }

    #[test]
    fn display_roundtrips_key_structure() {
        let p = q1_block1();
        let s = p.to_string();
        assert!(s.starts_with("S//book->x1"));
        assert!(s.contains("author->x2"));
        assert!(s.contains("title->x3"));
    }

    #[test]
    fn node_test_constructors_and_display() {
        assert_eq!(NodeTest::tag("a").to_string(), "a");
        assert_eq!(NodeTest::Wildcard.to_string(), "*");
        assert_eq!(NodeTest::attribute("href").to_string(), "@href");
        assert_eq!(Axis::Child.to_string(), "/");
        assert_eq!(Axis::Descendant.to_string(), "//");
        assert_eq!(PatternNodeId(3).to_string(), "p3");
        assert_eq!(PatternNodeId(3).raw(), 3);
    }

    #[test]
    fn empty_pattern_is_root_only() {
        let p = TreePattern::new(None, Axis::Descendant, NodeTest::Wildcard);
        assert!(p.is_empty());
        assert!(p.root().is_leaf());
    }
}
