//! Tree-pattern matching against documents.
//!
//! The matcher implements the classic two-pass evaluation for acyclic tree
//! patterns:
//!
//! 1. **Satisfiability (bottom-up):** for each pattern node `p`, compute the
//!    set of document nodes that can root a match of the pattern subtree
//!    rooted at `p` (the node test matches and every pattern child is
//!    satisfiable in the required axis relationship).
//! 2. **Usefulness (top-down):** restrict those sets to nodes that
//!    participate in at least one *complete* witness of the whole pattern
//!    (i.e. they are reachable from a satisfying binding of the pattern
//!    root).
//!
//! Because tree patterns are acyclic, the per-edge binding pairs between
//! useful nodes form a pairwise-consistent (fully reduced) acyclic join whose
//! result is exactly the set of complete witnesses — this is what justifies
//! the paper's factored, binary representation of witnesses (`RbinW`/`Rbin`).

use crate::pattern::{Axis, NodeTest, PatternNode, PatternNodeId, TreePattern};
use crate::tree::ElementTree;
use crate::witness::{EdgeBinding, Witness};
use mmqjp_xml::NodeId;
use std::collections::HashSet;

/// Evaluates one [`TreePattern`] against documents.
#[derive(Debug, Clone, Copy)]
pub struct PatternMatcher<'p> {
    pattern: &'p TreePattern,
}

impl<'p> PatternMatcher<'p> {
    /// Create a matcher for a pattern.
    pub fn new(pattern: &'p TreePattern) -> Self {
        PatternMatcher { pattern }
    }

    /// The pattern this matcher evaluates.
    pub fn pattern(&self) -> &TreePattern {
        self.pattern
    }

    /// Whether a document node passes a pattern node's node test.
    fn test_matches<T: ElementTree + ?Sized>(doc: &T, node: NodeId, test: &NodeTest) -> bool {
        match test {
            NodeTest::Tag(t) => doc.tag_of(node) == t,
            NodeTest::Wildcard => true,
            NodeTest::Attribute(a) => doc.attribute_of(node, a).is_some(),
        }
    }

    /// Whether document nodes `(du, dv)` satisfy the axis relationship
    /// required between a pattern node and its child pattern node `child`.
    fn axis_holds<T: ElementTree + ?Sized>(
        doc: &T,
        du: NodeId,
        dv: NodeId,
        child: &PatternNode,
    ) -> bool {
        match child.test() {
            // Attribute steps bind the element that carries the attribute,
            // which is the same element the parent step matched.
            NodeTest::Attribute(_) => du == dv,
            _ => match child.axis() {
                Axis::Child => doc.parent_of(dv) == Some(du),
                Axis::Descendant => doc.is_ancestor_of(du, dv),
            },
        }
    }

    /// Bottom-up satisfiability sets, indexed by pattern node id.
    fn satisfying_sets<T: ElementTree + ?Sized>(&self, doc: &T) -> Vec<Vec<NodeId>> {
        let n = self.pattern.len();
        let mut sat: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        // Children always have larger ids than their parents (insertion
        // order), so iterating ids in reverse processes children first.
        for idx in (0..n).rev() {
            let pid = PatternNodeId(idx as u32);
            let pnode = self.pattern.node(pid);
            let candidates: Vec<NodeId> = if pnode.parent().is_none() {
                // Root step: child axis anchors at the document root element,
                // descendant axis considers every element.
                match pnode.axis() {
                    Axis::Child => vec![NodeId::ROOT],
                    Axis::Descendant => doc.element_ids().collect(),
                }
            } else {
                doc.element_ids().collect()
            };
            let mut matched = Vec::new();
            'cands: for d in candidates {
                if !Self::test_matches(doc, d, pnode.test()) {
                    continue;
                }
                for &c in pnode.children() {
                    let child = self.pattern.node(c);
                    let ok = sat[c.index()]
                        .iter()
                        .any(|&dv| Self::axis_holds(doc, d, dv, child));
                    if !ok {
                        continue 'cands;
                    }
                }
                matched.push(d);
            }
            sat[idx] = matched;
        }
        sat
    }

    /// Top-down useful sets: satisfying nodes that participate in at least
    /// one complete witness. Indexed by pattern node id.
    pub fn useful_nodes<T: ElementTree + ?Sized>(&self, doc: &T) -> Vec<Vec<NodeId>> {
        let sat = self.satisfying_sets(doc);
        self.useful_from_sat(doc, &sat)
    }

    /// Top-down useful sets from externally computed satisfiability sets —
    /// the entry point for the shared streaming automaton, which evaluates
    /// the bottom-up pass for all registered patterns in one document
    /// traversal. `sat` must be indexed by pattern node id with document
    /// nodes in ascending id order (as [`satisfying_sets`] produces and
    /// [`crate::PatternAutomaton`] reproduces).
    ///
    /// [`satisfying_sets`]: PatternMatcher::useful_nodes
    pub fn useful_from_sat<T: ElementTree + ?Sized>(
        &self,
        doc: &T,
        sat: &[Vec<NodeId>],
    ) -> Vec<Vec<NodeId>> {
        let n = self.pattern.len();
        let mut useful: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        useful[0] = sat[0].clone();
        // Parents always precede children in id order.
        for idx in 0..n {
            let pid = PatternNodeId(idx as u32);
            let pnode = self.pattern.node(pid);
            for &c in pnode.children() {
                let child = self.pattern.node(c);
                let mut keep: Vec<NodeId> = Vec::new();
                let mut seen: HashSet<NodeId> = HashSet::new();
                for &dv in &sat[c.index()] {
                    let reachable = useful[idx]
                        .iter()
                        .any(|&du| Self::axis_holds(doc, du, dv, child));
                    if reachable && seen.insert(dv) {
                        keep.push(dv);
                    }
                }
                useful[c.index()] = keep;
            }
        }
        useful
    }

    /// `true` when the document contains at least one complete witness.
    pub fn matches<T: ElementTree + ?Sized>(&self, doc: &T) -> bool {
        !self.satisfying_sets(doc)[0].is_empty()
    }

    /// Binding pairs for one *adjacent* pattern edge `(parent, child)`,
    /// restricted to useful nodes.
    fn adjacent_pairs<T: ElementTree + ?Sized>(
        &self,
        doc: &T,
        useful: &[Vec<NodeId>],
        parent: PatternNodeId,
        child: PatternNodeId,
    ) -> Vec<(NodeId, NodeId)> {
        let child_node = self.pattern.node(child);
        let mut out = Vec::new();
        for &du in &useful[parent.index()] {
            for &dv in &useful[child.index()] {
                if Self::axis_holds(doc, du, dv, child_node) {
                    out.push((du, dv));
                }
            }
        }
        out
    }

    /// Binding pairs for an arbitrary ancestor/descendant pair of pattern
    /// nodes (`ancestor` must be a proper pattern-ancestor of `descendant`).
    /// The pairs are computed by composing adjacent-edge pairs along the
    /// pattern path, so intermediate structural constraints are respected
    /// even though the intermediate bindings are projected away.
    pub fn chain_pairs<T: ElementTree + ?Sized>(
        &self,
        doc: &T,
        useful: &[Vec<NodeId>],
        ancestor: PatternNodeId,
        descendant: PatternNodeId,
    ) -> Vec<(NodeId, NodeId)> {
        // A degenerate "self edge" (ancestor == descendant) asks for the
        // useful bindings of a single pattern node, paired with themselves.
        // The Join Processor uses these to constrain value-join nodes whose
        // reduced tree consists of a single node.
        if ancestor == descendant {
            return useful[ancestor.index()].iter().map(|&d| (d, d)).collect();
        }
        // Build the pattern path ancestor -> ... -> descendant.
        let mut path = vec![descendant];
        let mut cur = descendant;
        while cur != ancestor {
            match self.pattern.node(cur).parent() {
                Some(p) => {
                    path.push(p);
                    cur = p;
                }
                None => return Vec::new(), // not actually an ancestor
            }
        }
        path.reverse();
        if path.len() < 2 {
            return Vec::new();
        }
        // Compose adjacent pairs along the path.
        let mut pairs = self.adjacent_pairs(doc, useful, path[0], path[1]);
        for win in path.windows(2).skip(1) {
            let next = self.adjacent_pairs(doc, useful, win[0], win[1]);
            let mut composed = Vec::new();
            let mut seen = HashSet::new();
            for &(a, mid) in &pairs {
                for &(mid2, b) in &next {
                    if mid == mid2 && seen.insert((a, b)) {
                        composed.push((a, b));
                    }
                }
            }
            pairs = composed;
        }
        pairs
    }

    /// Edge bindings for a requested set of pattern-node pairs, using the
    /// variables bound at those nodes. Pattern nodes without variables are
    /// skipped (callers normally run
    /// [`TreePattern::assign_canonical_variables`] first).
    pub fn edge_bindings<T: ElementTree + ?Sized>(
        &self,
        doc: &T,
        edges: &[(PatternNodeId, PatternNodeId)],
    ) -> Vec<EdgeBinding> {
        let useful = self.useful_nodes(doc);
        self.edge_bindings_from_useful(doc, &useful, edges)
    }

    /// Edge bindings from externally computed satisfiability sets (see
    /// [`useful_from_sat`](PatternMatcher::useful_from_sat)).
    pub fn edge_bindings_from_sat<T: ElementTree + ?Sized>(
        &self,
        doc: &T,
        sat: &[Vec<NodeId>],
        edges: &[(PatternNodeId, PatternNodeId)],
    ) -> Vec<EdgeBinding> {
        let useful = self.useful_from_sat(doc, sat);
        self.edge_bindings_from_useful(doc, &useful, edges)
    }

    /// Edge bindings from externally computed *useful* sets (e.g. a shared
    /// automaton pass that already ran the top-down usefulness pruning).
    pub fn edge_bindings_from_useful<T: ElementTree + ?Sized>(
        &self,
        doc: &T,
        useful: &[Vec<NodeId>],
        edges: &[(PatternNodeId, PatternNodeId)],
    ) -> Vec<EdgeBinding> {
        let mut out = Vec::new();
        for &(anc, desc) in edges {
            let (Some(anc_var), Some(desc_var)) = (
                self.pattern.node(anc).variable(),
                self.pattern.node(desc).variable(),
            ) else {
                continue;
            };
            for (du, dv) in self.chain_pairs(doc, useful, anc, desc) {
                out.push(EdgeBinding {
                    ancestor_var: anc_var.to_owned(),
                    descendant_var: desc_var.to_owned(),
                    ancestor: du,
                    descendant: dv,
                });
            }
        }
        out
    }

    /// Edge bindings for every adjacent edge of the pattern (the paper's
    /// fully shredded representation).
    pub fn all_edge_bindings<T: ElementTree + ?Sized>(&self, doc: &T) -> Vec<EdgeBinding> {
        let edges = self.pattern.edges();
        self.edge_bindings(doc, &edges)
    }

    /// Enumerate all complete witnesses (bindings of every variable-carrying
    /// pattern node). Exponential in the worst case; used by tests, examples
    /// and the sequential baseline on the paper's small documents.
    ///
    /// Pattern node ids are assigned in insertion (pre-)order, so a node's
    /// parent always has a smaller id. Enumerating bindings in id order
    /// therefore always has the parent's binding available.
    pub fn witnesses<T: ElementTree + ?Sized>(&self, doc: &T) -> Vec<Witness> {
        let useful = self.useful_nodes(doc);
        self.witnesses_from_useful(doc, &useful)
    }

    /// Complete witnesses from externally computed satisfiability sets (see
    /// [`useful_from_sat`](PatternMatcher::useful_from_sat)).
    pub fn witnesses_from_sat<T: ElementTree + ?Sized>(
        &self,
        doc: &T,
        sat: &[Vec<NodeId>],
    ) -> Vec<Witness> {
        let useful = self.useful_from_sat(doc, sat);
        self.witnesses_from_useful(doc, &useful)
    }

    /// Complete witnesses from externally computed *useful* sets (e.g. a
    /// shared automaton pass that already ran the top-down usefulness
    /// pruning).
    pub fn witnesses_from_useful<T: ElementTree + ?Sized>(
        &self,
        doc: &T,
        useful: &[Vec<NodeId>],
    ) -> Vec<Witness> {
        if useful[0].is_empty() {
            return Vec::new();
        }
        let mut results = Vec::new();
        let mut partial: Vec<NodeId> = Vec::with_capacity(self.pattern.len());
        self.enumerate_in_id_order(doc, useful, &mut partial, &mut results);
        results
    }

    fn enumerate_in_id_order<T: ElementTree + ?Sized>(
        &self,
        doc: &T,
        useful: &[Vec<NodeId>],
        partial: &mut Vec<NodeId>,
        results: &mut Vec<Witness>,
    ) {
        let idx = partial.len();
        if idx == self.pattern.len() {
            let bindings: Vec<(String, NodeId)> = self
                .pattern
                .nodes()
                .filter_map(|p| {
                    p.variable()
                        .map(|v| (v.to_owned(), partial[p.id().index()]))
                })
                .collect();
            results.push(Witness::new(bindings));
            return;
        }
        let pid = PatternNodeId(idx as u32);
        let pnode = self.pattern.node(pid);
        for &dv in &useful[idx] {
            let compatible = match pnode.parent() {
                None => true,
                Some(parent) => {
                    let du = partial[parent.index()];
                    Self::axis_holds(doc, du, dv, pnode)
                }
            };
            if compatible {
                partial.push(dv);
                self.enumerate_in_id_order(doc, useful, partial, results);
                partial.pop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_pattern;
    use mmqjp_xml::{rss, Document, DocumentBuilder};

    /// Figure 1's book announcement.
    fn d1() -> Document {
        rss::book_announcement(
            &["Danny Ayers", "Andrew Watt"],
            "Beginning RSS and Atom Programming",
            &["Scripting & Programming", "Web Site Development"],
            "Wrox",
            "0764579169",
        )
    }

    /// Figure 2's blog article.
    fn d2() -> Document {
        rss::blog_article(
            "Danny Ayers",
            "http://dannyayers.com/topics/books/rss-book",
            "Beginning RSS and Atom Programming",
            "Book Announcement",
            "Just heard ...",
        )
    }

    #[test]
    fn matches_simple_patterns() {
        let book = parse_pattern("S//book").unwrap();
        let blog = parse_pattern("S//blog").unwrap();
        assert!(PatternMatcher::new(&book).matches(&d1()));
        assert!(!PatternMatcher::new(&book).matches(&d2()));
        assert!(PatternMatcher::new(&blog).matches(&d2()));
    }

    #[test]
    fn q1_block_witnesses_on_d1() {
        let p = parse_pattern("S//book->x1[.//author->x2][.//title->x3]").unwrap();
        let m = PatternMatcher::new(&p);
        let ws = m.witnesses(&d1());
        // Two authors × one title = two witnesses.
        assert_eq!(ws.len(), 2);
        for w in &ws {
            assert_eq!(w.get("x1"), Some(NodeId::from_raw(0)));
            assert_eq!(w.get("x3"), Some(NodeId::from_raw(3)));
        }
        let authors: HashSet<NodeId> = ws.iter().map(|w| w.get("x2").unwrap()).collect();
        assert_eq!(
            authors,
            HashSet::from([NodeId::from_raw(1), NodeId::from_raw(2)])
        );
    }

    #[test]
    fn unsatisfiable_predicate_yields_nothing() {
        // d2 (blog) has no isbn; the predicate makes the whole block
        // unsatisfiable, so no witnesses and no edge bindings at all.
        let p = parse_pattern("S//blog->x4[.//author->x5][.//isbn->x6]").unwrap();
        let m = PatternMatcher::new(&p);
        assert!(m.witnesses(&d2()).is_empty());
        assert!(m.all_edge_bindings(&d2()).is_empty());
        assert!(!m.matches(&d2()));
    }

    #[test]
    fn edge_bindings_match_table4c() {
        // Rbin after processing d1 (paper Table 4(c)) holds pairs
        // (x1,x2,0,2), (x1,x2,0,3)* — note the paper numbers authors 2,3 in a
        // different order than our fixture, which numbers them 1,2 — plus the
        // title and category pairs. What matters is the multiset of
        // (variable pair, child tag) combinations.
        let p = parse_pattern("S//book->x1[.//author->x2][.//title->x3][.//category->x7]").unwrap();
        let m = PatternMatcher::new(&p);
        let bindings = m.all_edge_bindings(&d1());
        let author_pairs: Vec<_> = bindings
            .iter()
            .filter(|b| b.descendant_var == "x2")
            .collect();
        let title_pairs: Vec<_> = bindings
            .iter()
            .filter(|b| b.descendant_var == "x3")
            .collect();
        let category_pairs: Vec<_> = bindings
            .iter()
            .filter(|b| b.descendant_var == "x7")
            .collect();
        assert_eq!(author_pairs.len(), 2);
        assert_eq!(title_pairs.len(), 1);
        assert_eq!(category_pairs.len(), 2);
        for b in &bindings {
            assert_eq!(b.ancestor, NodeId::from_raw(0));
            assert_eq!(b.ancestor_var, "x1");
        }
    }

    #[test]
    fn child_vs_descendant_axis() {
        let mut b = DocumentBuilder::new("a");
        b.open("b");
        b.child_text("c", "deep");
        b.close();
        b.child_text("c", "shallow");
        let doc = b.finish();

        let child = parse_pattern("/a/c->x").unwrap();
        let m = PatternMatcher::new(&child);
        let ws = m.witnesses(&doc);
        assert_eq!(ws.len(), 1);
        assert_eq!(doc.string_value(ws[0].get("x").unwrap()), "shallow");

        let desc = parse_pattern("/a//c->x").unwrap();
        let m = PatternMatcher::new(&desc);
        assert_eq!(m.witnesses(&doc).len(), 2);
    }

    #[test]
    fn root_child_axis_anchors_at_document_root() {
        let doc = d1();
        let anchored = parse_pattern("/book").unwrap();
        assert!(PatternMatcher::new(&anchored).matches(&doc));
        let wrong = parse_pattern("/author").unwrap();
        assert!(!PatternMatcher::new(&wrong).matches(&doc));
        // Descendant root axis finds authors anywhere.
        let desc = parse_pattern("//author").unwrap();
        assert!(PatternMatcher::new(&desc).matches(&doc));
    }

    #[test]
    fn wildcard_matches_any_tag() {
        let p = parse_pattern("//book/*->x").unwrap();
        let m = PatternMatcher::new(&p);
        // All 7 children of the book root.
        assert_eq!(m.witnesses(&d1()).len(), 7);
    }

    #[test]
    fn attribute_step_binds_carrying_element() {
        let mut b = DocumentBuilder::new("item");
        b.open("link");
        b.attribute("href", "http://example.org/x");
        b.close();
        let doc = b.finish();
        let p = parse_pattern("//link[./@href->h]").unwrap();
        let m = PatternMatcher::new(&p);
        let ws = m.witnesses(&doc);
        assert_eq!(ws.len(), 1);
        let n = ws[0].get("h").unwrap();
        assert_eq!(doc.node(n).tag(), "link");
        // A missing attribute fails the predicate.
        let p2 = parse_pattern("//link[./@rel->r]").unwrap();
        assert!(!PatternMatcher::new(&p2).matches(&doc));
    }

    #[test]
    fn chain_pairs_respect_intermediate_structure() {
        // Pattern a//b//c. Document: b0 { a1 { c2 } }  — c2 is under a1 but
        // the only b is ABOVE a1, so (a1, c2) must NOT be a valid chain pair.
        let mut builder = DocumentBuilder::new("b");
        builder.open("a");
        builder.child_text("c", "x");
        builder.close();
        let doc = builder.finish();

        let p = parse_pattern("//a->va[.//b->vb[.//c->vc]]").unwrap();
        let m = PatternMatcher::new(&p);
        assert!(!m.matches(&doc));
        let edges = vec![(PatternNodeId(0), PatternNodeId(2))];
        assert!(m.edge_bindings(&doc, &edges).is_empty());

        // Now a document where the chain does exist: a { b { c } }.
        let mut builder = DocumentBuilder::new("a");
        builder.open("b");
        builder.child_text("c", "y");
        builder.close();
        let doc2 = builder.finish();
        let pairs = m.edge_bindings(&doc2, &edges);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].ancestor, NodeId::from_raw(0));
        assert_eq!(pairs[0].descendant, NodeId::from_raw(2));
    }

    #[test]
    fn useful_nodes_prune_unreachable_matches() {
        // Pattern //a[.//b]: document has two a's, only one contains a b.
        let mut builder = DocumentBuilder::new("root");
        builder.open("a");
        builder.child_text("b", "1");
        builder.close();
        builder.open("a");
        builder.child_text("c", "2");
        builder.close();
        let doc = builder.finish();
        let p = parse_pattern("//a->x[.//b->y]").unwrap();
        let m = PatternMatcher::new(&p);
        let useful = m.useful_nodes(&doc);
        assert_eq!(useful[0].len(), 1); // only the first a
        assert_eq!(useful[1].len(), 1); // only its b
        assert_eq!(m.witnesses(&doc).len(), 1);
    }

    #[test]
    fn multiple_matches_cross_product_witnesses() {
        // Two authors and two categories: 4 witnesses for a pattern binding
        // both.
        let p = parse_pattern("S//book->x1[.//author->x2][.//category->x7]").unwrap();
        let m = PatternMatcher::new(&p);
        assert_eq!(m.witnesses(&d1()).len(), 4);
    }

    #[test]
    fn nested_pattern_witnesses() {
        // feed { entry { title, author }, entry { title } }
        let mut b = DocumentBuilder::new("feed");
        b.open("entry");
        b.child_text("title", "t1");
        b.child_text("author", "a1");
        b.close();
        b.open("entry");
        b.child_text("title", "t2");
        b.close();
        let doc = b.finish();
        let p = parse_pattern("//feed->f[.//entry->e[.//title->t][.//author->a]]").unwrap();
        let m = PatternMatcher::new(&p);
        let ws = m.witnesses(&doc);
        // Only the first entry has both title and author.
        assert_eq!(ws.len(), 1);
        assert_eq!(doc.string_value(ws[0].get("t").unwrap()), "t1");
        assert_eq!(doc.string_value(ws[0].get("a").unwrap()), "a1");
    }

    #[test]
    fn feed_item_pattern_on_rss_document() {
        let item = rss::FeedItem {
            item_url: "u".into(),
            channel_url: "c".into(),
            title: "T".into(),
            timestamp: 5,
            description: "D".into(),
        };
        let doc = item.to_document(mmqjp_xml::DocId(1));
        let p = parse_pattern("S//item->r[.//title->t][.//channel_url->u]").unwrap();
        let m = PatternMatcher::new(&p);
        let ws = m.witnesses(&doc);
        assert_eq!(ws.len(), 1);
        assert_eq!(doc.string_value(ws[0].get("t").unwrap()), "T");
    }
}
