//! Parser for the textual form of variable tree patterns.
//!
//! The syntax is the one used in the paper's examples (Table 2):
//!
//! ```text
//! S//book->x1[.//author->x2][.//title->x3]
//! ```
//!
//! * an optional stream name before the first `/`;
//! * steps connected by `/` (child) or `//` (descendant);
//! * node tests: a tag name, `*`, or `@attr`;
//! * an optional variable binding `->name` after any step;
//! * predicates `[. <relative path>]` after any step, nestable.

use crate::error::{XPathError, XPathResult};
use crate::pattern::{Axis, NodeTest, PatternNodeId, TreePattern};

/// Parse a variable tree pattern, e.g.
/// `S//book->x1[.//author->x2][.//title->x3]`.
pub fn parse_pattern(input: &str) -> XPathResult<TreePattern> {
    let mut p = Parser::new(input);
    let pattern = p.parse()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(XPathError::UnexpectedChar {
            offset: p.pos,
            found: p.peek_char().unwrap_or('\0'),
            expected: "end of pattern",
        });
    }
    Ok(pattern)
}

/// Parse a plain XPath-fragment path without requiring variable bindings.
/// Equivalent to [`parse_pattern`]; provided for readability at call sites
/// that deal with paths from non-XSCL sources.
pub fn parse_path(input: &str) -> XPathResult<TreePattern> {
    parse_pattern(input)
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser { input, pos: 0 }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn peek_char(&self) -> Option<char> {
        self.input[self.pos..].chars().next()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek_char() {
            if c.is_whitespace() {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
    }

    fn parse(&mut self) -> XPathResult<TreePattern> {
        self.skip_ws();
        // Optional stream name before the first '/'.
        let stream = if self
            .peek_char()
            .map(|c| c.is_ascii_alphabetic() || c == '_')
            .unwrap_or(false)
        {
            Some(self.parse_name()?)
        } else {
            None
        };
        self.skip_ws();
        if self.at_end() {
            return Err(XPathError::EmptyPattern);
        }

        // First step creates the pattern.
        let axis = self.parse_axis()?;
        let test = self.parse_node_test()?;
        let mut pattern = TreePattern::new(stream, axis, test);
        let root = PatternNodeId::ROOT;
        self.parse_binding_and_predicates(&mut pattern, root)?;
        self.parse_trailing_steps(&mut pattern, root)?;
        Ok(pattern)
    }

    /// Parse the continuation of a main path: further `/step` or `//step`
    /// elements hanging off `current`.
    fn parse_trailing_steps(
        &mut self,
        pattern: &mut TreePattern,
        mut current: PatternNodeId,
    ) -> XPathResult<()> {
        loop {
            self.skip_ws();
            if !self.starts_with("/") {
                return Ok(());
            }
            let axis = self.parse_axis()?;
            let test = self.parse_node_test()?;
            let id = pattern.add_child(current, axis, test);
            self.parse_binding_and_predicates(pattern, id)?;
            current = id;
        }
    }

    /// Parse an optional `->var` binding followed by zero or more `[...]`
    /// predicates attached to `node`.
    fn parse_binding_and_predicates(
        &mut self,
        pattern: &mut TreePattern,
        node: PatternNodeId,
    ) -> XPathResult<()> {
        self.skip_ws();
        if self.starts_with("->") {
            self.pos += 2;
            self.skip_ws();
            let name = self.parse_name()?;
            pattern.bind_variable(node, name)?;
        }
        loop {
            self.skip_ws();
            if !self.starts_with("[") {
                return Ok(());
            }
            self.pos += 1;
            self.skip_ws();
            // Predicates are relative paths starting with '.'.
            if self.starts_with(".") {
                self.pos += 1;
            }
            self.skip_ws();
            let axis = self.parse_axis()?;
            let test = self.parse_node_test()?;
            let child = pattern.add_child(node, axis, test);
            self.parse_binding_and_predicates(pattern, child)?;
            // Continue the predicate's own main path.
            self.parse_trailing_steps(pattern, child)?;
            self.skip_ws();
            if !self.starts_with("]") {
                return if self.at_end() {
                    Err(XPathError::UnexpectedEnd {
                        context: "predicate",
                    })
                } else {
                    Err(XPathError::UnexpectedChar {
                        offset: self.pos,
                        found: self.peek_char().unwrap_or('\0'),
                        expected: "']'",
                    })
                };
            }
            self.pos += 1;
        }
    }

    fn parse_axis(&mut self) -> XPathResult<Axis> {
        if self.starts_with("//") {
            self.pos += 2;
            Ok(Axis::Descendant)
        } else if self.starts_with("/") {
            self.pos += 1;
            Ok(Axis::Child)
        } else if self.at_end() {
            Err(XPathError::UnexpectedEnd { context: "axis" })
        } else {
            Err(XPathError::UnexpectedChar {
                offset: self.pos,
                found: self.peek_char().unwrap_or('\0'),
                expected: "'/' or '//'",
            })
        }
    }

    fn parse_node_test(&mut self) -> XPathResult<NodeTest> {
        self.skip_ws();
        match self.peek_char() {
            Some('*') => {
                self.pos += 1;
                Ok(NodeTest::Wildcard)
            }
            Some('@') => {
                self.pos += 1;
                let name = self.parse_name()?;
                Ok(NodeTest::Attribute(name))
            }
            Some(c) if c.is_ascii_alphanumeric() || c == '_' => {
                let name = self.parse_name()?;
                Ok(NodeTest::Tag(name))
            }
            Some(c) => Err(XPathError::UnexpectedChar {
                offset: self.pos,
                found: c,
                expected: "tag name, '*' or '@attr'",
            }),
            None => Err(XPathError::UnexpectedEnd {
                context: "node test",
            }),
        }
    }

    fn parse_name(&mut self) -> XPathResult<String> {
        let start = self.pos;
        while let Some(c) = self.peek_char() {
            // `-` is a legal name character (e.g. `dc-creator`) except when it
            // starts the `->` variable-binding arrow.
            if c == '-' && self.input[self.pos..].starts_with("->") {
                break;
            }
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.' || c == '\'' {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
        if self.pos == start {
            return if self.at_end() {
                Err(XPathError::UnexpectedEnd { context: "name" })
            } else {
                Err(XPathError::UnexpectedChar {
                    offset: self.pos,
                    found: self.peek_char().unwrap_or('\0'),
                    expected: "name",
                })
            };
        }
        Ok(self.input[start..self.pos].to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_q1_block() {
        let p = parse_pattern("S//book->x1[.//author->x2][.//title->x3]").unwrap();
        assert_eq!(p.stream(), Some("S"));
        assert_eq!(p.len(), 3);
        assert_eq!(p.root().variable(), Some("x1"));
        assert_eq!(p.root().test(), &NodeTest::tag("book"));
        assert_eq!(p.variable_node("x2").unwrap(), PatternNodeId(1));
        assert_eq!(p.node(PatternNodeId(1)).test(), &NodeTest::tag("author"));
        assert_eq!(p.node(PatternNodeId(2)).test(), &NodeTest::tag("title"));
        assert_eq!(p.node(PatternNodeId(1)).axis(), Axis::Descendant);
        p.check_invariants().unwrap();
    }

    #[test]
    fn parse_without_stream() {
        let p = parse_pattern("//blog//title").unwrap();
        assert_eq!(p.stream(), None);
        assert_eq!(p.len(), 2);
        assert_eq!(p.node(PatternNodeId(1)).test(), &NodeTest::tag("title"));
        assert_eq!(p.node(PatternNodeId(1)).parent(), Some(PatternNodeId(0)));
    }

    #[test]
    fn parse_child_axis_and_wildcard() {
        let p = parse_pattern("S/rss/channel/*->x").unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.root().axis(), Axis::Child);
        assert_eq!(p.node(PatternNodeId(2)).test(), &NodeTest::Wildcard);
        assert_eq!(p.node(PatternNodeId(2)).variable(), Some("x"));
    }

    #[test]
    fn parse_attribute_step() {
        let p = parse_pattern("//link[./@href->h]").unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(
            p.node(PatternNodeId(1)).test(),
            &NodeTest::Attribute("href".into())
        );
        assert_eq!(p.node(PatternNodeId(1)).variable(), Some("h"));
        assert_eq!(p.node(PatternNodeId(1)).axis(), Axis::Child);
    }

    #[test]
    fn parse_nested_predicates() {
        let p = parse_pattern("S//book->x1[.//authors[.//author->x2]]//isbn->x4").unwrap();
        // book(0) -> authors(1) -> author(2); book -> isbn(3)
        assert_eq!(p.len(), 4);
        let authors = PatternNodeId(1);
        let author = PatternNodeId(2);
        let isbn = PatternNodeId(3);
        assert_eq!(p.node(author).parent(), Some(authors));
        assert_eq!(p.node(authors).parent(), Some(PatternNodeId::ROOT));
        assert_eq!(p.node(isbn).parent(), Some(PatternNodeId::ROOT));
        assert_eq!(p.node(isbn).variable(), Some("x4"));
    }

    #[test]
    fn parse_predicate_with_path_continuation() {
        let p = parse_pattern("S//feed[.//entry//title->t]").unwrap();
        assert_eq!(p.len(), 3);
        // entry is a child of feed; title is a child of entry.
        assert_eq!(p.node(PatternNodeId(1)).test(), &NodeTest::tag("entry"));
        assert_eq!(p.node(PatternNodeId(2)).test(), &NodeTest::tag("title"));
        assert_eq!(p.node(PatternNodeId(2)).parent(), Some(PatternNodeId(1)));
        assert_eq!(p.node(PatternNodeId(2)).variable(), Some("t"));
    }

    #[test]
    fn parse_whitespace_tolerant() {
        let p = parse_pattern("  S //book -> x1 [ .//author -> x2 ]  ").unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.root().variable(), Some("x1"));
        assert_eq!(p.node(PatternNodeId(1)).variable(), Some("x2"));
    }

    #[test]
    fn roundtrip_display_parse() {
        let p = parse_pattern("S//book->x1[.//author->x2][.//title->x3]").unwrap();
        let s = p.to_string();
        let p2 = parse_pattern(&s).unwrap();
        assert_eq!(p.signature(), p2.signature());
    }

    #[test]
    fn error_empty_pattern() {
        assert!(matches!(parse_pattern(""), Err(XPathError::EmptyPattern)));
        assert!(matches!(parse_pattern("S"), Err(XPathError::EmptyPattern)));
    }

    #[test]
    fn error_duplicate_variable() {
        let err = parse_pattern("S//a->x[.//b->x]").unwrap_err();
        assert!(matches!(err, XPathError::DuplicateVariable { .. }));
    }

    #[test]
    fn error_unclosed_predicate() {
        let err = parse_pattern("S//a[.//b").unwrap_err();
        assert!(matches!(err, XPathError::UnexpectedEnd { .. }));
    }

    #[test]
    fn error_trailing_garbage() {
        let err = parse_pattern("S//a->x1 junk").unwrap_err();
        assert!(matches!(err, XPathError::UnexpectedChar { .. }));
    }

    #[test]
    fn error_missing_node_test() {
        let err = parse_pattern("S//[.//a]").unwrap_err();
        assert!(matches!(err, XPathError::UnexpectedChar { .. }));
        let err = parse_pattern("S//").unwrap_err();
        assert!(matches!(err, XPathError::UnexpectedEnd { .. }));
    }

    #[test]
    fn parse_path_alias() {
        let p = parse_path("//item/title").unwrap();
        assert_eq!(p.len(), 2);
    }
}
