//! The multi-query XPath front end.
//!
//! A publish/subscribe system registers the tree-pattern components of *all*
//! queries and evaluates them together against each incoming document. The
//! dominant sharing opportunity — and the one the paper relies on when it
//! delegates Stage 1 to YFilter — is that different queries reuse identical
//! query blocks. [`PatternIndex`] therefore:
//!
//! * de-duplicates structurally identical patterns (same
//!   [`TreePattern::signature`]); each distinct pattern is evaluated at most
//!   once per document regardless of how many queries reference it;
//! * reference-counts registrations so a pattern can be
//!   [`unregister`](PatternIndex::unregister)ed when a subscription departs:
//!   the pattern is dropped (and stops being evaluated) once its last
//!   subscriber leaves, while [`PatternId`]s stay stable — dropped slots are
//!   tombstoned, never reused;
//! * pre-filters patterns by their *root tag* using a per-document tag set,
//!   so patterns that cannot possibly match (e.g. `//book...` on a blog
//!   document) are skipped without running the matcher;
//! * exposes per-document statistics so experiments can report Stage-1 cost
//!   and sharing factors.

use crate::automaton::{AutomatonScratch, PatternAutomaton, SharedPass};
use crate::matcher::PatternMatcher;
use crate::pattern::{NodeTest, PatternNodeId, TreePattern};
use crate::witness::{EdgeBinding, Witness};
use mmqjp_xml::{Document, XmlResult};
use std::collections::{HashMap, HashSet};

/// Identifier of a registered (distinct) pattern within a [`PatternIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PatternId(pub u32);

impl PatternId {
    /// Raw index.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Raw index as usize.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Statistics about index contents and the last evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PatternIndexStats {
    /// Number of registration calls (query blocks inserted).
    pub registered_blocks: usize,
    /// Number of distinct patterns actually stored.
    pub distinct_patterns: usize,
    /// Patterns evaluated for the last document (after tag pre-filtering).
    pub evaluated_last: usize,
    /// Patterns skipped by the root-tag pre-filter for the last document.
    pub skipped_last: usize,
}

/// A shared index over the tree patterns of many query blocks.
///
/// Registrations are reference-counted per distinct pattern: `register`
/// increments the count of the (deduplicated) pattern, `unregister`
/// decrements it and tombstones the slot when the last subscriber leaves.
/// [`PatternId`]s are never reused, so ids handed out earlier stay valid
/// for the patterns that are still live.
#[derive(Debug, Default, Clone)]
pub struct PatternIndex {
    /// Pattern slots; `None` marks a dropped (tombstoned) pattern. Boxed so
    /// a tombstoned slot costs a pointer, not the pattern footprint, under
    /// unbounded churn.
    patterns: Vec<Option<Box<TreePattern>>>,
    by_signature: HashMap<String, PatternId>,
    /// Root tags per pattern (None = wildcard / cannot pre-filter).
    root_tags: Vec<Option<String>>,
    /// Number of live registrations per slot.
    refcounts: Vec<usize>,
    /// Number of live (non-tombstoned) patterns.
    live: usize,
    registered_blocks: usize,
    evaluated_last: usize,
    skipped_last: usize,
    /// The compiled shared automaton over all live patterns, built lazily
    /// and invalidated on registration churn.
    automaton: Option<PatternAutomaton>,
    /// Reusable pass buffers — successive [`shared_pass`](PatternIndex::shared_pass)
    /// calls allocate nothing beyond result growth.
    scratch: AutomatonScratch,
}

impl PatternIndex {
    /// Create an empty index.
    pub fn new() -> Self {
        PatternIndex::default()
    }

    /// Register a pattern, returning its id. Structurally identical patterns
    /// (same signature) are shared and return the same id; every call
    /// increments the pattern's reference count (see
    /// [`unregister`](PatternIndex::unregister)).
    pub fn register(&mut self, pattern: TreePattern) -> PatternId {
        self.registered_blocks += 1;
        let sig = pattern.signature();
        if let Some(&id) = self.by_signature.get(&sig) {
            self.refcounts[id.index()] += 1;
            return id;
        }
        let id = PatternId(self.patterns.len() as u32);
        let root_tag = match pattern.root().test() {
            NodeTest::Tag(t) => Some(t.clone()),
            _ => None,
        };
        self.root_tags.push(root_tag);
        self.patterns.push(Some(Box::new(pattern)));
        self.refcounts.push(1);
        self.live += 1;
        self.by_signature.insert(sig, id);
        self.automaton = None;
        id
    }

    /// Release one registration of a pattern. Returns `true` when this was
    /// the last registration and the pattern was dropped from the index
    /// (its slot is tombstoned; the id is never reused). A subsequent
    /// `register` of the same structure allocates a fresh id.
    pub fn unregister(&mut self, id: PatternId) -> bool {
        let idx = id.index();
        let count = &mut self.refcounts[idx];
        assert!(*count > 0, "unregister of a dropped pattern {id:?}");
        *count -= 1;
        if *count > 0 {
            return false;
        }
        let pattern = self.patterns[idx]
            .take()
            // lint:allow register/unregister keep refcounts and slots in lockstep
            .expect("a positive refcount implies a live pattern");
        self.by_signature.remove(&pattern.signature());
        self.root_tags[idx] = None;
        self.live -= 1;
        self.automaton = None;
        true
    }

    /// Number of live registrations of a pattern (0 for dropped slots).
    pub fn refcount(&self, id: PatternId) -> usize {
        self.refcounts[id.index()]
    }

    /// Number of distinct live patterns stored.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when no live patterns are registered.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The pattern stored under an id. Panics for tombstoned (dropped) ids.
    pub fn pattern(&self, id: PatternId) -> &TreePattern {
        self.patterns[id.index()]
            .as_ref()
            // lint:allow documented contract: callers must not pass tombstoned ids
            .expect("pattern id refers to a dropped pattern")
    }

    /// Iterate over live `(id, pattern)` pairs.
    pub fn patterns(&self) -> impl Iterator<Item = (PatternId, &TreePattern)> {
        self.patterns
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_deref().map(|p| (PatternId(i as u32), p)))
    }

    /// Index statistics (sharing factor, last-evaluation counters).
    pub fn stats(&self) -> PatternIndexStats {
        PatternIndexStats {
            registered_blocks: self.registered_blocks,
            distinct_patterns: self.live,
            evaluated_last: self.evaluated_last,
            skipped_last: self.skipped_last,
        }
    }

    /// Ids of live patterns that can potentially match the document, using
    /// the root-tag pre-filter.
    fn candidate_ids(&self, doc: &Document) -> Vec<PatternId> {
        let doc_tags: HashSet<&str> = doc.nodes().map(|n| n.tag()).collect();
        self.patterns
            .iter()
            .enumerate()
            .filter(|(i, p)| {
                p.is_some()
                    && match &self.root_tags[*i] {
                        Some(tag) => doc_tags.contains(tag.as_str()),
                        None => true,
                    }
            })
            .map(|(i, _)| PatternId(i as u32))
            .collect()
    }

    /// Evaluate every registered pattern over a document, returning complete
    /// witnesses per matching pattern.
    pub fn evaluate_witnesses(&mut self, doc: &Document) -> Vec<(PatternId, Vec<Witness>)> {
        let candidates = self.candidate_ids(doc);
        self.skipped_last = self.live - candidates.len();
        self.evaluated_last = candidates.len();
        let mut out = Vec::new();
        for id in candidates {
            let matcher = PatternMatcher::new(self.pattern(id));
            let ws = matcher.witnesses(doc);
            if !ws.is_empty() {
                out.push((id, ws));
            }
        }
        out
    }

    /// Evaluate every registered pattern over a document, returning the edge
    /// bindings requested per pattern.
    ///
    /// `requested_edges` maps a pattern id to the list of
    /// (ancestor, descendant) pattern-node pairs whose binding pairs the Join
    /// Processor wants (typically the edges of the reduced variable tree
    /// pattern). Patterns without an entry fall back to all adjacent edges.
    pub fn evaluate_edge_bindings(
        &mut self,
        doc: &Document,
        requested_edges: &HashMap<PatternId, Vec<(PatternNodeId, PatternNodeId)>>,
    ) -> Vec<(PatternId, Vec<EdgeBinding>)> {
        let candidates = self.candidate_ids(doc);
        self.skipped_last = self.live - candidates.len();
        self.evaluated_last = candidates.len();
        let mut out = Vec::new();
        for id in candidates {
            let pattern = self.pattern(id);
            let matcher = PatternMatcher::new(pattern);
            let bindings = match requested_edges.get(&id) {
                Some(edges) => matcher.edge_bindings(doc, edges),
                None => matcher.all_edge_bindings(doc),
            };
            if !bindings.is_empty() {
                out.push((id, bindings));
            }
        }
        out
    }

    /// Ensure the shared automaton over all live patterns is compiled
    /// (lazily rebuilt after registration churn) and return it.
    pub fn automaton(&mut self) -> &PatternAutomaton {
        if self.automaton.is_none() {
            self.automaton = Some(PatternAutomaton::new(self.patterns()));
        }
        // The line above guarantees presence; avoid unwrap for the lint.
        self.automaton.get_or_insert_with(PatternAutomaton::default)
    }

    /// Run the shared automaton over a document: one traversal evaluates the
    /// bottom-up satisfiability pass *and* the top-down usefulness pass of
    /// **every** live pattern.
    pub fn shared_pass(&mut self, doc: &Document) -> SharedPass {
        let mut pass = SharedPass::default();
        self.shared_pass_reusing(doc, &mut pass);
        pass
    }

    /// [`shared_pass`](PatternIndex::shared_pass) into a reused
    /// [`SharedPass`]: with a warm `pass` (and the index's own scratch warm),
    /// a document pass allocates nothing beyond result-set growth.
    pub fn shared_pass_reusing(&mut self, doc: &Document, pass: &mut SharedPass) {
        self.evaluated_last = self.live;
        self.skipped_last = 0;
        if self.automaton.is_none() {
            self.automaton = Some(PatternAutomaton::new(self.patterns()));
        }
        let automaton = self.automaton.get_or_insert_with(PatternAutomaton::default);
        automaton.pass_over_reusing(doc, &mut self.scratch, pass);
    }

    /// Edge bindings from a [`shared_pass`](PatternIndex::shared_pass)
    /// result, byte-identical (same patterns, order and bindings) to
    /// [`evaluate_edge_bindings`](PatternIndex::evaluate_edge_bindings).
    pub fn edge_bindings_from_pass(
        &self,
        doc: &Document,
        requested_edges: &HashMap<PatternId, Vec<(PatternNodeId, PatternNodeId)>>,
        pass: &SharedPass,
    ) -> Vec<(PatternId, Vec<EdgeBinding>)> {
        let mut out = Vec::new();
        for (id, pattern) in self.patterns() {
            let Some(useful) = pass.useful(id) else {
                continue;
            };
            // An empty root set means no complete witness — no bindings.
            if useful.first().map_or(true, Vec::is_empty) {
                continue;
            }
            let matcher = PatternMatcher::new(pattern);
            let bindings = match requested_edges.get(&id) {
                Some(edges) => matcher.edge_bindings_from_useful(doc, useful, edges),
                None => matcher.edge_bindings_from_useful(doc, useful, &pattern.edges()),
            };
            if !bindings.is_empty() {
                out.push((id, bindings));
            }
        }
        out
    }

    /// Streaming-front counterpart of
    /// [`evaluate_edge_bindings`](PatternIndex::evaluate_edge_bindings):
    /// one shared traversal instead of one matcher walk per pattern,
    /// identical output.
    pub fn evaluate_edge_bindings_streaming(
        &mut self,
        doc: &Document,
        requested_edges: &HashMap<PatternId, Vec<(PatternNodeId, PatternNodeId)>>,
    ) -> Vec<(PatternId, Vec<EdgeBinding>)> {
        let pass = self.shared_pass(doc);
        self.edge_bindings_from_pass(doc, requested_edges, &pass)
    }

    /// Evaluate every registered pattern directly over XML text through the
    /// pull parser — the fused parse ⊕ Stage-1 pass, with no DOM built.
    /// Output is identical to parsing the text and calling
    /// [`evaluate_witnesses`](PatternIndex::evaluate_witnesses).
    pub fn evaluate_witnesses_streaming_text(
        &mut self,
        xml: &str,
    ) -> XmlResult<Vec<(PatternId, Vec<Witness>)>> {
        self.evaluated_last = self.live;
        self.skipped_last = 0;
        let (skel, pass) = self.automaton().pass_over_text(xml)?;
        let mut out = Vec::new();
        for (id, pattern) in self.patterns() {
            let Some(useful) = pass.useful(id) else {
                continue;
            };
            if useful.first().map_or(true, Vec::is_empty) {
                continue;
            }
            let matcher = PatternMatcher::new(pattern);
            let ws = matcher.witnesses_from_useful(&skel, useful);
            if !ws.is_empty() {
                out.push((id, ws));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_pattern;
    use mmqjp_xml::rss;

    fn book_doc() -> Document {
        rss::book_announcement(
            &["Danny Ayers"],
            "Beginning RSS and Atom Programming",
            &["Scripting & Programming"],
            "Wrox",
            "0764579169",
        )
    }

    fn blog_doc() -> Document {
        rss::blog_article(
            "Danny Ayers",
            "http://dannyayers.com/feed",
            "Beginning RSS and Atom Programming",
            "Book Announcement",
            "Just heard ...",
        )
    }

    #[test]
    fn register_dedupes_identical_patterns() {
        let mut idx = PatternIndex::new();
        let a = idx.register(parse_pattern("S//book->x1[.//author->x2]").unwrap());
        let b = idx.register(parse_pattern("S//book->x1[.//author->x2]").unwrap());
        let c = idx.register(parse_pattern("S//blog->x4[.//author->x5]").unwrap());
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(idx.len(), 2);
        assert!(!idx.is_empty());
        let stats = idx.stats();
        assert_eq!(stats.registered_blocks, 3);
        assert_eq!(stats.distinct_patterns, 2);
        assert_eq!(idx.pattern(a).root().test(), &NodeTest::tag("book"));
        assert_eq!(idx.patterns().count(), 2);
    }

    #[test]
    fn evaluate_witnesses_prefilters_by_root_tag() {
        let mut idx = PatternIndex::new();
        let book = idx.register(parse_pattern("S//book->x1[.//author->x2]").unwrap());
        let blog = idx.register(parse_pattern("S//blog->x4[.//author->x5]").unwrap());

        let results = idx.evaluate_witnesses(&book_doc());
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].0, book);
        assert_eq!(idx.stats().evaluated_last, 1);
        assert_eq!(idx.stats().skipped_last, 1);

        let results = idx.evaluate_witnesses(&blog_doc());
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].0, blog);
    }

    #[test]
    fn wildcard_root_is_never_prefiltered() {
        let mut idx = PatternIndex::new();
        idx.register(parse_pattern("S//*->x").unwrap());
        let results = idx.evaluate_witnesses(&book_doc());
        assert_eq!(results.len(), 1);
        assert_eq!(idx.stats().skipped_last, 0);
    }

    #[test]
    fn evaluate_edge_bindings_with_requested_edges() {
        let mut idx = PatternIndex::new();
        let id = idx.register(parse_pattern("S//book->x1[.//author->x2][.//title->x3]").unwrap());
        let mut requested = HashMap::new();
        // Only ask for the (book, title) edge.
        requested.insert(id, vec![(PatternNodeId(0), PatternNodeId(2))]);
        let results = idx.evaluate_edge_bindings(&book_doc(), &requested);
        assert_eq!(results.len(), 1);
        let bindings = &results[0].1;
        assert_eq!(bindings.len(), 1);
        assert_eq!(bindings[0].descendant_var, "x3");
    }

    #[test]
    fn evaluate_edge_bindings_defaults_to_all_edges() {
        let mut idx = PatternIndex::new();
        idx.register(parse_pattern("S//book->x1[.//author->x2][.//title->x3]").unwrap());
        let results = idx.evaluate_edge_bindings(&book_doc(), &HashMap::new());
        assert_eq!(results.len(), 1);
        // one author edge pair + one title edge pair
        assert_eq!(results[0].1.len(), 2);
    }

    #[test]
    fn unregister_is_refcounted_and_tombstones_slots() {
        let mut idx = PatternIndex::new();
        let a = idx.register(parse_pattern("S//book->x1[.//author->x2]").unwrap());
        let a2 = idx.register(parse_pattern("S//book->x1[.//author->x2]").unwrap());
        let b = idx.register(parse_pattern("S//blog->x4[.//author->x5]").unwrap());
        assert_eq!(a, a2);
        assert_eq!(idx.refcount(a), 2);
        assert_eq!(idx.refcount(b), 1);

        // First release: shared pattern survives.
        assert!(!idx.unregister(a));
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.refcount(a), 1);
        // Last release: pattern dropped, slot tombstoned, evaluation skips it.
        assert!(idx.unregister(a));
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.refcount(a), 0);
        let results = idx.evaluate_witnesses(&book_doc());
        assert!(results.is_empty());
        assert_eq!(idx.stats().evaluated_last, 0);
        assert_eq!(idx.stats().distinct_patterns, 1);

        // Re-registering the same structure allocates a fresh id; the old id
        // is never reused.
        let a3 = idx.register(parse_pattern("S//book->x1[.//author->x2]").unwrap());
        assert_ne!(a3, a);
        assert_eq!(a3.index(), 2);
        assert_eq!(idx.len(), 2);
        let results = idx.evaluate_witnesses(&book_doc());
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].0, a3);
    }

    #[test]
    #[should_panic(expected = "unregister of a dropped pattern")]
    fn unregister_of_dropped_pattern_panics() {
        let mut idx = PatternIndex::new();
        let a = idx.register(parse_pattern("S//book->x1").unwrap());
        assert!(idx.unregister(a));
        idx.unregister(a);
    }

    #[test]
    fn non_matching_patterns_are_omitted() {
        let mut idx = PatternIndex::new();
        idx.register(parse_pattern("S//book->x1[.//isbn->x9][.//missing->x8]").unwrap());
        let results = idx.evaluate_witnesses(&book_doc());
        assert!(results.is_empty());
    }
}
