//! # mmqjp-xpath
//!
//! Stage 1 of the MMQJP two-stage query processing pipeline: the **XPath
//! Evaluator**.
//!
//! The paper (Hong et al., SIGMOD 2007) leverages an existing XML
//! publish/subscribe engine (YFilter) to evaluate the *tree pattern
//! components* of all registered XSCL queries against each incoming XML
//! document, producing *witnesses* — bindings of the queries' variables to
//! document nodes. This crate is that component, built from scratch:
//!
//! * [`TreePattern`] / [`PatternNode`] — variable tree patterns supporting the
//!   XPath fragment used by XML pub/sub systems: child (`/`), descendant
//!   (`//`), wildcard (`*`), attributes (`@attr`) and nested predicates
//!   (`[...]`), with optional variable bindings (`->x1`) on any step.
//! * [`parse_pattern`] — parser for the textual form used in the paper's
//!   examples, e.g. `S//book->x1[.//author->x2][.//title->x3]`.
//! * [`PatternMatcher`] — evaluates one pattern against a document, producing
//!   full witnesses ([`Witness`]) and the factored *edge bindings*
//!   ([`EdgeBinding`]) that the Join Processor stores in its binary witness
//!   relations (`RbinW` / `Rbin`).
//! * [`PatternIndex`] — the multi-query front end: registers the tree
//!   patterns of many query blocks, de-duplicates structurally identical
//!   patterns (the dominant source of sharing in pub/sub workloads) and
//!   evaluates all of them over a document with a shared per-document tag
//!   index.
//! * [`PatternAutomaton`] — the streaming front end: all registered patterns
//!   compiled into one slot table whose bottom-up satisfiability pass runs
//!   in a **single** document traversal driven by open/close events, either
//!   replayed from a [`Document`](mmqjp_xml::Document) or pulled straight
//!   from XML text with no DOM in between ([`StreamSkeleton`] carries the
//!   flat per-element state the later passes need). Output is byte-identical
//!   to the per-pattern matcher, which stays the reference path.
//!
//! The matcher implements the standard two-pass algorithm for tree patterns:
//! a bottom-up *satisfiability* pass (which document nodes can root a match
//! of each pattern subtree) followed by a top-down *usefulness* pass (which
//! of those participate in at least one complete witness). Edge bindings are
//! then enumerated only between useful nodes, so a query block with an
//! unsatisfiable predicate correctly produces no bindings at all.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod automaton;
mod error;
mod index;
mod matcher;
mod parser;
mod pattern;
mod tree;
mod witness;

pub use automaton::{AutomatonRun, AutomatonScratch, PatternAutomaton, SharedPass};
pub use error::{XPathError, XPathResult};
pub use index::{PatternId, PatternIndex, PatternIndexStats};
pub use matcher::PatternMatcher;
pub use parser::{parse_path, parse_pattern};
pub use pattern::{Axis, NodeTest, PatternNode, PatternNodeId, TreePattern};
pub use tree::{ElementTree, StreamSkeleton};
pub use witness::{binding_string_value, EdgeBinding, Witness, WitnessSet};
