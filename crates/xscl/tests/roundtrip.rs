//! Round-trip tests for the XSCL front end on the paper's running example:
//! `parse → normalize → template` on Q1/Q2 (Table 2), display round-trips,
//! and error-path assertions for malformed query strings.

use mmqjp_xscl::{
    normalize_query, parse_query, JoinGraph, ReducedGraph, TemplateCatalog, XsclError,
};

/// Q1 of Table 2: book announcement followed by a blog article from one of
/// its authors with the same title.
const Q1: &str = "S//book->x1[.//author->x2][.//title->x3] \
    FOLLOWED BY{x2=x5 AND x3=x6, 1000} \
    S//blog->x4[.//author->x5][.//title->x6]";

/// Q2 of Table 2: same author, same category.
const Q2: &str = "S//book->x1[.//author->x2][.//category->x7] \
    FOLLOWED BY{x2=x5 AND x7=x8, 1000} \
    S//blog->x4[.//author->x5][.//category->x8]";

fn reduced_graph(text: &str) -> ReducedGraph {
    let parsed = parse_query(text).expect("paper query parses");
    let normalized = normalize_query(&parsed).expect("paper query normalizes");
    let graph = JoinGraph::from_query(&normalized.query).expect("join graph builds");
    ReducedGraph::from_join_graph(&graph)
}

#[test]
fn q1_parse_display_roundtrip() {
    let q = parse_query(Q1).unwrap();
    let q2 = parse_query(&q.to_string()).unwrap();
    assert_eq!(q.predicates(), q2.predicates());
    assert_eq!(q.window(), q2.window());
    assert_eq!(q.op(), q2.op());
    let (l, r) = q.blocks().unwrap();
    let (l2, r2) = q2.blocks().unwrap();
    assert_eq!(l.pattern.signature(), l2.pattern.signature());
    assert_eq!(r.pattern.signature(), r2.pattern.signature());
}

#[test]
fn q2_parse_display_roundtrip() {
    let q = parse_query(Q2).unwrap();
    let q2 = parse_query(&q.to_string()).unwrap();
    assert_eq!(q.predicates(), q2.predicates());
    assert_eq!(q.window(), q2.window());
    assert_eq!(q.op(), q2.op());
}

#[test]
fn q1_normalization_is_idempotent() {
    let q = parse_query(Q1).unwrap();
    let once = normalize_query(&q).unwrap().query;
    let twice = normalize_query(&once).unwrap().query;
    assert_eq!(once.predicates(), twice.predicates());
    let (l1, r1) = once.blocks().unwrap();
    let (l2, r2) = twice.blocks().unwrap();
    assert_eq!(l1.pattern.signature(), l2.pattern.signature());
    assert_eq!(r1.pattern.signature(), r2.pattern.signature());
}

#[test]
fn q1_and_q2_share_one_template() {
    // The paper's central observation (Table 3): Q1 and Q2 differ only in
    // which document fields they join, so their reduced join graphs are
    // isomorphic and they compile to the same query template.
    let g1 = reduced_graph(Q1);
    let g2 = reduced_graph(Q2);
    let mut catalog = TemplateCatalog::new();
    let m1 = catalog.insert(&g1);
    let m2 = catalog.insert(&g2);
    assert_eq!(m1.template, m2.template);
    assert_eq!(catalog.len(), 1);
    assert_eq!(catalog.memberships(), 2);
}

#[test]
fn template_round_trip_is_stable_across_catalogs() {
    // Inserting the same reduced graph into a fresh catalog finds the same
    // shape again: find() locates what insert() created.
    let g1 = reduced_graph(Q1);
    let mut catalog = TemplateCatalog::new();
    let m = catalog.insert(&g1);
    assert_eq!(catalog.find(&reduced_graph(Q1)), Some(m.template));
    assert_eq!(catalog.find(&reduced_graph(Q2)), Some(m.template));
}

// ---------------------------------------------------------------------------
// Error paths
// ---------------------------------------------------------------------------

#[test]
fn empty_query_is_a_parse_error() {
    assert!(matches!(parse_query(""), Err(XsclError::Parse { .. })));
    assert!(matches!(
        parse_query("   \t "),
        Err(XsclError::Parse { .. })
    ));
}

#[test]
fn missing_right_block_is_rejected() {
    // The text after the window clause is an empty pattern.
    let err = parse_query("S//book->x1[.//author->x2] FOLLOWED BY{x2=x5, 100}").unwrap_err();
    assert!(
        matches!(err, XsclError::Parse { .. } | XsclError::Pattern(_)),
        "got {err:?}"
    );
}

#[test]
fn malformed_window_is_a_parse_error() {
    let err = parse_query("S//a->x1[.//f->x2] FOLLOWED BY{x2=y2, banana} S//b->y1[.//f->y2]")
        .unwrap_err();
    assert!(matches!(err, XsclError::Parse { .. }), "got {err:?}");
}

#[test]
fn unbound_join_variable_is_rejected() {
    // `zz` appears in the join predicate but is bound in neither block.
    let result = parse_query("S//a->x1[.//f->x2] FOLLOWED BY{x2=zz, 100} S//b->y1[.//f->y2]")
        .and_then(|q| normalize_query(&q).map(|_| ()));
    match result {
        Err(XsclError::UnboundVariable { variable, .. }) => assert_eq!(variable, "zz"),
        other => panic!("expected UnboundVariable, got {other:?}"),
    }
}

#[test]
fn join_without_value_joins_is_rejected_by_normalization() {
    // The parser refuses an empty predicate list syntactically, so strip the
    // predicates from a parsed Q1 through the public AST.
    let mut q = parse_query(Q1).unwrap();
    if let mmqjp_xscl::FromClause::Join { predicates, .. } = &mut q.from {
        predicates.clear();
    } else {
        panic!("Q1 must parse to a join");
    }
    let err = normalize_query(&q).unwrap_err();
    assert!(matches!(err, XsclError::NoValueJoins), "got {err:?}");
}

#[test]
fn single_block_query_is_not_a_join() {
    // A pure tree-pattern subscription parses and normalizes, but is not a
    // join and has no join graph — Stage 2 never sees it.
    let q = parse_query("S//book->x1[.//author->x2]").unwrap();
    assert!(!q.is_join());
    assert!(!normalize_query(&q).unwrap().query.is_join());
    assert!(matches!(
        JoinGraph::from_query(&q),
        Err(XsclError::Unsupported { .. })
    ));
}

#[test]
fn error_display_is_informative() {
    let err = parse_query("").unwrap_err();
    let shown = err.to_string();
    assert!(
        shown.to_lowercase().contains("parse"),
        "display should mention parsing: {shown}"
    );
}
