//! # mmqjp-xscl
//!
//! The **XML Stream Conjunctive Language (XSCL)** — the query language of the
//! MMQJP publish/subscribe system (Hong et al., SIGMOD 2007, Section 2) —
//! together with the query-analysis machinery of Sections 4.1–4.2:
//!
//! * [`ast`] — the abstract syntax: query blocks (variable tree patterns from
//!   `mmqjp-xpath`), the `FOLLOWED BY` / `JOIN` window-join operators with
//!   conjunctive value-join predicates, `SELECT` and `PUBLISH` clauses.
//! * [`parser`] — a parser for the textual form used in the paper's Table 2,
//!   e.g.
//!   `S//book->x1[.//author->x2][.//title->x3] FOLLOWED BY{x2=x5 AND x3=x6, 100} S//blog->x4[.//author->x5][.//title->x6]`.
//! * [`normalize`] — the query-insertion rewrites the paper assumes:
//!   value-join normal form validation and canonical variable naming
//!   ("two variables with the same definition have the same name").
//! * [`join_graph`] — the join graph of a query: the two tree patterns
//!   (structural edges) plus value-join edges between bound nodes.
//! * [`minor`] — the graph-minor reduction rules of Section 4.2 that shrink a
//!   join graph to the part relevant for value-join processing.
//! * [`template`] — query templates: equivalence classes of queries with
//!   isomorphic reduced join graphs, plus the catalog that assigns every
//!   registered query to a template and produces its meta-variable
//!   assignment (the paper's `RT` tuple).
//! * [`enumerate`] — combinatorial enumeration of the possible templates for
//!   a given document schema and number of value joins (paper Table 3).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod enumerate;
mod error;
pub mod join_graph;
pub mod minor;
pub mod normalize;
pub mod parser;
pub mod template;

pub use ast::{
    FromClause, JoinOp, QueryBlock, QueryId, SelectClause, ValueJoin, Window, XsclQuery,
};
pub use error::{XsclError, XsclResult};
pub use join_graph::{JoinGraph, Side};
pub use minor::{ReducedGraph, ReducedNode, ReducedTree};
pub use normalize::normalize_query;
pub use parser::parse_query;
pub use template::{QueryTemplate, TemplateCatalog, TemplateId, TemplateMembership};
