//! Parser for the textual form of XSCL queries.
//!
//! The grammar accepted (whitespace-insensitive, keywords case-insensitive):
//!
//! ```text
//! query      := [ "SELECT" select ] [ "FROM" ] from [ "PUBLISH" name ]
//! select     := "*" | "BINDINGS"
//! from       := block [ op "{" predicates "," window "}" block ]
//! op         := "FOLLOWED BY" | "JOIN"
//! predicates := pred ( "AND" pred )*
//! pred       := var "=" var
//! window     := integer | "INF" | "COUNT" integer
//! block      := <tree pattern, see mmqjp-xpath>
//! ```
//!
//! Example (Q1 from the paper's Table 2, with a concrete window):
//!
//! ```text
//! S//book->x1[.//author->x2][.//title->x3]
//!   FOLLOWED BY{x2=x5 AND x3=x6, 100}
//! S//blog->x4[.//author->x5][.//title->x6]
//! ```

use crate::ast::{FromClause, JoinOp, QueryBlock, SelectClause, ValueJoin, Window, XsclQuery};
use crate::error::{XsclError, XsclResult};
use mmqjp_xpath::parse_pattern;

/// Parse an XSCL query from its textual form.
pub fn parse_query(input: &str) -> XsclResult<XsclQuery> {
    let text = input.trim();
    if text.is_empty() {
        return Err(XsclError::Parse {
            message: "empty query".to_owned(),
        });
    }

    // Split off SELECT ... FROM prefix.
    let (select, rest) = parse_select(text)?;
    // Split off PUBLISH suffix.
    let (body, publish) = parse_publish(rest)?;

    // Locate the join operator at the top level (outside any brackets).
    let op_location = find_operator(body);
    let from = match op_location {
        None => {
            let pattern = parse_pattern(body.trim())?;
            FromClause::Single(QueryBlock::new(pattern))
        }
        Some((op, op_start, op_end)) => {
            let left_text = body[..op_start].trim();
            let after_op = &body[op_end..];
            // Expect '{ predicates , window }' then the right block.
            let brace_open = after_op.find('{').ok_or_else(|| XsclError::Parse {
                message: format!("expected '{{' after {op}"),
            })?;
            let brace_close = after_op.find('}').ok_or_else(|| XsclError::Parse {
                message: "unclosed '{' in join operator parameters".to_owned(),
            })?;
            if brace_close < brace_open {
                return Err(XsclError::Parse {
                    message: "malformed join operator parameters".to_owned(),
                });
            }
            let params = &after_op[brace_open + 1..brace_close];
            let right_text = after_op[brace_close + 1..].trim();
            let (predicates, window) = parse_params(params)?;
            let left = QueryBlock::new(parse_pattern(left_text)?);
            let right = QueryBlock::new(parse_pattern(right_text)?);
            FromClause::Join {
                left,
                op,
                predicates,
                window,
                right,
            }
        }
    };

    Ok(XsclQuery {
        id: Default::default(),
        select,
        from,
        publish,
    })
}

/// Parse an optional `SELECT ... FROM` prefix, returning the select clause
/// and the remainder of the input.
fn parse_select(text: &str) -> XsclResult<(SelectClause, &str)> {
    let upper = text.to_ascii_uppercase();
    if !upper.starts_with("SELECT") {
        // A bare FROM is also allowed.
        if let Some(stripped) = strip_keyword(text, "FROM") {
            return Ok((SelectClause::Star, stripped));
        }
        return Ok((SelectClause::Star, text));
    }
    let after_select = text["SELECT".len()..].trim_start();
    let upper_after = after_select.to_ascii_uppercase();
    let from_pos = upper_after.find("FROM").ok_or_else(|| XsclError::Parse {
        message: "SELECT clause without FROM".to_owned(),
    })?;
    let select_text = after_select[..from_pos].trim();
    let select = match select_text.to_ascii_uppercase().as_str() {
        "*" | "" => SelectClause::Star,
        "BINDINGS" => SelectClause::Bindings,
        other => {
            return Err(XsclError::Parse {
                message: format!("unsupported SELECT clause `{other}`"),
            })
        }
    };
    Ok((select, after_select[from_pos + "FROM".len()..].trim_start()))
}

/// Parse an optional `PUBLISH name` suffix.
fn parse_publish(text: &str) -> XsclResult<(&str, Option<String>)> {
    let upper = text.to_ascii_uppercase();
    if let Some(pos) = upper.rfind("PUBLISH") {
        // Make sure PUBLISH is a standalone keyword (preceded by whitespace).
        let is_keyword = pos == 0
            || text[..pos]
                .chars()
                .next_back()
                .map(|c| c.is_whitespace())
                .unwrap_or(false);
        if is_keyword {
            let name = text[pos + "PUBLISH".len()..].trim();
            if name.is_empty() {
                return Err(XsclError::Parse {
                    message: "PUBLISH clause without a stream name".to_owned(),
                });
            }
            return Ok((text[..pos].trim_end(), Some(name.to_owned())));
        }
    }
    Ok((text, None))
}

fn strip_keyword<'a>(text: &'a str, keyword: &str) -> Option<&'a str> {
    let upper = text.to_ascii_uppercase();
    if upper.starts_with(keyword) {
        Some(text[keyword.len()..].trim_start())
    } else {
        None
    }
}

/// Find the top-level join operator keyword, returning `(op, start, end)`
/// byte offsets of the keyword itself. Operators inside brackets (pattern
/// predicates) are ignored.
fn find_operator(text: &str) -> Option<(JoinOp, usize, usize)> {
    let upper = text.to_ascii_uppercase();
    let bytes = upper.as_bytes();
    let mut depth = 0i32;
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'[' | b'{' => depth += 1,
            b']' | b'}' => depth -= 1,
            _ if depth == 0 => {
                // A keyword must start at a word boundary (start of input or
                // after a non-identifier character) so that tag names such as
                // `joint` are not mistaken for operators.
                let at_boundary = i == 0
                    || !upper[..i]
                        .chars()
                        .next_back()
                        .map(|c| c.is_ascii_alphanumeric() || c == '_')
                        .unwrap_or(false);
                if at_boundary && upper[i..].starts_with("FOLLOWED") {
                    // Allow arbitrary whitespace between FOLLOWED and BY.
                    let rest = &upper[i + "FOLLOWED".len()..];
                    let trimmed = rest.trim_start();
                    if trimmed.starts_with("BY") {
                        let ws = rest.len() - trimmed.len();
                        let end = i + "FOLLOWED".len() + ws + "BY".len();
                        if !upper[end..]
                            .chars()
                            .next()
                            .map(|c| c.is_ascii_alphanumeric() || c == '_')
                            .unwrap_or(false)
                        {
                            return Some((JoinOp::FollowedBy, i, end));
                        }
                    }
                }
                if at_boundary && upper[i..].starts_with("JOIN") {
                    let end = i + "JOIN".len();
                    if !upper[end..]
                        .chars()
                        .next()
                        .map(|c| c.is_ascii_alphanumeric() || c == '_')
                        .unwrap_or(false)
                    {
                        return Some((JoinOp::Join, i, end));
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Parse the `{predicates, window}` parameter list (without the braces).
fn parse_params(params: &str) -> XsclResult<(Vec<ValueJoin>, Window)> {
    let last_comma = params.rfind(',').ok_or_else(|| XsclError::Parse {
        message: "join operator parameters must be `{predicates, window}`".to_owned(),
    })?;
    let pred_text = params[..last_comma].trim();
    let window_text = params[last_comma + 1..].trim();
    let window = parse_window(window_text)?;
    let mut predicates = Vec::new();
    for part in pred_text.split_terminator("AND") {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let eq = part.find('=').ok_or_else(|| XsclError::Parse {
            message: format!("value-join predicate `{part}` is not an equality"),
        })?;
        let left = part[..eq].trim();
        let right = part[eq + 1..].trim();
        if left.is_empty() || right.is_empty() {
            return Err(XsclError::Parse {
                message: format!("malformed value-join predicate `{part}`"),
            });
        }
        predicates.push(ValueJoin::new(left, right));
    }
    if predicates.is_empty() {
        return Err(XsclError::Parse {
            message: "join operator has no value-join predicates".to_owned(),
        });
    }
    Ok((predicates, window))
}

fn parse_window(text: &str) -> XsclResult<Window> {
    let upper = text.to_ascii_uppercase();
    if upper == "INF" || upper == "INFINITY" || upper == "*" {
        return Ok(Window::Infinite);
    }
    if let Some(rest) = upper.strip_prefix("COUNT") {
        let n: u64 = rest.trim().parse().map_err(|_| XsclError::Parse {
            message: format!("invalid COUNT window `{text}`"),
        })?;
        return Ok(Window::Count(n));
    }
    let t: u64 = upper.parse().map_err(|_| XsclError::Parse {
        message: format!("invalid window `{text}` (expected an integer, INF, or COUNT n)"),
    })?;
    Ok(Window::Time(t))
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q1: &str = "S//book->x1[.//author->x2][.//title->x3] \
        FOLLOWED BY{x2=x5 AND x3=x6, 100} \
        S//blog->x4[.//author->x5][.//title->x6]";

    #[test]
    fn parse_q1() {
        let q = parse_query(Q1).unwrap();
        assert!(q.is_join());
        assert_eq!(q.op(), Some(JoinOp::FollowedBy));
        assert_eq!(q.window(), Some(Window::Time(100)));
        assert_eq!(q.predicates().len(), 2);
        assert_eq!(q.predicates()[0], ValueJoin::new("x2", "x5"));
        assert_eq!(q.predicates()[1], ValueJoin::new("x3", "x6"));
        let (l, r) = q.blocks().unwrap();
        assert!(l.pattern.binds("x1"));
        assert!(r.pattern.binds("x6"));
        assert_eq!(q.select, SelectClause::Star);
        assert!(q.publish.is_none());
    }

    #[test]
    fn parse_q3_self_join_shape() {
        // Q3: a pair of blog postings by the same author and title.
        let text = "S//blog->x4[.//author->x5][.//title->x6] \
            FOLLOWED BY{x5=x5' AND x6=x6', 50} \
            S//blog->x4'[.//author->x5'][.//title->x6']";
        let q = parse_query(text).unwrap();
        assert_eq!(q.predicates().len(), 2);
        assert_eq!(q.predicates()[0], ValueJoin::new("x5", "x5'"));
        let (l, r) = q.blocks().unwrap();
        assert_ne!(l.pattern.signature(), r.pattern.signature());
        // Same structural shape, different variable names.
        assert!(l.pattern.binds("x5"));
        assert!(r.pattern.binds("x5'"));
    }

    #[test]
    fn parse_with_select_and_publish() {
        let text = format!("SELECT * FROM {Q1} PUBLISH matches");
        let q = parse_query(&text).unwrap();
        assert_eq!(q.select, SelectClause::Star);
        assert_eq!(q.publish.as_deref(), Some("matches"));
        assert!(q.is_join());
    }

    #[test]
    fn parse_select_bindings() {
        let text = format!("SELECT BINDINGS FROM {Q1}");
        let q = parse_query(&text).unwrap();
        assert_eq!(q.select, SelectClause::Bindings);
    }

    #[test]
    fn parse_bare_from_keyword() {
        let text = format!("FROM {Q1}");
        assert!(parse_query(&text).unwrap().is_join());
    }

    #[test]
    fn parse_join_operator() {
        let text = "S//item->a[.//title->t1] JOIN{t1=t2, INF} S//item->b[.//title->t2]";
        let q = parse_query(text).unwrap();
        assert_eq!(q.op(), Some(JoinOp::Join));
        assert_eq!(q.window(), Some(Window::Infinite));
    }

    #[test]
    fn parse_count_window() {
        let text = "S//item->a[.//title->t1] JOIN{t1=t2, COUNT 1000} S//item->b[.//title->t2]";
        let q = parse_query(text).unwrap();
        assert_eq!(q.window(), Some(Window::Count(1000)));
    }

    #[test]
    fn parse_single_block_subscription() {
        let q = parse_query("S//blog[.//author]").unwrap();
        assert!(!q.is_join());
    }

    #[test]
    fn parse_single_block_with_publish() {
        let q = parse_query("S//blog PUBLISH blogs").unwrap();
        assert!(!q.is_join());
        assert_eq!(q.publish.as_deref(), Some("blogs"));
    }

    #[test]
    fn error_empty_query() {
        assert!(matches!(parse_query("  "), Err(XsclError::Parse { .. })));
    }

    #[test]
    fn error_missing_brace() {
        let text = "S//a->x FOLLOWED BY x=y, 10 S//b->y";
        assert!(matches!(parse_query(text), Err(XsclError::Parse { .. })));
    }

    #[test]
    fn error_unclosed_brace() {
        let text = "S//a->x FOLLOWED BY{x=y, 10 S//b->y";
        assert!(matches!(parse_query(text), Err(XsclError::Parse { .. })));
    }

    #[test]
    fn error_no_predicates() {
        let text = "S//a->x FOLLOWED BY{ , 10} S//b->y";
        assert!(matches!(parse_query(text), Err(XsclError::Parse { .. })));
    }

    #[test]
    fn error_bad_window() {
        let text = "S//a->x FOLLOWED BY{x=y, soon} S//b->y";
        assert!(matches!(parse_query(text), Err(XsclError::Parse { .. })));
    }

    #[test]
    fn error_bad_predicate() {
        let text = "S//a->x FOLLOWED BY{x < y, 10} S//b->y";
        assert!(matches!(parse_query(text), Err(XsclError::Parse { .. })));
    }

    #[test]
    fn error_select_without_from() {
        assert!(matches!(
            parse_query("SELECT * S//a"),
            Err(XsclError::Parse { .. })
        ));
    }

    #[test]
    fn error_publish_without_name() {
        let text = "S//a PUBLISH ";
        assert!(matches!(parse_query(text), Err(XsclError::Parse { .. })));
    }

    #[test]
    fn error_bad_pattern_in_block() {
        let text = "S//a->x FOLLOWED BY{x=y, 10} ???";
        assert!(matches!(parse_query(text), Err(XsclError::Pattern(_))));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let text = "select * from S//a->x followed by{x=y, 10} S//b->y publish out";
        let q = parse_query(text).unwrap();
        assert_eq!(q.op(), Some(JoinOp::FollowedBy));
        assert_eq!(q.publish.as_deref(), Some("out"));
    }

    #[test]
    fn roundtrip_display_parse() {
        let q = parse_query(Q1).unwrap();
        let s = q.to_string();
        let q2 = parse_query(&s).unwrap();
        assert_eq!(q.predicates(), q2.predicates());
        assert_eq!(q.window(), q2.window());
        assert_eq!(q.op(), q2.op());
    }
}
