//! Abstract syntax of XSCL queries.

use mmqjp_xpath::TreePattern;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a registered continuous query.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct QueryId(pub u64);

impl QueryId {
    /// The raw numeric id.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}", self.0)
    }
}

/// The window constraint `T` of a join operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Window {
    /// No constraint: any pair of events joins regardless of distance. Used
    /// by the paper's RSS experiment (`T = ∞`).
    Infinite,
    /// Time-based window: the two events' timestamps must differ by at most
    /// this many time units.
    Time(u64),
    /// Tuple-based window: the previous event must be among the most recent
    /// `n` events (an extension mentioned in Section 2 of the paper).
    Count(u64),
}

impl Window {
    /// `true` when the difference `delta` (in time units, current minus
    /// previous) satisfies this window for a time-based interpretation.
    pub fn accepts_delta(&self, delta: u64) -> bool {
        match self {
            Window::Infinite => true,
            Window::Time(t) => delta <= *t,
            // Count windows are enforced by state pruning, not by timestamp
            // deltas; at evaluation time they accept any delta.
            Window::Count(_) => true,
        }
    }
}

impl fmt::Display for Window {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Window::Infinite => write!(f, "INF"),
            Window::Time(t) => write!(f, "{t}"),
            Window::Count(n) => write!(f, "COUNT {n}"),
        }
    }
}

/// The join operator connecting the two query blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JoinOp {
    /// `FOLLOWED BY{pred, T}` — the left block's event must occur strictly
    /// before the right block's event, within the window.
    FollowedBy,
    /// `JOIN{pred, T}` — symmetric window join: the two events must occur
    /// within the window of each other, in either order.
    Join,
}

impl fmt::Display for JoinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinOp::FollowedBy => write!(f, "FOLLOWED BY"),
            JoinOp::Join => write!(f, "JOIN"),
        }
    }
}

/// A single value-join predicate `left_var = right_var` between a variable
/// bound in the left query block and one bound in the right query block.
/// Equality is on the XPath string values of the bound nodes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ValueJoin {
    /// Variable from the left (earlier) query block.
    pub left_var: String,
    /// Variable from the right (later / current) query block.
    pub right_var: String,
}

impl ValueJoin {
    /// Construct a value join.
    pub fn new(left_var: impl Into<String>, right_var: impl Into<String>) -> Self {
        ValueJoin {
            left_var: left_var.into(),
            right_var: right_var.into(),
        }
    }
}

impl fmt::Display for ValueJoin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.left_var, self.right_var)
    }
}

/// An XPath query block: the structural component matched against a single
/// document.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QueryBlock {
    /// The variable tree pattern (includes the stream name, if any).
    pub pattern: TreePattern,
}

impl QueryBlock {
    /// Construct a query block from a pattern.
    pub fn new(pattern: TreePattern) -> Self {
        QueryBlock { pattern }
    }

    /// The stream the block reads from.
    pub fn stream(&self) -> Option<&str> {
        self.pattern.stream()
    }
}

impl fmt::Display for QueryBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.pattern)
    }
}

/// The `SELECT` clause. The default (`SELECT *`) constructs an output
/// document with a new root whose children are the root bindings of the two
/// query blocks (Section 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SelectClause {
    /// `SELECT *` / omitted — the default output construction.
    #[default]
    Star,
    /// Output only the document ids and node bindings (no XML construction).
    /// Useful for high-throughput subscriptions that post-process matches.
    Bindings,
}

impl fmt::Display for SelectClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectClause::Star => write!(f, "SELECT *"),
            SelectClause::Bindings => write!(f, "SELECT BINDINGS"),
        }
    }
}

/// The `FROM` clause: either a single query block (a plain tree-pattern
/// subscription) or two blocks connected by a join operator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FromClause {
    /// A single query block with no join.
    Single(QueryBlock),
    /// Two query blocks connected by a window-join operator.
    Join {
        /// The left (earlier, for `FOLLOWED BY`) query block.
        left: QueryBlock,
        /// The join operator.
        op: JoinOp,
        /// Conjunction of value-join predicates.
        predicates: Vec<ValueJoin>,
        /// The window constraint.
        window: Window,
        /// The right (later / current) query block.
        right: QueryBlock,
    },
}

/// A complete XSCL query.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct XsclQuery {
    /// The query id (assigned at registration time; defaults to 0).
    pub id: QueryId,
    /// The `SELECT` clause.
    pub select: SelectClause,
    /// The `FROM` clause.
    pub from: FromClause,
    /// The `PUBLISH` clause: the name of the query's output stream.
    pub publish: Option<String>,
}

impl XsclQuery {
    /// Construct an inter-document join query with the default `SELECT` and
    /// no `PUBLISH` clause.
    pub fn join(
        left: QueryBlock,
        op: JoinOp,
        predicates: Vec<ValueJoin>,
        window: Window,
        right: QueryBlock,
    ) -> Self {
        XsclQuery {
            id: QueryId::default(),
            select: SelectClause::Star,
            from: FromClause::Join {
                left,
                op,
                predicates,
                window,
                right,
            },
            publish: None,
        }
    }

    /// Construct a single-block subscription.
    pub fn single(block: QueryBlock) -> Self {
        XsclQuery {
            id: QueryId::default(),
            select: SelectClause::Star,
            from: FromClause::Single(block),
            publish: None,
        }
    }

    /// Set the query id (builder style).
    pub fn with_id(mut self, id: QueryId) -> Self {
        self.id = id;
        self
    }

    /// Set the publish name (builder style).
    pub fn with_publish(mut self, name: impl Into<String>) -> Self {
        self.publish = Some(name.into());
        self
    }

    /// `true` when the query is an inter-document join query.
    pub fn is_join(&self) -> bool {
        matches!(self.from, FromClause::Join { .. })
    }

    /// The value-join predicates (empty for single-block queries).
    pub fn predicates(&self) -> &[ValueJoin] {
        match &self.from {
            FromClause::Single(_) => &[],
            FromClause::Join { predicates, .. } => predicates,
        }
    }

    /// The window (None for single-block queries).
    pub fn window(&self) -> Option<Window> {
        match &self.from {
            FromClause::Single(_) => None,
            FromClause::Join { window, .. } => Some(*window),
        }
    }

    /// The join operator (None for single-block queries).
    pub fn op(&self) -> Option<JoinOp> {
        match &self.from {
            FromClause::Single(_) => None,
            FromClause::Join { op, .. } => Some(*op),
        }
    }

    /// The left and right query blocks of a join query.
    pub fn blocks(&self) -> Option<(&QueryBlock, &QueryBlock)> {
        match &self.from {
            FromClause::Single(_) => None,
            FromClause::Join { left, right, .. } => Some((left, right)),
        }
    }
}

impl fmt::Display for XsclQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.from {
            FromClause::Single(b) => write!(f, "{b}")?,
            FromClause::Join {
                left,
                op,
                predicates,
                window,
                right,
            } => {
                let preds: Vec<String> = predicates.iter().map(|p| p.to_string()).collect();
                write!(
                    f,
                    "{left} {op}{{{} , {window}}} {right}",
                    preds.join(" AND ")
                )?;
            }
        }
        if let Some(p) = &self.publish {
            write!(f, " PUBLISH {p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmqjp_xpath::parse_pattern;

    fn q1() -> XsclQuery {
        let left =
            QueryBlock::new(parse_pattern("S//book->x1[.//author->x2][.//title->x3]").unwrap());
        let right =
            QueryBlock::new(parse_pattern("S//blog->x4[.//author->x5][.//title->x6]").unwrap());
        XsclQuery::join(
            left,
            JoinOp::FollowedBy,
            vec![ValueJoin::new("x2", "x5"), ValueJoin::new("x3", "x6")],
            Window::Time(100),
            right,
        )
        .with_id(QueryId(1))
    }

    #[test]
    fn join_query_accessors() {
        let q = q1();
        assert!(q.is_join());
        assert_eq!(q.id, QueryId(1));
        assert_eq!(q.id.to_string(), "Q1");
        assert_eq!(q.predicates().len(), 2);
        assert_eq!(q.window(), Some(Window::Time(100)));
        assert_eq!(q.op(), Some(JoinOp::FollowedBy));
        let (l, r) = q.blocks().unwrap();
        assert_eq!(l.stream(), Some("S"));
        assert_eq!(r.stream(), Some("S"));
        assert_eq!(q.select, SelectClause::Star);
    }

    #[test]
    fn single_query_accessors() {
        let q = XsclQuery::single(QueryBlock::new(parse_pattern("S//blog").unwrap()));
        assert!(!q.is_join());
        assert!(q.predicates().is_empty());
        assert_eq!(q.window(), None);
        assert_eq!(q.op(), None);
        assert!(q.blocks().is_none());
    }

    #[test]
    fn window_accepts_delta() {
        assert!(Window::Infinite.accepts_delta(u64::MAX));
        assert!(Window::Time(10).accepts_delta(10));
        assert!(!Window::Time(10).accepts_delta(11));
        assert!(Window::Count(5).accepts_delta(1_000_000));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Window::Infinite.to_string(), "INF");
        assert_eq!(Window::Time(5).to_string(), "5");
        assert_eq!(Window::Count(3).to_string(), "COUNT 3");
        assert_eq!(JoinOp::FollowedBy.to_string(), "FOLLOWED BY");
        assert_eq!(JoinOp::Join.to_string(), "JOIN");
        assert_eq!(ValueJoin::new("a", "b").to_string(), "a=b");
        assert_eq!(SelectClause::Star.to_string(), "SELECT *");
        assert_eq!(SelectClause::Bindings.to_string(), "SELECT BINDINGS");
        let s = q1().with_publish("out").to_string();
        assert!(s.contains("FOLLOWED BY"));
        assert!(s.contains("x2=x5"));
        assert!(s.contains("PUBLISH out"));
    }

    #[test]
    fn builder_style_setters() {
        let q = q1().with_publish("matched");
        assert_eq!(q.publish.as_deref(), Some("matched"));
    }
}
