//! Query templates (Sections 4.1–4.2 of the paper).
//!
//! Two queries belong to the same *query template* exactly when their reduced
//! join graphs are isomorphic (respecting sides, tree structure, edge axis
//! labels and value-join edges). All queries of one template are evaluated by
//! a single relational conjunctive query in the Join Processor; the
//! per-query differences (which concrete variables play which role, the
//! window length) are data in the template's `RT` relation.
//!
//! [`TemplateCatalog`] maintains the set of templates discovered so far.
//! Insertion buckets candidates by a cheap invariant and then runs an exact
//! isomorphism test (backtracking over the tiny reduced graphs), so the
//! catalog is *sound*: queries are never merged into a template whose join
//! structure differs from theirs.

use crate::join_graph::Side;
use crate::minor::ReducedGraph;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a query template within a catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TemplateId(pub u32);

impl TemplateId {
    /// Raw index.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Raw index as usize.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TemplateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A query template: the representative reduced join graph of its equivalence
/// class, with node positions acting as meta-variables.
///
/// Meta-variable numbering follows the paper's Figure 5: left-tree nodes
/// first (in the representative's construction order), then right-tree
/// nodes. Meta-variable `i` is displayed as `var{i+1}`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryTemplate {
    /// The template id.
    pub id: TemplateId,
    /// The representative reduced graph.
    pub graph: ReducedGraph,
}

impl QueryTemplate {
    /// Total number of meta-variables (nodes of both sides).
    pub fn num_meta_vars(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Number of meta-variables on the left side.
    pub fn num_left(&self) -> usize {
        self.graph.left.len()
    }

    /// Number of meta-variables on the right side.
    pub fn num_right(&self) -> usize {
        self.graph.right.len()
    }

    /// Display name of a meta-variable position (`var1`, `var2`, ...).
    pub fn meta_var_name(&self, position: usize) -> String {
        format!("var{}", position + 1)
    }

    /// The (side, within-side index) of a global meta-variable position.
    pub fn position_side(&self, position: usize) -> (Side, usize) {
        if position < self.num_left() {
            (Side::Left, position)
        } else {
            (Side::Right, position - self.num_left())
        }
    }

    /// Global meta-variable position of a (side, within-side index) pair.
    pub fn global_position(&self, side: Side, idx: usize) -> usize {
        match side {
            Side::Left => idx,
            Side::Right => self.num_left() + idx,
        }
    }

    /// Structural edges of the template as global meta-variable position
    /// pairs `(parent, child)`, left side first.
    pub fn structural_edges(&self) -> Vec<(usize, usize, Side)> {
        let mut out = Vec::new();
        for (p, c) in self.graph.left.edges() {
            out.push((p, c, Side::Left));
        }
        for (p, c) in self.graph.right.edges() {
            out.push((
                self.global_position(Side::Right, p),
                self.global_position(Side::Right, c),
                Side::Right,
            ));
        }
        out
    }

    /// Value-join edges as global meta-variable position pairs
    /// `(left position, right position)`.
    pub fn value_edges(&self) -> Vec<(usize, usize)> {
        self.graph
            .value_edges
            .iter()
            .map(|&(l, r)| (l, self.global_position(Side::Right, r)))
            .collect()
    }
}

/// The result of registering one query's reduced graph in the catalog: which
/// template it belongs to and how its variables map onto the template's
/// meta-variable positions. `assignment[i]` is the query's (canonical)
/// variable name that plays the role of meta-variable `i`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TemplateMembership {
    /// The template the query belongs to.
    pub template: TemplateId,
    /// Per meta-variable position, the query's variable name.
    pub assignment: Vec<String>,
}

/// The catalog of all templates discovered so far.
///
/// Templates can be [`remove`](TemplateCatalog::remove)d when their last
/// member query departs: the slot is tombstoned (ids are never reused) and
/// the structure stops matching future inserts, so a later isomorphic query
/// starts a fresh template.
#[derive(Debug, Clone, Default)]
pub struct TemplateCatalog {
    /// Template slots; `None` marks a retired template (boxed so the
    /// tombstone costs a pointer under unbounded churn).
    templates: Vec<Option<Box<QueryTemplate>>>,
    by_invariant: HashMap<String, Vec<TemplateId>>,
    live: usize,
    memberships: usize,
}

impl TemplateCatalog {
    /// Create an empty catalog.
    pub fn new() -> Self {
        TemplateCatalog::default()
    }

    /// Number of distinct live templates.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when no live templates exist.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of successful `insert` calls (registered query orientations).
    pub fn memberships(&self) -> usize {
        self.memberships
    }

    /// A template by id. Panics for retired (removed) ids.
    pub fn template(&self, id: TemplateId) -> &QueryTemplate {
        self.templates[id.index()]
            .as_deref()
            .expect("template id refers to a retired template")
    }

    /// Iterate over all live templates.
    pub fn templates(&self) -> impl Iterator<Item = &QueryTemplate> {
        self.templates.iter().filter_map(|t| t.as_deref())
    }

    /// Retire a template whose last member query departed. The slot is
    /// tombstoned — the id is never reused — and the structure will no
    /// longer be found by [`find`](TemplateCatalog::find) or matched by
    /// future inserts. Returns the removed template, or `None` when the id
    /// was already retired.
    pub fn remove(&mut self, id: TemplateId) -> Option<QueryTemplate> {
        let template = *self.templates.get_mut(id.index())?.take()?;
        self.live -= 1;
        let invariant = template.graph.invariant();
        if let Some(candidates) = self.by_invariant.get_mut(&invariant) {
            candidates.retain(|&tid| tid != id);
            if candidates.is_empty() {
                self.by_invariant.remove(&invariant);
            }
        }
        Some(template)
    }

    /// Register a query's reduced graph: find the template it belongs to (or
    /// create one) and return the membership.
    pub fn insert(&mut self, graph: &ReducedGraph) -> TemplateMembership {
        self.memberships += 1;
        let invariant = graph.invariant();
        if let Some(candidates) = self.by_invariant.get(&invariant) {
            for &tid in candidates {
                let template = self.templates[tid.index()]
                    .as_deref()
                    .expect("by_invariant only references live templates");
                if let Some(mapping) = isomorphism(graph, &template.graph) {
                    // mapping[i] = template position of graph position i.
                    // We need assignment[j] = variable of the graph node
                    // mapped to template position j.
                    let mut assignment = vec![String::new(); template.num_meta_vars()];
                    for (graph_pos, &template_pos) in mapping.iter().enumerate() {
                        assignment[template_pos] = graph_variable(graph, graph_pos).to_owned();
                    }
                    return TemplateMembership {
                        template: tid,
                        assignment,
                    };
                }
            }
        }
        // New template: the graph itself is the representative; the identity
        // mapping gives the assignment.
        let id = TemplateId(self.templates.len() as u32);
        let template = QueryTemplate {
            id,
            graph: graph.clone(),
        };
        let assignment: Vec<String> = (0..template.num_meta_vars())
            .map(|i| graph_variable(graph, i).to_owned())
            .collect();
        self.templates.push(Some(Box::new(template)));
        self.live += 1;
        self.by_invariant.entry(invariant).or_default().push(id);
        TemplateMembership {
            template: id,
            assignment,
        }
    }

    /// Check whether a graph already has a matching live template, without
    /// inserting.
    pub fn find(&self, graph: &ReducedGraph) -> Option<TemplateId> {
        let invariant = graph.invariant();
        let candidates = self.by_invariant.get(&invariant)?;
        candidates
            .iter()
            .copied()
            .find(|tid| isomorphism(graph, &self.template(*tid).graph).is_some())
    }
}

/// The variable at a global node position of a reduced graph (left nodes
/// first, then right nodes).
fn graph_variable(graph: &ReducedGraph, position: usize) -> &str {
    if position < graph.left.len() {
        &graph.left.nodes[position].variable
    } else {
        &graph.right.nodes[position - graph.left.len()].variable
    }
}

/// Find an isomorphism from `a` to `b`, returning for each global node
/// position of `a` the corresponding global position of `b`. The isomorphism
/// must map left to left and right to right, preserve parent/child structure,
/// edge axis labels, join-node flags and the value-edge set.
pub fn isomorphism(a: &ReducedGraph, b: &ReducedGraph) -> Option<Vec<usize>> {
    if a.left.len() != b.left.len()
        || a.right.len() != b.right.len()
        || a.value_edges.len() != b.value_edges.len()
    {
        return None;
    }
    let nl = a.left.len();
    let total = a.num_nodes();

    // Per-node candidate compatibility (side, axis, join flag, value degree,
    // parent handled during search).
    let side_of = |pos: usize| if pos < nl { Side::Left } else { Side::Right };
    let local = |pos: usize| if pos < nl { pos } else { pos - nl };
    let node_of = |g: &ReducedGraph, pos: usize| -> crate::minor::ReducedNode {
        if pos < nl {
            g.left.nodes[pos].clone()
        } else {
            g.right.nodes[pos - nl].clone()
        }
    };

    let a_value_edges: std::collections::HashSet<(usize, usize)> =
        a.value_edges.iter().map(|&(l, r)| (l, nl + r)).collect();
    let b_value_edges: std::collections::HashSet<(usize, usize)> =
        b.value_edges.iter().map(|&(l, r)| (l, nl + r)).collect();

    // mapping[a_pos] = Some(b_pos)
    let mut mapping: Vec<Option<usize>> = vec![None; total];
    let mut used: Vec<bool> = vec![false; total];

    // Order: left positions then right positions (parents precede children in
    // ReducedTree construction order, so a node's parent is always mapped
    // before the node itself).
    #[allow(clippy::too_many_arguments)]
    fn backtrack(
        pos: usize,
        total: usize,
        nl: usize,
        a: &ReducedGraph,
        b: &ReducedGraph,
        a_value_edges: &std::collections::HashSet<(usize, usize)>,
        b_value_edges: &std::collections::HashSet<(usize, usize)>,
        mapping: &mut Vec<Option<usize>>,
        used: &mut Vec<bool>,
        side_of: &dyn Fn(usize) -> Side,
        local: &dyn Fn(usize) -> usize,
        node_of: &dyn Fn(&ReducedGraph, usize) -> crate::minor::ReducedNode,
    ) -> bool {
        if pos == total {
            return true;
        }
        let a_node = node_of(a, pos);
        let side = side_of(pos);
        for b_pos in 0..total {
            if used[b_pos] || side_of(b_pos) != side {
                continue;
            }
            let b_node = node_of(b, b_pos);
            if a_node.is_join_node != b_node.is_join_node || a_node.axis != b_node.axis {
                continue;
            }
            if a.value_degree(side, local(pos)) != b.value_degree(side, local(b_pos)) {
                continue;
            }
            // Parent consistency.
            let a_parent_global = a_node
                .parent
                .map(|p| if side == Side::Left { p } else { nl + p });
            let b_parent_global = b_node
                .parent
                .map(|p| if side == Side::Left { p } else { nl + p });
            match (a_parent_global, b_parent_global) {
                (None, None) => {}
                (Some(ap), Some(bp)) => {
                    if mapping[ap] != Some(bp) {
                        continue;
                    }
                }
                _ => continue,
            }
            // Value-edge consistency with already-mapped opposite-side nodes.
            let mut consistent = true;
            for &(l, r) in a_value_edges.iter() {
                let (this, other) = if side == Side::Left { (l, r) } else { (r, l) };
                if this != pos {
                    continue;
                }
                if let Some(mapped_other) = mapping[other] {
                    let edge = if side == Side::Left {
                        (b_pos, mapped_other)
                    } else {
                        (mapped_other, b_pos)
                    };
                    if !b_value_edges.contains(&edge) {
                        consistent = false;
                        break;
                    }
                }
            }
            if !consistent {
                continue;
            }
            mapping[pos] = Some(b_pos);
            used[b_pos] = true;
            if backtrack(
                pos + 1,
                total,
                nl,
                a,
                b,
                a_value_edges,
                b_value_edges,
                mapping,
                used,
                side_of,
                local,
                node_of,
            ) {
                return true;
            }
            mapping[pos] = None;
            used[b_pos] = false;
        }
        false
    }

    if backtrack(
        0,
        total,
        nl,
        a,
        b,
        &a_value_edges,
        &b_value_edges,
        &mut mapping,
        &mut used,
        &side_of,
        &local,
        &node_of,
    ) {
        // Final sanity check: value-edge sets must correspond exactly.
        let mapped: std::collections::HashSet<(usize, usize)> = a_value_edges
            .iter()
            .map(|&(l, r)| (mapping[l].unwrap(), mapping[r].unwrap()))
            .collect();
        if mapped == b_value_edges {
            Some(mapping.into_iter().map(|m| m.unwrap()).collect())
        } else {
            None
        }
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join_graph::JoinGraph;
    use crate::minor::ReducedGraph;
    use crate::normalize::normalize_query;
    use crate::parser::parse_query;

    fn reduced(text: &str) -> ReducedGraph {
        let q = normalize_query(&parse_query(text).unwrap()).unwrap().query;
        ReducedGraph::from_join_graph(&JoinGraph::from_query(&q).unwrap())
    }

    const Q1: &str = "S//book->x1[.//author->x2][.//title->x3] \
        FOLLOWED BY{x2=x5 AND x3=x6, 100} \
        S//blog->x4[.//author->x5][.//title->x6]";
    const Q2: &str = "S//book->x1[.//author->x2][.//category->x7] \
        FOLLOWED BY{x2=x5 AND x7=x8, 200} \
        S//blog->x4[.//author->x5][.//category->x8]";
    const Q3: &str = "S//blog->x4[.//author->x5][.//title->x6] \
        FOLLOWED BY{x5=x5' AND x6=x6', 300} \
        S//blog->x4'[.//author->x5'][.//title->x6']";

    #[test]
    fn q1_q2_q3_share_one_template() {
        // The paper's Figure 5: all three example queries belong to the same
        // template with six meta-variables.
        let mut catalog = TemplateCatalog::new();
        let m1 = catalog.insert(&reduced(Q1));
        let m2 = catalog.insert(&reduced(Q2));
        let m3 = catalog.insert(&reduced(Q3));
        assert_eq!(catalog.len(), 1);
        assert_eq!(catalog.memberships(), 3);
        assert_eq!(m1.template, m2.template);
        assert_eq!(m2.template, m3.template);
        let t = catalog.template(m1.template);
        assert_eq!(t.num_meta_vars(), 6);
        assert_eq!(t.num_left(), 3);
        assert_eq!(t.num_right(), 3);
        // Q1's assignment covers book/author/title on the left and
        // blog/author/title on the right (canonical names).
        assert!(m1.assignment.contains(&"S//book".to_owned()));
        assert!(m1.assignment.contains(&"S//blog//title".to_owned()));
        // Q3's assignment uses blog definitions on both sides (Table 4(a)).
        assert!(m3.assignment.iter().all(|v| v.starts_with("S//blog")));
    }

    #[test]
    fn different_join_structure_different_template() {
        let mut catalog = TemplateCatalog::new();
        let m1 = catalog.insert(&reduced(Q1));
        // A fan-out query: one left variable joined to two right variables.
        let fan = reduced(
            "S//book->b[.//author->a] FOLLOWED BY{a=n AND a=d, 10} \
             S//blog->g[.//author->n][.//description->d]",
        );
        let m2 = catalog.insert(&fan);
        assert_ne!(m1.template, m2.template);
        assert_eq!(catalog.len(), 2);
    }

    #[test]
    fn single_value_join_template() {
        let mut catalog = TemplateCatalog::new();
        let g = reduced("S//book->b[.//author->a] FOLLOWED BY{a=x, 10} S//blog->g[.//author->x]");
        let m = catalog.insert(&g);
        let t = catalog.template(m.template);
        // Both sides reduce to a single node: 2 meta-variables, 1 value edge,
        // no structural edges.
        assert_eq!(t.num_meta_vars(), 2);
        assert!(t.structural_edges().is_empty());
        assert_eq!(t.value_edges(), vec![(0, 1)]);
        assert_eq!(t.meta_var_name(0), "var1");
        assert_eq!(t.position_side(0), (Side::Left, 0));
        assert_eq!(t.position_side(1), (Side::Right, 0));
        assert_eq!(t.global_position(Side::Right, 0), 1);
    }

    #[test]
    fn asymmetric_templates_are_not_merged() {
        // 2 left leaves joined to 1 right leaf vs 1 left leaf joined to 2
        // right leaves: different templates under FOLLOWED BY (the operator
        // is asymmetric).
        let fan_right = reduced(
            "S//book->b[.//author->a] FOLLOWED BY{a=n AND a=d, 10} \
             S//blog->g[.//author->n][.//description->d]",
        );
        let fan_left = reduced(
            "S//book->b[.//author->a][.//title->t] FOLLOWED BY{a=n AND t=n, 10} \
             S//blog->g[.//author->n]",
        );
        let mut catalog = TemplateCatalog::new();
        let m1 = catalog.insert(&fan_right);
        let m2 = catalog.insert(&fan_left);
        assert_ne!(m1.template, m2.template);
        assert!(isomorphism(&fan_right, &fan_left).is_none());
    }

    #[test]
    fn isomorphism_is_found_under_sibling_permutation() {
        // Same structure, predicates listed in a different order and leaves
        // named differently: still one template.
        let a = reduced(Q1);
        let b = reduced(
            "S//post->p[.//subject->s][.//who->w] \
             FOLLOWED BY{s=s2 AND w=w2, 42} \
             S//comment->c[.//subject->s2][.//who->w2]",
        );
        let mapping = isomorphism(&a, &b).unwrap();
        assert_eq!(mapping.len(), 6);
        // Roots map to roots.
        assert_eq!(mapping[0], 0);
        // And value edges are preserved (checked internally); the mapped
        // assignment must pair authors with authors or titles with titles,
        // i.e. respect the edge structure.
        let mut catalog = TemplateCatalog::new();
        let m1 = catalog.insert(&a);
        let m2 = catalog.insert(&b);
        assert_eq!(m1.template, m2.template);
        assert_eq!(catalog.len(), 1);
    }

    #[test]
    fn membership_assignment_respects_value_edges() {
        // For Q1 the template's value edges must connect the positions that
        // hold author-author and title-title, never author-title.
        let mut catalog = TemplateCatalog::new();
        let m = catalog.insert(&reduced(Q1));
        let t = catalog.template(m.template);
        for (l, r) in t.value_edges() {
            let lvar = &m.assignment[l];
            let rvar = &m.assignment[r];
            let lsuffix = lvar.rsplit('/').next().unwrap();
            let rsuffix = rvar.rsplit('/').next().unwrap();
            assert_eq!(lsuffix, rsuffix, "{lvar} joined with {rvar}");
        }
    }

    #[test]
    fn find_without_insert() {
        let mut catalog = TemplateCatalog::new();
        let g1 = reduced(Q1);
        assert!(catalog.find(&g1).is_none());
        let m = catalog.insert(&g1);
        assert_eq!(catalog.find(&g1), Some(m.template));
        assert_eq!(catalog.find(&reduced(Q2)), Some(m.template));
        assert!(!catalog.is_empty());
        assert_eq!(catalog.templates().count(), 1);
        assert_eq!(m.template.to_string(), "T0");
        assert_eq!(m.template.raw(), 0);
    }

    #[test]
    fn remove_retires_the_template_and_never_reuses_its_id() {
        let mut catalog = TemplateCatalog::new();
        let g1 = reduced(Q1);
        let m1 = catalog.insert(&g1);
        let removed = catalog.remove(m1.template).unwrap();
        assert_eq!(removed.id, m1.template);
        assert_eq!(catalog.len(), 0);
        assert!(catalog.is_empty());
        assert!(catalog.find(&g1).is_none());
        assert_eq!(catalog.templates().count(), 0);
        // Removing again is a no-op.
        assert!(catalog.remove(m1.template).is_none());
        // A later isomorphic insert starts a fresh template under a new id.
        let m2 = catalog.insert(&reduced(Q2));
        assert_ne!(m2.template, m1.template);
        assert_eq!(m2.template.index(), 1);
        assert_eq!(catalog.len(), 1);
        // The retired slot stays retired; the new one is live.
        assert_eq!(catalog.find(&g1), Some(m2.template));
        assert_eq!(catalog.memberships(), 2);
    }

    #[test]
    fn three_value_join_perfect_matching_vs_star() {
        // Perfect matching of 3 leaves vs a star (one left leaf joined to 3
        // right leaves): different templates.
        let matching = reduced(
            "S//a->r[.//p->p1][.//q->q1][.//s->s1] \
             FOLLOWED BY{p1=p2 AND q1=q2 AND s1=s2, 10} \
             S//b->r2[.//p->p2][.//q->q2][.//s->s2]",
        );
        let star = reduced(
            "S//a->r[.//p->p1] \
             FOLLOWED BY{p1=p2 AND p1=q2 AND p1=s2, 10} \
             S//b->r2[.//p->p2][.//q->q2][.//s->s2]",
        );
        let mut catalog = TemplateCatalog::new();
        let m1 = catalog.insert(&matching);
        let m2 = catalog.insert(&star);
        assert_ne!(m1.template, m2.template);
        assert_eq!(catalog.template(m1.template).num_meta_vars(), 8);
        assert_eq!(catalog.template(m2.template).num_meta_vars(), 5);
    }
}
