//! Graph-minor reduction of join graphs (Section 4.2 of the paper).
//!
//! The reduction rules shrink each side's tree pattern to the part that the
//! value-join processing stage actually needs:
//!
//! 1. recursively remove leaf nodes that do not participate in any value
//!    join;
//! 2. remove nodes that are not descendants of the least common ancestor of
//!    the remaining leaves (the LCA becomes the new root);
//! 3. remove intermediate nodes that have only one child (splice them out).
//!
//! What remains are the value-join nodes themselves plus the least common
//! ancestors of subsets of them — the nodes whose structural relationships
//! the per-template conjunctive query still has to check. The structural
//! constraints dropped here were already verified by the Stage-1 XPath
//! evaluator.

use crate::ast::{JoinOp, Window};
use crate::join_graph::{JoinGraph, Side};
use mmqjp_xpath::{Axis, PatternNodeId, TreePattern};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// A node of a reduced tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ReducedNode {
    /// The pattern node this reduced node came from.
    pub original: PatternNodeId,
    /// The (canonical) variable bound at that pattern node.
    pub variable: String,
    /// Index of the parent within the reduced tree, or `None` for the root.
    pub parent: Option<usize>,
    /// Axis label of the edge from the parent: the original axis for edges
    /// that were adjacent in the pattern, [`Axis::Descendant`] for spliced
    /// (multi-step) edges.
    pub axis: Axis,
    /// `true` if this node participates in at least one value join.
    pub is_join_node: bool,
}

/// One side's reduced tree. Node 0 is the root; every node's parent index is
/// smaller than its own index (construction is top-down).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct ReducedTree {
    /// Nodes in top-down construction order.
    pub nodes: Vec<ReducedNode>,
}

impl ReducedTree {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the tree has no nodes (never the case for valid queries).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Children indices of a node.
    pub fn children(&self, idx: usize) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.parent == Some(idx))
            .map(|(i, _)| i)
            .collect()
    }

    /// The index of the reduced node built from a given pattern node, if any.
    pub fn index_of(&self, original: PatternNodeId) -> Option<usize> {
        self.nodes.iter().position(|n| n.original == original)
    }

    /// Edges as (parent index, child index) pairs.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.parent.map(|p| (p, i)))
            .collect()
    }

    /// A structural shape string ignoring variables (children sorted), used
    /// as a cheap invariant for template bucketing.
    pub fn shape(&self) -> String {
        fn encode(t: &ReducedTree, idx: usize) -> String {
            let mut kids: Vec<String> = t.children(idx).into_iter().map(|c| encode(t, c)).collect();
            kids.sort();
            format!(
                "{}{}({})",
                t.nodes[idx].axis,
                if t.nodes[idx].is_join_node { "J" } else { "-" },
                kids.join(",")
            )
        }
        if self.nodes.is_empty() {
            String::new()
        } else {
            encode(self, 0)
        }
    }
}

/// The reduced join graph of a query: two reduced trees plus value-join edges
/// between them (by node index).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReducedGraph {
    /// The reduced left-side tree.
    pub left: ReducedTree,
    /// The reduced right-side tree.
    pub right: ReducedTree,
    /// Value joins as (left node index, right node index) pairs, sorted.
    pub value_edges: Vec<(usize, usize)>,
    /// The join operator of the originating query.
    pub op: JoinOp,
    /// The window of the originating query.
    pub window: Window,
}

impl ReducedGraph {
    /// Apply the three reduction rules to a join graph.
    pub fn from_join_graph(graph: &JoinGraph) -> ReducedGraph {
        let left_keep: BTreeSet<PatternNodeId> = graph.left_join_nodes().into_iter().collect();
        let right_keep: BTreeSet<PatternNodeId> = graph.right_join_nodes().into_iter().collect();
        let left = reduce_side(&graph.left, &left_keep);
        let right = reduce_side(&graph.right, &right_keep);

        let mut value_edges: Vec<(usize, usize)> = graph
            .value_edges
            .iter()
            .map(|(l, r)| {
                (
                    left.index_of(*l).expect("join node kept by reduction"),
                    right.index_of(*r).expect("join node kept by reduction"),
                )
            })
            .collect();
        value_edges.sort();
        value_edges.dedup();

        ReducedGraph {
            left,
            right,
            value_edges,
            op: graph.op,
            window: graph.window,
        }
    }

    /// Total node count (both sides).
    pub fn num_nodes(&self) -> usize {
        self.left.len() + self.right.len()
    }

    /// Number of value-join edges.
    pub fn num_value_joins(&self) -> usize {
        self.value_edges.len()
    }

    /// The tree of one side.
    pub fn tree(&self, side: Side) -> &ReducedTree {
        match side {
            Side::Left => &self.left,
            Side::Right => &self.right,
        }
    }

    /// The variable at a (side, node index) position.
    pub fn variable(&self, side: Side, idx: usize) -> &str {
        &self.tree(side).nodes[idx].variable
    }

    /// Value-join degree of a node.
    pub fn value_degree(&self, side: Side, idx: usize) -> usize {
        self.value_edges
            .iter()
            .filter(|(l, r)| match side {
                Side::Left => *l == idx,
                Side::Right => *r == idx,
            })
            .count()
    }

    /// A cheap invariant string: graphs with different invariants are
    /// guaranteed non-isomorphic. Used to bucket templates before the exact
    /// isomorphism test.
    pub fn invariant(&self) -> String {
        let mut left_deg: Vec<usize> = (0..self.left.len())
            .map(|i| self.value_degree(Side::Left, i))
            .collect();
        left_deg.sort_unstable();
        let mut right_deg: Vec<usize> = (0..self.right.len())
            .map(|i| self.value_degree(Side::Right, i))
            .collect();
        right_deg.sort_unstable();
        format!(
            "L{}|R{}|E{}|dl{:?}|dr{:?}",
            self.left.shape(),
            self.right.shape(),
            self.value_edges.len(),
            left_deg,
            right_deg
        )
    }

    /// All edges of the reduced pattern of one side, as pattern-node id pairs
    /// `(ancestor, descendant)` in the *original* pattern. This is exactly
    /// the set of structural edges whose binding pairs the Join Processor
    /// asks the XPath Evaluator for.
    pub fn structural_edges(&self, side: Side) -> Vec<(PatternNodeId, PatternNodeId)> {
        self.tree(side)
            .edges()
            .into_iter()
            .map(|(p, c)| {
                (
                    self.tree(side).nodes[p].original,
                    self.tree(side).nodes[c].original,
                )
            })
            .collect()
    }
}

impl fmt::Display for ReducedGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "reduced graph: {} left nodes, {} right nodes, {} value joins",
            self.left.len(),
            self.right.len(),
            self.value_edges.len()
        )?;
        for (l, r) in &self.value_edges {
            writeln!(
                f,
                "  {} = {}",
                self.left.nodes[*l].variable, self.right.nodes[*r].variable
            )?;
        }
        Ok(())
    }
}

/// Reduce one side's pattern to the nodes needed for value-join processing.
fn reduce_side(pattern: &TreePattern, keep: &BTreeSet<PatternNodeId>) -> ReducedTree {
    if keep.is_empty() {
        return ReducedTree::default();
    }
    // Needed = every node on a path from the pattern root to a kept node.
    let mut needed: BTreeSet<PatternNodeId> = BTreeSet::new();
    for &k in keep {
        let mut cur = Some(k);
        while let Some(n) = cur {
            needed.insert(n);
            cur = pattern.node(n).parent();
        }
    }

    // child lists restricted to needed nodes.
    let children_of = |n: PatternNodeId| -> Vec<PatternNodeId> {
        pattern
            .node(n)
            .children()
            .iter()
            .copied()
            .filter(|c| needed.contains(c))
            .collect()
    };

    // Rule 2 + 3: walk down from the pattern root, splicing out non-kept
    // nodes that have exactly one needed child. The first node that is either
    // kept or has ≥ 2 needed children becomes the reduced root.
    let mut root = PatternNodeId::ROOT;
    // The pattern root is always in `needed` because every kept node's
    // ancestor chain reaches it.
    loop {
        let kids = children_of(root);
        if keep.contains(&root) || kids.len() != 1 {
            break;
        }
        root = kids[0];
    }

    // Build the reduced tree top-down, splicing single-child non-kept
    // interior nodes.
    let mut tree = ReducedTree::default();
    let mut index_of: HashMap<PatternNodeId, usize> = HashMap::new();
    let root_axis = pattern.node(root).axis();
    tree.nodes.push(ReducedNode {
        original: root,
        variable: pattern.node(root).variable().unwrap_or("").to_owned(),
        parent: None,
        axis: root_axis,
        is_join_node: keep.contains(&root),
    });
    index_of.insert(root, 0);

    // Depth-first walk. For each reduced node, find its reduced children:
    // descend through needed descendants, skipping (splicing) non-kept nodes
    // with exactly one needed child.
    let mut stack = vec![root];
    while let Some(current) = stack.pop() {
        let current_idx = index_of[&current];
        for child in children_of(current) {
            // Splice down: follow single-child non-kept chains.
            let mut target = child;
            let mut spliced = false;
            loop {
                let kids = children_of(target);
                if keep.contains(&target) || kids.len() != 1 {
                    break;
                }
                target = kids[0];
                spliced = true;
            }
            let axis = if spliced || target != child {
                Axis::Descendant
            } else {
                pattern.node(child).axis()
            };
            let idx = tree.nodes.len();
            tree.nodes.push(ReducedNode {
                original: target,
                variable: pattern.node(target).variable().unwrap_or("").to_owned(),
                parent: Some(current_idx),
                axis,
                is_join_node: keep.contains(&target),
            });
            index_of.insert(target, idx);
            stack.push(target);
        }
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join_graph::JoinGraph;
    use crate::normalize::normalize_query;
    use crate::parser::parse_query;

    fn reduced(text: &str) -> ReducedGraph {
        let q = normalize_query(&parse_query(text).unwrap()).unwrap().query;
        ReducedGraph::from_join_graph(&JoinGraph::from_query(&q).unwrap())
    }

    const Q1: &str = "S//book->x1[.//author->x2][.//title->x3] \
        FOLLOWED BY{x2=x5 AND x3=x6, 100} \
        S//blog->x4[.//author->x5][.//title->x6]";

    #[test]
    fn q1_reduction_keeps_root_and_join_leaves() {
        let g = reduced(Q1);
        // Figure 5: var1..var3 on the left (book, author, title), var4..var6
        // on the right.
        assert_eq!(g.left.len(), 3);
        assert_eq!(g.right.len(), 3);
        assert_eq!(g.num_value_joins(), 2);
        assert_eq!(g.num_nodes(), 6);
        // The root of each side is the LCA (book / blog) and is not a join
        // node; the leaves are.
        assert!(!g.left.nodes[0].is_join_node);
        assert!(g.left.nodes[1].is_join_node);
        assert!(g.left.nodes[2].is_join_node);
        assert_eq!(g.left.nodes[0].variable, "S//book");
        assert!(g.to_string().contains("value joins"));
    }

    #[test]
    fn irrelevant_leaves_are_removed() {
        // The isbn and publisher leaves do not participate in value joins and
        // must disappear from the reduced graph.
        let text = "S//book->x1[.//author->x2][.//title->x3][.//isbn->x9][.//publisher->x10] \
            FOLLOWED BY{x2=x5, 100} \
            S//blog->x4[.//author->x5][.//category->x8]";
        let g = reduced(text);
        // Left: only the author leaf participates; after rules 1-3 the left
        // side is just that single node.
        assert_eq!(g.left.len(), 1);
        assert!(g.left.nodes[0].is_join_node);
        assert_eq!(g.left.nodes[0].variable, "S//book//author");
        // Right: only the author leaf participates.
        assert_eq!(g.right.len(), 1);
        assert_eq!(g.num_value_joins(), 1);
    }

    #[test]
    fn single_join_node_side_reduces_to_one_node() {
        let text = "S//book->x1[.//author->x2][.//title->x3] \
            FOLLOWED BY{x2=x5, 100} \
            S//blog->x4[.//author->x5]";
        let g = reduced(text);
        assert_eq!(g.left.len(), 1);
        assert_eq!(g.right.len(), 1);
        assert_eq!(g.value_edges, vec![(0, 0)]);
    }

    #[test]
    fn intermediate_single_child_nodes_are_spliced() {
        // 3-level structure where the intermediate `meta` node has a single
        // relevant child: it must be spliced out, leaving root -> leaf with a
        // descendant edge.
        let text = "S//doc->d[.//meta->m[.//author->a]][.//title->t] \
            FOLLOWED BY{a=a2 AND t=t2, 100} \
            S//doc->d2[.//meta2->m2[.//author->a2]][.//title->t2]";
        let g = reduced(text);
        // Left: doc (root, LCA), author, title — meta spliced away.
        assert_eq!(g.left.len(), 3);
        let vars: Vec<&str> = g.left.nodes.iter().map(|n| n.variable.as_str()).collect();
        assert!(vars.contains(&"S//doc"));
        assert!(vars.iter().any(|v| v.ends_with("//author")));
        assert!(vars.iter().any(|v| v.ends_with("//title")));
        assert!(!vars.iter().any(|v| v.ends_with("//meta")));
        // The spliced edge is labeled descendant.
        let author_idx = g
            .left
            .nodes
            .iter()
            .position(|n| n.variable.ends_with("//author"))
            .unwrap();
        assert_eq!(g.left.nodes[author_idx].axis, Axis::Descendant);
    }

    #[test]
    fn lca_intermediate_nodes_are_kept() {
        // Two join leaves under the same intermediate: the intermediate is
        // their LCA and must be kept; the document root above it must be
        // dropped (rule 2).
        let text = "S//doc->d[.//sec->s[.//a->a1][.//b->b1]] \
            FOLLOWED BY{a1=a2 AND b1=b2, 100} \
            S//doc->e[.//a->a2][.//b->b2]";
        let g = reduced(text);
        // Left reduced tree: sec (root) + a + b; `doc` must not appear.
        assert_eq!(g.left.len(), 3);
        assert_eq!(g.left.nodes[0].variable, "S//doc//sec");
        assert!(g.left.nodes[0].parent.is_none());
        // Right reduced tree: doc (LCA of a2, b2) + a + b.
        assert_eq!(g.right.len(), 3);
        assert_eq!(g.right.nodes[0].variable, "S//doc");
    }

    #[test]
    fn mixed_lca_structure() {
        // Three join leaves on the left: two under one intermediate, one
        // directly under the root => reduced tree keeps root, that
        // intermediate, and the three leaves (5 nodes).
        let text = "S//r->r1[.//g->g1[.//a->a1][.//b->b1]][.//c->c1] \
            FOLLOWED BY{a1=x AND b1=y AND c1=z, 100} \
            S//i->i1[.//x->x][.//y->y][.//z->z]";
        let g = reduced(text);
        assert_eq!(g.left.len(), 5);
        assert_eq!(g.right.len(), 4);
        // Left root has two children: the intermediate g and the leaf c.
        let root_children = g.left.children(0);
        assert_eq!(root_children.len(), 2);
        // Structural edges map back to original pattern nodes.
        let edges = g.structural_edges(Side::Left);
        assert_eq!(edges.len(), 4);
        let right_edges = g.structural_edges(Side::Right);
        assert_eq!(right_edges.len(), 3);
    }

    #[test]
    fn child_axis_preserved_for_adjacent_edges() {
        let text = "S/rss->r[/channel->c] FOLLOWED BY{c=c2, 10} S/rss->r2[/channel->c2]";
        let g = reduced(text);
        // Only channel participates; sides reduce to single nodes.
        assert_eq!(g.left.len(), 1);
        // Make a version where the root participates too.
        let text2 = "S/rss->r[/channel->c] FOLLOWED BY{c=c2 AND r=r2, 10} S/rss->r2[/channel->c2]";
        let g2 = reduced(text2);
        assert_eq!(g2.left.len(), 2);
        // The rss->channel edge was adjacent with a child axis.
        assert_eq!(g2.left.nodes[1].axis, Axis::Child);
    }

    #[test]
    fn value_degree_and_invariants() {
        let g = reduced(Q1);
        let leaf_idx = 1;
        assert_eq!(g.value_degree(Side::Left, leaf_idx), 1);
        assert_eq!(g.value_degree(Side::Left, 0), 0);
        let inv1 = g.invariant();
        // A query with the same shape but different tags/variables has the
        // same invariant.
        let other = reduced(
            "S//post->p1[.//who->w1][.//subject->s1] \
             FOLLOWED BY{w1=w2 AND s1=s2, 5} \
             S//comment->c1[.//who->w2][.//subject->s2]",
        );
        assert_eq!(inv1, other.invariant());
        // A query with different join structure has a different invariant.
        let fan = reduced(
            "S//book->b[.//author->a] FOLLOWED BY{a=n AND a=d, 10} \
             S//blog->g[.//author->n][.//description->d]",
        );
        assert_ne!(inv1, fan.invariant());
    }

    #[test]
    fn duplicate_value_edges_collapse() {
        // After canonical renaming, a=x and a=x listed twice collapse to one
        // edge (normalize dedups predicates; from_join_graph dedups edges).
        let text = "S//book->b[.//author->a] FOLLOWED BY{a=x, 10} S//blog->g[.//author->x]";
        let g = reduced(text);
        assert_eq!(g.num_value_joins(), 1);
    }

    #[test]
    fn empty_keep_set_gives_empty_tree() {
        let pattern = mmqjp_xpath::parse_pattern("S//a[.//b]").unwrap();
        let t = reduce_side(&pattern, &BTreeSet::new());
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.shape(), "");
    }
}
