//! Query-insertion rewrites (Section 2 / Section 3 assumptions of the paper).
//!
//! The paper assumes, without loss of generality, that registered queries are
//! in **value-join normal form** and that **variables with identical
//! definitions carry identical names**. Both properties are established here
//! at insertion time:
//!
//! * every pattern node receives a variable; nodes the user left anonymous
//!   get a canonical, definition-derived name;
//! * every user-chosen variable name is replaced by the canonical
//!   definition-derived name of the node it binds, so two queries (or the two
//!   blocks of one self-join query) that bind "the same" node of the document
//!   schema share witness tuples in the Join Processor;
//! * value-join predicates are rewritten to reference the canonical names and
//!   validated: the left variable must be bound in the left block, the right
//!   variable in the right block (this is exactly value-join normal form for
//!   the supported fragment).

use crate::ast::{FromClause, QueryBlock, ValueJoin, XsclQuery};
use crate::error::{XsclError, XsclResult};
use mmqjp_xpath::TreePattern;
use std::collections::HashMap;

/// A normalized query plus the mapping from the user's original variable
/// names to the canonical names now used inside the query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NormalizedQuery {
    /// The rewritten query.
    pub query: XsclQuery,
    /// Mapping original variable name → canonical name for the left block.
    pub left_renames: HashMap<String, String>,
    /// Mapping original variable name → canonical name for the right block.
    pub right_renames: HashMap<String, String>,
}

/// Normalize a query: canonical variable names everywhere and validated
/// value-join predicates. Single-block queries are normalized too (their
/// pattern variables are canonicalized); they simply have no predicates.
pub fn normalize_query(query: &XsclQuery) -> XsclResult<NormalizedQuery> {
    match &query.from {
        FromClause::Single(block) => {
            let (pattern, renames) = canonicalize_pattern(&block.pattern);
            let mut q = query.clone();
            q.from = FromClause::Single(QueryBlock::new(pattern));
            Ok(NormalizedQuery {
                query: q,
                left_renames: renames,
                right_renames: HashMap::new(),
            })
        }
        FromClause::Join {
            left,
            op,
            predicates,
            window,
            right,
        } => {
            if predicates.is_empty() {
                return Err(XsclError::NoValueJoins);
            }
            let (left_pattern, left_renames) = canonicalize_pattern(&left.pattern);
            let (right_pattern, right_renames) = canonicalize_pattern(&right.pattern);

            let mut new_predicates = Vec::with_capacity(predicates.len());
            for p in predicates {
                let l = resolve(&left_renames, &p.left_var).ok_or_else(|| {
                    XsclError::UnboundVariable {
                        variable: p.left_var.clone(),
                        side: "left",
                    }
                })?;
                let r = resolve(&right_renames, &p.right_var).ok_or_else(|| {
                    XsclError::UnboundVariable {
                        variable: p.right_var.clone(),
                        side: "right",
                    }
                })?;
                new_predicates.push(ValueJoin::new(l, r));
            }
            // Drop duplicate predicates (they can arise after canonical
            // renaming when the user equated two aliases of the same node).
            new_predicates.sort_by(|a, b| {
                (a.left_var.as_str(), a.right_var.as_str())
                    .cmp(&(b.left_var.as_str(), b.right_var.as_str()))
            });
            new_predicates.dedup();

            let mut q = query.clone();
            q.from = FromClause::Join {
                left: QueryBlock::new(left_pattern),
                op: *op,
                predicates: new_predicates,
                window: *window,
                right: QueryBlock::new(right_pattern),
            };
            Ok(NormalizedQuery {
                query: q,
                left_renames,
                right_renames,
            })
        }
    }
}

/// Replace every variable in the pattern with the canonical name derived from
/// its definition path, and assign canonical names to anonymous nodes.
/// Returns the rewritten pattern and the original→canonical rename map.
fn canonicalize_pattern(pattern: &TreePattern) -> (TreePattern, HashMap<String, String>) {
    let mut renames = HashMap::new();
    let mut out = pattern.clone();
    // Collect (node, original name, canonical name) first to avoid borrow
    // conflicts while rewriting.
    let mut updates = Vec::new();
    for id in pattern.node_ids() {
        let canonical = canonical_name(pattern, id);
        if let Some(orig) = pattern.node(id).variable() {
            renames.insert(orig.to_owned(), canonical.clone());
        }
        updates.push((id, canonical));
    }
    for (id, canonical) in updates {
        // bind_variable refuses duplicates across *different* nodes; two
        // pattern nodes with the same definition path inside one pattern can
        // only occur for sibling steps with identical sub-structure, which
        // denote the same match set — collapse them onto the same name by
        // suffixing an ordinal.
        let mut name = canonical;
        let mut ordinal = 1usize;
        loop {
            match out.bind_variable(id, name.clone()) {
                Ok(()) => break,
                Err(_) => {
                    ordinal += 1;
                    name = format!("{}#{}", out.definition_path(id), ordinal);
                }
            }
        }
    }
    (out, renames)
}

/// The canonical variable name of a pattern node: its definition path.
fn canonical_name(pattern: &TreePattern, id: mmqjp_xpath::PatternNodeId) -> String {
    pattern.definition_path(id)
}

fn resolve(renames: &HashMap<String, String>, var: &str) -> Option<String> {
    renames.get(var).cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{JoinOp, Window};
    use crate::parser::parse_query;

    const Q1: &str = "S//book->x1[.//author->x2][.//title->x3] \
        FOLLOWED BY{x2=x5 AND x3=x6, 100} \
        S//blog->x4[.//author->x5][.//title->x6]";
    const Q2: &str = "S//book->x1[.//author->x2][.//category->x7] \
        FOLLOWED BY{x2=x5 AND x7=x8, 200} \
        S//blog->x4[.//author->x5][.//category->x8]";
    const Q3: &str = "S//blog->x4[.//author->x5][.//title->x6] \
        FOLLOWED BY{x5=x5' AND x6=x6', 300} \
        S//blog->x4'[.//author->x5'][.//title->x6']";

    #[test]
    fn canonical_names_are_definition_paths() {
        let q = parse_query(Q1).unwrap();
        let n = normalize_query(&q).unwrap();
        let (l, r) = n.query.blocks().unwrap();
        assert!(l.pattern.binds("S//book"));
        assert!(l.pattern.binds("S//book//author"));
        assert!(l.pattern.binds("S//book//title"));
        assert!(r.pattern.binds("S//blog//author"));
        assert_eq!(n.left_renames.get("x2").unwrap(), "S//book//author");
        assert_eq!(n.right_renames.get("x6").unwrap(), "S//blog//title");
        // Predicates are rewritten to canonical names.
        assert_eq!(
            n.query.predicates()[0],
            ValueJoin::new("S//book//author", "S//blog//author")
        );
    }

    #[test]
    fn same_definition_same_name_across_queries() {
        // Q1 and Q2 both bind S//book//author (as x2) and S//blog//author
        // (as x5); after normalization the names coincide.
        let n1 = normalize_query(&parse_query(Q1).unwrap()).unwrap();
        let n2 = normalize_query(&parse_query(Q2).unwrap()).unwrap();
        assert_eq!(
            n1.left_renames.get("x2").unwrap(),
            n2.left_renames.get("x2").unwrap()
        );
        assert_eq!(
            n1.right_renames.get("x5").unwrap(),
            n2.right_renames.get("x5").unwrap()
        );
    }

    #[test]
    fn self_join_blocks_get_identical_names() {
        // Q3 joins the blog stream with itself; after normalization x5 and
        // x5' become the same canonical name (they have the same definition).
        let n = normalize_query(&parse_query(Q3).unwrap()).unwrap();
        assert_eq!(
            n.left_renames.get("x5").unwrap(),
            n.right_renames.get("x5'").unwrap()
        );
        let p = &n.query.predicates()[0];
        assert_eq!(p.left_var, p.right_var);
        // Window and operator survive normalization.
        assert_eq!(n.query.window(), Some(Window::Time(300)));
        assert_eq!(n.query.op(), Some(JoinOp::FollowedBy));
    }

    #[test]
    fn anonymous_nodes_receive_variables() {
        let q = parse_query("S//book[.//author->a] FOLLOWED BY{a=b, 10} S//blog[.//author->b]")
            .unwrap();
        let n = normalize_query(&q).unwrap();
        let (l, _) = n.query.blocks().unwrap();
        // The anonymous //book root now carries its canonical name.
        assert!(l.pattern.binds("S//book"));
    }

    #[test]
    fn unbound_predicate_variable_is_rejected() {
        let q = parse_query("S//book->x1 FOLLOWED BY{x9=x1, 10} S//blog->x2").unwrap();
        assert!(matches!(
            normalize_query(&q),
            Err(XsclError::UnboundVariable { side: "left", .. })
        ));
        let q = parse_query("S//book->x1 FOLLOWED BY{x1=zz, 10} S//blog->x2").unwrap();
        assert!(matches!(
            normalize_query(&q),
            Err(XsclError::UnboundVariable { side: "right", .. })
        ));
    }

    #[test]
    fn duplicate_predicates_are_deduplicated() {
        let q = parse_query(
            "S//book->x1[.//author->x2] FOLLOWED BY{x2=x5 AND x2=x5, 10} S//blog->x4[.//author->x5]",
        )
        .unwrap();
        let n = normalize_query(&q).unwrap();
        assert_eq!(n.query.predicates().len(), 1);
    }

    #[test]
    fn single_block_query_is_normalized() {
        let q = parse_query("S//blog[.//author->a]").unwrap();
        let n = normalize_query(&q).unwrap();
        match &n.query.from {
            FromClause::Single(b) => {
                assert!(b.pattern.binds("S//blog"));
                assert!(b.pattern.binds("S//blog//author"));
            }
            _ => panic!("expected single block"),
        }
        assert!(n.right_renames.is_empty());
    }

    #[test]
    fn join_without_predicates_is_rejected() {
        // Construct directly (the parser already rejects this).
        let q = parse_query(Q1).unwrap();
        let mut q2 = q.clone();
        if let FromClause::Join { predicates, .. } = &mut q2.from {
            predicates.clear();
        }
        assert!(matches!(normalize_query(&q2), Err(XsclError::NoValueJoins)));
    }

    #[test]
    fn sibling_steps_with_identical_definitions_get_distinct_names() {
        // Two sibling //author predicates under the same //book have the same
        // definition path; normalization must still produce a valid pattern
        // (distinct variable per node).
        let q = parse_query(
            "S//book[.//author->a][.//author->b] FOLLOWED BY{a=c AND b=c, 10} S//blog[.//author->c]",
        )
        .unwrap();
        let n = normalize_query(&q).unwrap();
        let (l, _) = n.query.blocks().unwrap();
        let vars: Vec<&str> = l.pattern.variables().iter().map(|(v, _)| *v).collect();
        assert_eq!(vars.len(), 3);
        let unique: std::collections::HashSet<&&str> = vars.iter().collect();
        assert_eq!(unique.len(), 3);
    }
}
