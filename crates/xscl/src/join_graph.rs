//! Join graphs of XSCL queries (Section 4.1 of the paper).
//!
//! The join graph of an inter-document query visualizes its two query blocks
//! as tree patterns (structural edges) and its value-join predicates as edges
//! between the bound nodes of the two patterns (value-join edges).

use crate::ast::{FromClause, JoinOp, Window, XsclQuery};
use crate::error::{XsclError, XsclResult};
use mmqjp_xpath::{PatternNodeId, TreePattern};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which query block a node belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Side {
    /// The left (earlier, for `FOLLOWED BY`) query block.
    Left,
    /// The right (later / current-document) query block.
    Right,
}

impl Side {
    /// The opposite side.
    pub fn other(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Side::Left => write!(f, "L"),
            Side::Right => write!(f, "R"),
        }
    }
}

/// The join graph of one (normalized) XSCL join query.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinGraph {
    /// The left query block's variable tree pattern.
    pub left: TreePattern,
    /// The right query block's variable tree pattern.
    pub right: TreePattern,
    /// Value-join edges as (left pattern node, right pattern node) pairs.
    pub value_edges: Vec<(PatternNodeId, PatternNodeId)>,
    /// The join operator.
    pub op: JoinOp,
    /// The window constraint.
    pub window: Window,
}

impl JoinGraph {
    /// Build the join graph of a normalized join query.
    ///
    /// Returns [`XsclError::Unsupported`] for single-block queries (they have
    /// no join graph) and [`XsclError::UnboundVariable`] if a predicate
    /// references a variable missing from its block (normalization prevents
    /// this for queries that went through [`normalize_query`]).
    ///
    /// [`normalize_query`]: crate::normalize::normalize_query
    pub fn from_query(query: &XsclQuery) -> XsclResult<JoinGraph> {
        let FromClause::Join {
            left,
            op,
            predicates,
            window,
            right,
        } = &query.from
        else {
            return Err(XsclError::Unsupported {
                feature: "join graph of a single-block query".to_owned(),
            });
        };
        if predicates.is_empty() {
            return Err(XsclError::NoValueJoins);
        }
        let mut value_edges = Vec::with_capacity(predicates.len());
        for p in predicates {
            let l = left.pattern.variable_node(&p.left_var).map_err(|_| {
                XsclError::UnboundVariable {
                    variable: p.left_var.clone(),
                    side: "left",
                }
            })?;
            let r = right.pattern.variable_node(&p.right_var).map_err(|_| {
                XsclError::UnboundVariable {
                    variable: p.right_var.clone(),
                    side: "right",
                }
            })?;
            value_edges.push((l, r));
        }
        Ok(JoinGraph {
            left: left.pattern.clone(),
            right: right.pattern.clone(),
            value_edges,
            op: *op,
            window: *window,
        })
    }

    /// Number of value-join edges.
    pub fn num_value_joins(&self) -> usize {
        self.value_edges.len()
    }

    /// Total number of structural nodes (both patterns).
    pub fn num_nodes(&self) -> usize {
        self.left.len() + self.right.len()
    }

    /// The pattern of one side.
    pub fn pattern(&self, side: Side) -> &TreePattern {
        match side {
            Side::Left => &self.left,
            Side::Right => &self.right,
        }
    }

    /// The distinct left-side pattern nodes that participate in value joins.
    pub fn left_join_nodes(&self) -> Vec<PatternNodeId> {
        let mut out: Vec<PatternNodeId> = self.value_edges.iter().map(|(l, _)| *l).collect();
        out.sort();
        out.dedup();
        out
    }

    /// The distinct right-side pattern nodes that participate in value joins.
    pub fn right_join_nodes(&self) -> Vec<PatternNodeId> {
        let mut out: Vec<PatternNodeId> = self.value_edges.iter().map(|(_, r)| *r).collect();
        out.sort();
        out.dedup();
        out
    }

    /// Build a join graph with the two sides swapped (right block first).
    /// Used to register symmetric `JOIN` queries in both orientations.
    pub fn swapped(&self) -> JoinGraph {
        JoinGraph {
            left: self.right.clone(),
            right: self.left.clone(),
            value_edges: self.value_edges.iter().map(|&(l, r)| (r, l)).collect(),
            op: self.op,
            window: self.window,
        }
    }
}

impl fmt::Display for JoinGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "left:  {}", self.left)?;
        writeln!(f, "right: {}", self.right)?;
        let edges: Vec<String> = self
            .value_edges
            .iter()
            .map(|(l, r)| {
                format!(
                    "{}~{}",
                    self.left.node(*l).variable().unwrap_or("?"),
                    self.right.node(*r).variable().unwrap_or("?")
                )
            })
            .collect();
        write!(
            f,
            "value joins: {} ({} within {})",
            edges.join(", "),
            self.op,
            self.window
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::normalize_query;
    use crate::parser::parse_query;

    const Q1: &str = "S//book->x1[.//author->x2][.//title->x3] \
        FOLLOWED BY{x2=x5 AND x3=x6, 100} \
        S//blog->x4[.//author->x5][.//title->x6]";

    fn q1_graph() -> JoinGraph {
        let q = normalize_query(&parse_query(Q1).unwrap()).unwrap().query;
        JoinGraph::from_query(&q).unwrap()
    }

    #[test]
    fn q1_join_graph_structure() {
        let g = q1_graph();
        assert_eq!(g.num_value_joins(), 2);
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.op, JoinOp::FollowedBy);
        assert_eq!(g.window, Window::Time(100));
        // The value edges connect the author nodes and the title nodes.
        assert_eq!(g.left_join_nodes().len(), 2);
        assert_eq!(g.right_join_nodes().len(), 2);
        let display = g.to_string();
        assert!(display.contains("book"));
        assert!(display.contains("FOLLOWED BY"));
    }

    #[test]
    fn raw_query_without_normalization_also_works() {
        // from_query only needs the predicates to reference bound variables.
        let q = parse_query(Q1).unwrap();
        let g = JoinGraph::from_query(&q).unwrap();
        assert_eq!(g.num_value_joins(), 2);
        assert_eq!(g.left.node(g.value_edges[0].0).variable(), Some("x2"));
    }

    #[test]
    fn pattern_accessor_by_side() {
        let g = q1_graph();
        assert_eq!(g.pattern(Side::Left).root().test().to_string(), "book");
        assert_eq!(g.pattern(Side::Right).root().test().to_string(), "blog");
        assert_eq!(Side::Left.other(), Side::Right);
        assert_eq!(Side::Right.other(), Side::Left);
        assert_eq!(Side::Left.to_string(), "L");
    }

    #[test]
    fn swapped_reverses_edges() {
        let g = q1_graph();
        let s = g.swapped();
        assert_eq!(s.left.root().test().to_string(), "blog");
        assert_eq!(s.right.root().test().to_string(), "book");
        assert_eq!(s.value_edges[0].0, g.value_edges[0].1);
        assert_eq!(s.value_edges[0].1, g.value_edges[0].0);
    }

    #[test]
    fn single_block_query_has_no_join_graph() {
        let q = parse_query("S//blog[.//author]").unwrap();
        assert!(matches!(
            JoinGraph::from_query(&q),
            Err(XsclError::Unsupported { .. })
        ));
    }

    #[test]
    fn unbound_predicate_variable_is_error() {
        let q = parse_query("S//book->x1 FOLLOWED BY{x1=nope, 10} S//blog->x4").unwrap();
        assert!(matches!(
            JoinGraph::from_query(&q),
            Err(XsclError::UnboundVariable { .. })
        ));
    }

    #[test]
    fn multiple_joins_on_same_node() {
        // One left author joined to two different right-side nodes.
        let q = parse_query(
            "S//book->b[.//author->a] FOLLOWED BY{a=n AND a=d, 10} \
             S//blog->g[.//author->n][.//description->d]",
        )
        .unwrap();
        let g = JoinGraph::from_query(&q).unwrap();
        assert_eq!(g.num_value_joins(), 2);
        assert_eq!(g.left_join_nodes().len(), 1);
        assert_eq!(g.right_join_nodes().len(), 2);
    }
}
