//! Enumeration of possible query templates for a document schema
//! (paper Table 3).
//!
//! Table 3 of the paper reports how many distinct query templates exist as a
//! function of the number of value joins per query, for two schema families:
//!
//! * the **flat** (2-level) schema, where every query block reduces to a root
//!   with some join leaves (or a single join node);
//! * the **complex** (3-level) schema with branching factor 4, where join
//!   leaves may additionally share intermediate least-common-ancestor nodes.
//!
//! The counts are obtained constructively: we enumerate candidate reduced
//! join graphs and de-duplicate them through the same
//! [`TemplateCatalog`](crate::template::TemplateCatalog) used by the engine,
//! so the numbers reported by the benchmark are produced by exactly the
//! machinery whose sharing behaviour they describe.

use crate::ast::{JoinOp, Window};
use crate::join_graph::JoinGraph;
use crate::minor::ReducedGraph;
use crate::template::TemplateCatalog;
use mmqjp_xpath::{Axis, NodeTest, PatternNodeId, TreePattern};

/// Enumerate the distinct templates for queries with exactly `k` value joins
/// over a flat (2-level) document schema, returning the number of templates.
///
/// A flat query block reduces to either a single join node or a root with
/// `m ≥ 2` join leaves; the value joins form a bipartite graph between the
/// left and right join leaves in which every leaf participates. We enumerate
/// all simple bipartite graphs with `k` edges and no isolated vertices over
/// `1..=k` left and `1..=k` right vertices and count isomorphism classes.
pub fn count_flat_templates(k: usize) -> usize {
    let mut catalog = TemplateCatalog::new();
    for graph in enumerate_bipartite_edge_sets(k) {
        let reduced = flat_reduced_graph(&graph);
        catalog.insert(&reduced);
    }
    catalog.len()
}

/// Enumerate the distinct templates for queries with exactly `k` value joins
/// over the 3-level schema with the given branching factor (the paper uses
/// 4), returning the number of templates.
///
/// In addition to the bipartite value-join structure, each side's join leaves
/// are distributed over intermediate nodes; intermediates holding at least
/// two join leaves survive the graph-minor reduction as LCA nodes.
pub fn count_complex_templates(k: usize, branching: usize) -> usize {
    let mut catalog = TemplateCatalog::new();
    for graph in enumerate_bipartite_edge_sets(k) {
        let left_leaves = graph.left_vertices;
        let right_leaves = graph.right_vertices;
        for left_partition in partitions(left_leaves, branching) {
            for right_partition in partitions(right_leaves, branching) {
                let reduced = complex_reduced_graph(&graph, &left_partition, &right_partition);
                catalog.insert(&reduced);
            }
        }
    }
    catalog.len()
}

/// A labeled bipartite value-join structure: `edges[(i, j)]` connects left
/// leaf `i` to right leaf `j`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BipartiteEdges {
    /// Number of left join leaves (every one participates in some edge).
    pub left_vertices: usize,
    /// Number of right join leaves.
    pub right_vertices: usize,
    /// The edge set.
    pub edges: Vec<(usize, usize)>,
}

/// Enumerate all labeled simple bipartite graphs with exactly `k` edges and
/// no isolated vertices, over `1..=k` vertices per side.
pub fn enumerate_bipartite_edge_sets(k: usize) -> Vec<BipartiteEdges> {
    let mut out = Vec::new();
    if k == 0 {
        return out;
    }
    for m in 1..=k {
        for n in 1..=k {
            let all_edges: Vec<(usize, usize)> =
                (0..m).flat_map(|i| (0..n).map(move |j| (i, j))).collect();
            if all_edges.len() < k {
                continue;
            }
            let mut chosen = Vec::new();
            choose_edges(&all_edges, 0, k, &mut chosen, m, n, &mut out);
        }
    }
    out
}

fn choose_edges(
    all: &[(usize, usize)],
    start: usize,
    remaining: usize,
    chosen: &mut Vec<(usize, usize)>,
    m: usize,
    n: usize,
    out: &mut Vec<BipartiteEdges>,
) {
    if remaining == 0 {
        // every vertex must be covered
        let mut left_cov = vec![false; m];
        let mut right_cov = vec![false; n];
        for &(i, j) in chosen.iter() {
            left_cov[i] = true;
            right_cov[j] = true;
        }
        if left_cov.into_iter().all(|c| c) && right_cov.into_iter().all(|c| c) {
            out.push(BipartiteEdges {
                left_vertices: m,
                right_vertices: n,
                edges: chosen.clone(),
            });
        }
        return;
    }
    if all.len() - start < remaining {
        return;
    }
    for idx in start..all.len() {
        chosen.push(all[idx]);
        choose_edges(all, idx + 1, remaining - 1, chosen, m, n, out);
        chosen.pop();
    }
}

/// All ways to partition `n` labeled leaves into at most `groups` unlabeled
/// groups of size at most `groups` each (the 3-level schema has `branching`
/// intermediates with `branching` leaf slots each). Returned as, for each
/// leaf, its group id. Group ids are normalized (first occurrence order) so
/// relabeled-equal assignments are produced once.
pub fn partitions(n: usize, groups: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut assignment = vec![0usize; n];
    fn rec(
        i: usize,
        n: usize,
        groups: usize,
        used_groups: usize,
        assignment: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if i == n {
            // check group sizes <= groups (branching factor)
            let mut sizes = vec![0usize; used_groups];
            for &g in assignment.iter() {
                sizes[g] += 1;
            }
            if sizes.iter().all(|&s| s <= groups) {
                out.push(assignment.clone());
            }
            return;
        }
        // Normalized set partition enumeration: leaf i can join any existing
        // group or open the next one.
        for g in 0..=used_groups.min(groups.saturating_sub(1)) {
            if g > used_groups {
                break;
            }
            assignment[i] = g;
            let new_used = used_groups.max(g + 1);
            rec(i + 1, n, groups, new_used, assignment, out);
        }
    }
    if n == 0 {
        return out;
    }
    rec(0, n, groups, 0, &mut assignment, &mut out);
    out
}

/// Build the reduced graph a flat-schema query with this value-join structure
/// would have.
fn flat_reduced_graph(graph: &BipartiteEdges) -> ReducedGraph {
    let left = flat_pattern("lhs", graph.left_vertices);
    let right = flat_pattern("rhs", graph.right_vertices);
    build_reduced(
        &left,
        graph.left_vertices,
        &right,
        graph.right_vertices,
        &graph.edges,
    )
}

/// Build the reduced graph a 3-level-schema query would have, given which
/// intermediate group each join leaf belongs to.
fn complex_reduced_graph(
    graph: &BipartiteEdges,
    left_partition: &[usize],
    right_partition: &[usize],
) -> ReducedGraph {
    let left = grouped_pattern("lhs", left_partition);
    let right = grouped_pattern("rhs", right_partition);
    build_reduced(
        &left,
        graph.left_vertices,
        &right,
        graph.right_vertices,
        &graph.edges,
    )
}

/// A flat pattern: root with `leaves` join leaves (tags leaf0, leaf1, ...).
fn flat_pattern(root_tag: &str, leaves: usize) -> TreePattern {
    let mut p = TreePattern::new(Some("S".into()), Axis::Descendant, NodeTest::tag(root_tag));
    for i in 0..leaves {
        p.add_child(
            PatternNodeId::ROOT,
            Axis::Descendant,
            NodeTest::tag(format!("leaf{i}")),
        );
    }
    p.assign_canonical_variables();
    p
}

/// A 3-level pattern: root, one intermediate per group, leaves under their
/// group's intermediate.
fn grouped_pattern(root_tag: &str, partition: &[usize]) -> TreePattern {
    let mut p = TreePattern::new(Some("S".into()), Axis::Descendant, NodeTest::tag(root_tag));
    let num_groups = partition.iter().copied().max().map(|m| m + 1).unwrap_or(0);
    let mut group_nodes = Vec::with_capacity(num_groups);
    for g in 0..num_groups {
        group_nodes.push(p.add_child(
            PatternNodeId::ROOT,
            Axis::Descendant,
            NodeTest::tag(format!("mid{g}")),
        ));
    }
    for (leaf, &g) in partition.iter().enumerate() {
        p.add_child(
            group_nodes[g],
            Axis::Descendant,
            NodeTest::tag(format!("leaf{leaf}")),
        );
    }
    p.assign_canonical_variables();
    p
}

/// Build a reduced graph from two patterns whose join leaves are the nodes
/// tagged `leaf{i}`, connected by the given bipartite edges.
fn build_reduced(
    left: &TreePattern,
    left_leaves: usize,
    right: &TreePattern,
    right_leaves: usize,
    edges: &[(usize, usize)],
) -> ReducedGraph {
    let find_leaf = |p: &TreePattern, i: usize| -> PatternNodeId {
        let tag = format!("leaf{i}");
        p.nodes()
            .find(|n| matches!(n.test(), NodeTest::Tag(t) if *t == tag))
            .map(|n| n.id())
            .expect("leaf exists by construction")
    };
    let value_edges: Vec<(PatternNodeId, PatternNodeId)> = edges
        .iter()
        .map(|&(i, j)| {
            debug_assert!(i < left_leaves && j < right_leaves);
            (find_leaf(left, i), find_leaf(right, j))
        })
        .collect();
    let jg = JoinGraph {
        left: left.clone(),
        right: right.clone(),
        value_edges,
        op: JoinOp::FollowedBy,
        window: Window::Infinite,
    };
    ReducedGraph::from_join_graph(&jg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_template_counts_match_table3() {
        // Paper Table 3, "#QT (flat schema)" column: 1, 3, 6, 16.
        assert_eq!(count_flat_templates(1), 1);
        assert_eq!(count_flat_templates(2), 3);
        assert_eq!(count_flat_templates(3), 6);
        assert_eq!(count_flat_templates(4), 16);
    }

    #[test]
    fn complex_template_counts_match_table3() {
        // Paper Table 3, "#QT (complex schema)" column: 1, 3, 16, < 230.
        assert_eq!(count_complex_templates(1, 4), 1);
        assert_eq!(count_complex_templates(2, 4), 3);
        assert_eq!(count_complex_templates(3, 4), 16);
    }

    #[test]
    #[ignore = "k=4 complex enumeration is a few seconds; run explicitly or via the table3 bench"]
    fn complex_k4_is_below_230() {
        let n = count_complex_templates(4, 4);
        assert!(n < 230, "expected < 230 templates, got {n}");
        assert!(n > 16);
    }

    #[test]
    fn bipartite_enumeration_basics() {
        // k=1: only one labeled graph (1x1, single edge).
        assert_eq!(enumerate_bipartite_edge_sets(1).len(), 1);
        assert!(enumerate_bipartite_edge_sets(0).is_empty());
        // Every enumerated graph covers all its vertices.
        for g in enumerate_bipartite_edge_sets(3) {
            let mut lcov = vec![false; g.left_vertices];
            let mut rcov = vec![false; g.right_vertices];
            for (i, j) in &g.edges {
                lcov[*i] = true;
                rcov[*j] = true;
            }
            assert!(lcov.into_iter().all(|c| c));
            assert!(rcov.into_iter().all(|c| c));
            assert_eq!(g.edges.len(), 3);
        }
    }

    #[test]
    fn partition_enumeration() {
        // 1 leaf: one partition.
        assert_eq!(partitions(1, 4).len(), 1);
        // 2 leaves: together or separate.
        assert_eq!(partitions(2, 4).len(), 2);
        // 3 leaves: Bell number B3 = 5 (all group sizes fit within 4).
        assert_eq!(partitions(3, 4).len(), 5);
        // 0 leaves: no partitions.
        assert!(partitions(0, 4).is_empty());
        // Branching 1 forces all leaves into singleton groups... except that
        // group sizes are capped at 1, so only the all-singletons assignment
        // survives; with normalized group ids that is exactly one partition
        // only when n == 1.
        assert_eq!(partitions(1, 1).len(), 1);
    }

    #[test]
    fn flat_and_complex_agree_for_k1_and_k2() {
        // With at most two value joins the intermediate level never creates
        // new shapes (a single intermediate either holds all leaves — and is
        // the LCA root — or is spliced), so the counts coincide with the
        // flat schema. This matches Table 3.
        for k in 1..=2 {
            assert_eq!(count_flat_templates(k), count_complex_templates(k, 4));
        }
    }
}
