//! Error types for XSCL parsing and analysis.

use mmqjp_xpath::XPathError;
use std::fmt;

/// Convenience result alias used throughout the crate.
pub type XsclResult<T> = Result<T, XsclError>;

/// Errors produced while parsing, normalizing or analyzing XSCL queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XsclError {
    /// The query text could not be parsed.
    Parse {
        /// Human-readable description.
        message: String,
    },
    /// An error from parsing one of the query blocks (tree patterns).
    Pattern(XPathError),
    /// A value-join predicate references a variable that is not bound in the
    /// expected query block.
    UnboundVariable {
        /// The variable name.
        variable: String,
        /// Which side of the join operator it was expected on.
        side: &'static str,
    },
    /// The query is not in value-join normal form and cannot be rewritten by
    /// this implementation (e.g. a predicate with XPath operators).
    NotNormalizable {
        /// Human-readable description.
        reason: String,
    },
    /// The query has no value-join predicate; such queries are pure tree
    /// pattern subscriptions and are handled entirely by the Stage-1 XPath
    /// evaluator, not by the Join Processor.
    NoValueJoins,
    /// The query joins more than two blocks or nests join operators, which is
    /// outside the supported fragment.
    Unsupported {
        /// Human-readable description.
        feature: String,
    },
}

impl fmt::Display for XsclError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XsclError::Parse { message } => write!(f, "XSCL parse error: {message}"),
            XsclError::Pattern(e) => write!(f, "query block pattern error: {e}"),
            XsclError::UnboundVariable { variable, side } => {
                write!(
                    f,
                    "variable `{variable}` is not bound in the {side} query block"
                )
            }
            XsclError::NotNormalizable { reason } => {
                write!(f, "query is not in value-join normal form: {reason}")
            }
            XsclError::NoValueJoins => {
                write!(
                    f,
                    "query has no value-join predicates (pure tree-pattern subscription)"
                )
            }
            XsclError::Unsupported { feature } => write!(f, "unsupported XSCL feature: {feature}"),
        }
    }
}

impl std::error::Error for XsclError {}

impl From<XPathError> for XsclError {
    fn from(e: XPathError) -> Self {
        XsclError::Pattern(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(XsclError::Parse {
            message: "bad token".into()
        }
        .to_string()
        .contains("bad token"));
        assert!(XsclError::UnboundVariable {
            variable: "x5".into(),
            side: "right"
        }
        .to_string()
        .contains("x5"));
        assert!(XsclError::NotNormalizable {
            reason: "nested path".into()
        }
        .to_string()
        .contains("nested path"));
        assert!(!XsclError::NoValueJoins.to_string().is_empty());
        assert!(XsclError::Unsupported {
            feature: "three-way join".into()
        }
        .to_string()
        .contains("three-way"));
    }

    #[test]
    fn from_xpath_error() {
        let e: XsclError = XPathError::EmptyPattern.into();
        assert!(matches!(e, XsclError::Pattern(_)));
        assert!(e.to_string().contains("pattern"));
    }
}
