//! The view cache of `RL` slices (Section 5 / Algorithm 5 of the paper).
//!
//! The materialized view `RL̂` (the join of `Rdoc` and `Rbin` on the
//! value-join node) is broken into *slices*, one per distinct string value.
//! The cache stores slices keyed by the interned string value; when an
//! incoming document shares a string value with the join state, the slice is
//! either fetched (hit) or computed and inserted (miss). A capacity bound
//! with LRU replacement models the paper's remark that "the size of the view
//! cache can be set according to the memory constraint of the system".

use crate::error::{CoreError, CoreResult};
use mmqjp_relational::{FxHashMap, Relation, Symbol};
use serde::{Deserialize, Serialize};

/// Counters describing cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ViewCacheStats {
    /// Lookups that found a cached slice.
    pub hits: usize,
    /// Lookups that missed.
    pub misses: usize,
    /// Entries evicted to respect the capacity bound.
    pub evictions: usize,
    /// Entries currently resident.
    pub entries: usize,
    /// Total tuples across all resident slices.
    pub resident_tuples: usize,
}

/// A string-keyed LRU cache of `RL` slices (keyed with the Fx hasher — the
/// keys are interned symbols probed once per distinct batch string value).
#[derive(Debug, Clone)]
pub struct ViewCache {
    capacity: Option<usize>,
    slices: FxHashMap<Symbol, CacheEntry>,
    clock: u64,
    hits: usize,
    misses: usize,
    evictions: usize,
}

#[derive(Debug, Clone)]
struct CacheEntry {
    relation: Relation,
    last_used: u64,
}

impl ViewCache {
    /// Create a cache with an optional entry-count capacity (`None` =
    /// unbounded, the paper's default experimental setting).
    pub fn new(capacity: Option<usize>) -> Self {
        ViewCache {
            capacity,
            slices: FxHashMap::default(),
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Number of resident slices.
    pub fn len(&self) -> usize {
        self.slices.len()
    }

    /// `true` when no slice is cached.
    pub fn is_empty(&self) -> bool {
        self.slices.is_empty()
    }

    /// Look up the slice for a string value, updating recency and counters.
    pub fn get(&mut self, key: Symbol) -> Option<&Relation> {
        self.clock += 1;
        let clock = self.clock;
        match self.slices.get_mut(&key) {
            Some(entry) => {
                entry.last_used = clock;
                self.hits += 1;
                Some(&entry.relation)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Check residency without touching counters or recency (used by the
    /// maintenance pass, which must not distort hit statistics).
    pub fn contains(&self, key: Symbol) -> bool {
        self.slices.contains_key(&key)
    }

    /// Insert (or replace) the slice for a string value, evicting the least
    /// recently used entries if the capacity would be exceeded.
    pub fn insert(&mut self, key: Symbol, relation: Relation) {
        self.clock += 1;
        self.slices.insert(
            key,
            CacheEntry {
                relation,
                last_used: self.clock,
            },
        );
        if let Some(cap) = self.capacity {
            while self.slices.len() > cap {
                if let Some((&lru_key, _)) = self.slices.iter().min_by_key(|(_, e)| e.last_used) {
                    self.slices.remove(&lru_key);
                    self.evictions += 1;
                } else {
                    break;
                }
            }
        }
    }

    /// Append tuples to an existing slice (Algorithm 5's `RL,s ∪= RR,s`),
    /// creating the slice if absent.
    pub fn append(&mut self, key: Symbol, tuples: &Relation) -> CoreResult<()> {
        self.clock += 1;
        let clock = self.clock;
        match self.slices.get_mut(&key) {
            Some(entry) => {
                entry
                    .relation
                    .extend_from(tuples)
                    .map_err(|_| CoreError::internal("cached slices share the RL schema"))?;
                entry.last_used = clock;
            }
            None => {
                self.insert(key, tuples.clone());
            }
        }
        Ok(())
    }

    /// Drop every cached slice (used when the join state is pruned).
    pub fn clear(&mut self) {
        self.slices.clear();
    }

    /// Invalidate slices for which the predicate returns `true` (used when
    /// window-based pruning removes documents from the join state).
    pub fn invalidate_if(&mut self, mut pred: impl FnMut(Symbol) -> bool) {
        self.slices.retain(|k, _| !pred(*k));
    }

    /// Drop every slice that still carries a row whose `var1`/`var2` symbol
    /// is in `dead` — canonical variables no live pattern binds anymore,
    /// because their last subscribing query unregistered. Returns the number
    /// of slices reclaimed. Dropping a slice never changes results: slices
    /// are pure caches and are recomputed from the join state on demand.
    pub fn purge_dead_vars(&mut self, dead: &std::collections::HashSet<Symbol>) -> usize {
        if dead.is_empty() {
            return 0;
        }
        let before = self.slices.len();
        self.slices.retain(|_, entry| {
            !entry.relation.iter().any(|row| {
                [&row[1], &row[2]]
                    .iter()
                    .any(|v| v.as_sym().is_some_and(|s| dead.contains(&s)))
            })
        });
        before - self.slices.len()
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> ViewCacheStats {
        ViewCacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.slices.len(),
            resident_tuples: self.slices.values().map(|e| e.relation.len()).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relations::schemas;
    use mmqjp_relational::{StringInterner, Value};

    fn slice(rows: usize) -> Relation {
        let mut r = Relation::new(schemas::rl());
        for i in 0..rows {
            r.push_values(vec![
                Value::Int(1),
                Value::Int(0),
                Value::Int(0),
                Value::Int(0),
                Value::Int(i as i64),
                Value::Int(42),
            ])
            .unwrap();
        }
        r
    }

    #[test]
    fn hit_miss_accounting() {
        let interner = StringInterner::new();
        let a = interner.intern("alpha");
        let b = interner.intern("beta");
        let mut cache = ViewCache::new(None);
        assert!(cache.is_empty());
        assert!(cache.get(a).is_none());
        cache.insert(a, slice(3));
        assert!(cache.get(a).is_some());
        assert!(cache.get(b).is_none());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.resident_tuples, 3);
        assert!(cache.contains(a));
        assert!(!cache.contains(b));
    }

    #[test]
    fn lru_eviction_respects_capacity() {
        let interner = StringInterner::new();
        let keys: Vec<Symbol> = (0..4).map(|i| interner.intern(&format!("k{i}"))).collect();
        let mut cache = ViewCache::new(Some(2));
        cache.insert(keys[0], slice(1));
        cache.insert(keys[1], slice(1));
        // Touch k0 so k1 becomes the LRU.
        assert!(cache.get(keys[0]).is_some());
        cache.insert(keys[2], slice(1));
        assert_eq!(cache.len(), 2);
        assert!(cache.contains(keys[0]));
        assert!(!cache.contains(keys[1]));
        assert!(cache.contains(keys[2]));
        assert_eq!(cache.stats().evictions, 1);
        cache.insert(keys[3], slice(1));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn append_extends_existing_slice() {
        let interner = StringInterner::new();
        let k = interner.intern("title");
        let mut cache = ViewCache::new(None);
        cache.append(k, &slice(2)).unwrap();
        cache.append(k, &slice(3)).unwrap();
        assert_eq!(cache.stats().resident_tuples, 5);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clear_and_invalidate() {
        let interner = StringInterner::new();
        let a = interner.intern("a");
        let b = interner.intern("b");
        let mut cache = ViewCache::new(None);
        cache.insert(a, slice(1));
        cache.insert(b, slice(1));
        cache.invalidate_if(|k| k == a);
        assert!(!cache.contains(a));
        assert!(cache.contains(b));
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn purge_dead_vars_reclaims_only_touched_slices() {
        let interner = StringInterner::new();
        let dead_var = interner.intern("S//gone//leaf");
        let live_var = interner.intern("S//blog//title");
        let mk = |var: Symbol| {
            let mut r = Relation::new(schemas::rl());
            r.push_values(vec![
                Value::Int(1),
                Value::Sym(var),
                Value::Sym(var),
                Value::Int(0),
                Value::Int(1),
                Value::Int(42),
            ])
            .unwrap();
            r
        };
        let a = interner.intern("value-a");
        let b = interner.intern("value-b");
        let mut cache = ViewCache::new(None);
        cache.insert(a, mk(dead_var));
        cache.insert(b, mk(live_var));
        let dead: std::collections::HashSet<Symbol> = [dead_var].into_iter().collect();
        assert_eq!(cache.purge_dead_vars(&dead), 1);
        assert!(!cache.contains(a));
        assert!(cache.contains(b));
        // An empty dead set is a no-op.
        assert_eq!(cache.purge_dead_vars(&Default::default()), 0);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let interner = StringInterner::new();
        let mut cache = ViewCache::new(None);
        for i in 0..100 {
            cache.insert(interner.intern(&format!("v{i}")), slice(1));
        }
        assert_eq!(cache.len(), 100);
        assert_eq!(cache.stats().evictions, 0);
    }
}
