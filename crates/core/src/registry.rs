//! Query registration: templates, `RT` relations, per-query metadata and the
//! Stage-1 pattern index.

use crate::config::ProcessingMode;
use crate::cqt;
use crate::error::{CoreError, CoreResult};
use crate::relations::schemas;
use mmqjp_relational::{ConjunctiveQuery, Relation, StringInterner, Value};
use mmqjp_xpath::{PatternId, PatternIndex, PatternNodeId, TreePattern};
use mmqjp_xscl::{
    normalize_query, FromClause, JoinGraph, JoinOp, QueryId, QueryTemplate, ReducedGraph,
    SelectClause, Side, TemplateCatalog, TemplateId, Window, XsclQuery,
};
use std::collections::HashMap;
use std::sync::Arc;

/// Runtime state of one query template: the representative template, its
/// `RT` relation (one tuple per registered query orientation) and the two
/// compiled conjunctive-query forms.
#[derive(Debug, Clone)]
pub struct TemplateRuntime {
    /// The template.
    pub template: QueryTemplate,
    /// `RT(qid, var1, ..., varm, wl)` — one tuple per member orientation.
    pub rt: Relation,
    /// Algorithm-1 conjunctive query over the base witness relations.
    pub cqt_basic: ConjunctiveQuery,
    /// Algorithm-4 conjunctive query over `RL` / `RR`.
    pub cqt_materialized: ConjunctiveQuery,
}

impl TemplateRuntime {
    fn new(template: QueryTemplate) -> Self {
        let rt = Relation::new(schemas::rt(template.num_meta_vars()));
        let name = cqt::rt_name(template.id.index());
        let cqt_basic = cqt::template_cqt_basic(&template, &name);
        let cqt_materialized = cqt::template_cqt_materialized(&template, &name);
        TemplateRuntime {
            template,
            rt,
            cqt_basic,
            cqt_materialized,
        }
    }

    /// Name of this template's `RT` relation in the engine database.
    pub fn rt_name(&self) -> String {
        cqt::rt_name(self.template.id.index())
    }

    /// Number of registered query orientations in this template.
    pub fn members(&self) -> usize {
        self.rt.len()
    }
}

/// One orientation of a registered query (a `FOLLOWED BY` query has one;
/// a symmetric `JOIN` query has two — the original and the block-swapped
/// form).
#[derive(Debug, Clone)]
pub struct Registration {
    /// The registration id stored in the `qid` column of `RT`.
    pub rid: i64,
    /// The template this orientation belongs to.
    pub template: TemplateId,
    /// Per meta-variable position, this orientation's canonical variable
    /// name.
    pub assignment: Vec<String>,
    /// `true` when this orientation has the query's *right* block playing the
    /// previous-document role.
    pub swapped: bool,
    /// Pattern playing the previous-document (left) role in this orientation.
    pub prev_pattern: TreePattern,
    /// Pattern playing the current-document (right) role in this orientation.
    pub cur_pattern: TreePattern,
    /// The per-query conjunctive query used by the Sequential baseline.
    pub sequential_cqt: ConjunctiveQuery,
}

/// Runtime state of one registered query.
#[derive(Debug, Clone)]
pub struct QueryRuntime {
    /// The query id.
    pub id: QueryId,
    /// The normalized query.
    pub query: XsclQuery,
    /// The join operator (None for single-block subscriptions).
    pub op: Option<JoinOp>,
    /// The window (None for single-block subscriptions).
    pub window: Option<Window>,
    /// The `PUBLISH` name, if any.
    pub publish: Option<String>,
    /// The `SELECT` clause.
    pub select: SelectClause,
    /// The registered orientations (empty for single-block subscriptions).
    pub registrations: Vec<Registration>,
    /// For single-block subscriptions, the (normalized) pattern.
    pub single_pattern: Option<TreePattern>,
}

impl QueryRuntime {
    /// `true` when this is an inter-document join query.
    pub fn is_join(&self) -> bool {
        !self.registrations.is_empty()
    }
}

/// The registry of all registered queries, their templates and the Stage-1
/// pattern index.
#[derive(Debug)]
pub struct Registry {
    interner: Arc<StringInterner>,
    pattern_index: PatternIndex,
    requested_edges: HashMap<PatternId, Vec<(PatternNodeId, PatternNodeId)>>,
    catalog: TemplateCatalog,
    templates: Vec<TemplateRuntime>,
    queries: Vec<QueryRuntime>,
    rid_map: HashMap<i64, (usize, usize)>,
    /// Maximum finite time window across registered join queries; `None`
    /// while any registered query has an infinite (or count) window.
    max_finite_window: Option<u64>,
    any_infinite_window: bool,
}

impl Registry {
    /// Create an empty registry sharing the engine's string interner.
    pub fn new(interner: Arc<StringInterner>) -> Self {
        Registry {
            interner,
            pattern_index: PatternIndex::new(),
            requested_edges: HashMap::new(),
            catalog: TemplateCatalog::new(),
            templates: Vec::new(),
            queries: Vec::new(),
            rid_map: HashMap::new(),
            max_finite_window: None,
            any_infinite_window: false,
        }
    }

    /// Register a query (already parsed). Returns its id.
    ///
    /// `mode` determines whether the Sequential per-query conjunctive query
    /// is compiled (it is skipped in MMQJP modes to keep registration cheap
    /// for very large query sets, and compiled unconditionally in
    /// [`ProcessingMode::Sequential`]).
    pub fn register(&mut self, query: XsclQuery, mode: ProcessingMode) -> CoreResult<QueryId> {
        let normalized = normalize_query(&query).map_err(|e| match e {
            // Single-block subscriptions are allowed; other errors propagate.
            mmqjp_xscl::XsclError::NoValueJoins => mmqjp_xscl::XsclError::NoValueJoins,
            other => other,
        });
        let normalized = match normalized {
            Ok(n) => n,
            Err(e) => return Err(CoreError::Query(e)),
        };
        let id = QueryId(self.queries.len() as u64);
        let nq = normalized.query.clone().with_id(id);

        let runtime = match &nq.from {
            FromClause::Single(block) => {
                // Pure tree-pattern subscription: Stage 1 only.
                self.pattern_index.register(block.pattern.clone());
                QueryRuntime {
                    id,
                    op: None,
                    window: None,
                    publish: nq.publish.clone(),
                    select: nq.select,
                    registrations: Vec::new(),
                    single_pattern: Some(block.pattern.clone()),
                    query: nq,
                }
            }
            FromClause::Join { op, window, .. } => {
                let op = *op;
                let window = *window;
                self.track_window(window);
                let graph = JoinGraph::from_query(&nq)?;
                let mut registrations = Vec::new();
                let orientations: Vec<(JoinGraph, bool)> = match op {
                    JoinOp::FollowedBy => vec![(graph, false)],
                    JoinOp::Join => vec![(graph.clone(), false), (graph.swapped(), true)],
                };
                for (oriented, swapped) in orientations {
                    let reduced = ReducedGraph::from_join_graph(&oriented);
                    let membership = self.catalog.insert(&reduced);
                    // Create the template runtime if this is a new template.
                    if membership.template.index() == self.templates.len() {
                        self.templates.push(TemplateRuntime::new(
                            self.catalog.template(membership.template).clone(),
                        ));
                    }
                    let rid = (id.raw() as i64) * 2 + if swapped { 1 } else { 0 };
                    // RT tuple: (qid, var1..varm, wl).
                    let mut tuple = vec![Value::Int(rid)];
                    for var in &membership.assignment {
                        tuple.push(Value::Sym(self.interner.intern(var)));
                    }
                    tuple.push(Value::Int(window_length(window)));
                    self.templates[membership.template.index()]
                        .rt
                        .push_values(tuple)?;

                    // Stage-1 registration: both patterns, with the reduced
                    // structural edges (plus join-node-root self edges) as
                    // the requested edge set.
                    let prev_pattern = oriented.left.clone();
                    let cur_pattern = oriented.right.clone();
                    self.register_pattern_edges(&prev_pattern, &reduced, Side::Left);
                    self.register_pattern_edges(&cur_pattern, &reduced, Side::Right);

                    let sequential_cqt = if mode == ProcessingMode::Sequential {
                        let template = &self.templates[membership.template.index()].template;
                        cqt::per_query_cqt(template, &membership.assignment, &self.interner)
                    } else {
                        // Placeholder; never evaluated outside Sequential mode.
                        ConjunctiveQuery::new(Vec::<String>::new())
                    };

                    let registration = Registration {
                        rid,
                        template: membership.template,
                        assignment: membership.assignment,
                        swapped,
                        prev_pattern,
                        cur_pattern,
                        sequential_cqt,
                    };
                    self.rid_map
                        .insert(rid, (id.raw() as usize, registrations.len()));
                    registrations.push(registration);
                }
                QueryRuntime {
                    id,
                    op: Some(op),
                    window: Some(window),
                    publish: nq.publish.clone(),
                    select: nq.select,
                    registrations,
                    single_pattern: None,
                    query: nq,
                }
            }
        };
        self.queries.push(runtime);
        Ok(id)
    }

    fn register_pattern_edges(
        &mut self,
        pattern: &TreePattern,
        reduced: &ReducedGraph,
        side: Side,
    ) {
        let pid = self.pattern_index.register(pattern.clone());
        let entry = self.requested_edges.entry(pid).or_default();
        for edge in reduced.structural_edges(side) {
            if !entry.contains(&edge) {
                entry.push(edge);
            }
        }
        // Join-node roots need a degenerate self edge so their bindings reach
        // the witness relations even without an incoming structural edge.
        let tree = reduced.tree(side);
        for node in &tree.nodes {
            if node.parent.is_none() && node.is_join_node {
                let self_edge = (node.original, node.original);
                if !entry.contains(&self_edge) {
                    entry.push(self_edge);
                }
            }
        }
    }

    fn track_window(&mut self, window: Window) {
        match window {
            Window::Time(t) => {
                self.max_finite_window = Some(self.max_finite_window.unwrap_or(0).max(t));
            }
            Window::Infinite | Window::Count(_) => {
                self.any_infinite_window = true;
            }
        }
    }

    /// The string interner shared with the engine.
    pub fn interner(&self) -> &Arc<StringInterner> {
        &self.interner
    }

    /// Number of registered queries.
    pub fn num_queries(&self) -> usize {
        self.queries.len()
    }

    /// Number of distinct templates.
    pub fn num_templates(&self) -> usize {
        self.templates.len()
    }

    /// Number of distinct Stage-1 patterns.
    pub fn num_patterns(&self) -> usize {
        self.pattern_index.len()
    }

    /// The template runtimes.
    pub fn templates(&self) -> &[TemplateRuntime] {
        &self.templates
    }

    /// Mutable access to the template runtimes (the engine temporarily moves
    /// `RT` relations into its evaluation database).
    pub(crate) fn templates_mut(&mut self) -> &mut Vec<TemplateRuntime> {
        &mut self.templates
    }

    /// The registered queries.
    pub fn queries(&self) -> &[QueryRuntime] {
        &self.queries
    }

    /// Look up a query by id.
    pub fn query(&self, id: QueryId) -> CoreResult<&QueryRuntime> {
        self.queries
            .get(id.raw() as usize)
            .ok_or(CoreError::UnknownQuery { id: id.raw() })
    }

    /// Resolve a registration id from an `RT` / result tuple back to the
    /// query and orientation it belongs to.
    pub fn resolve_rid(&self, rid: i64) -> Option<(&QueryRuntime, &Registration)> {
        let (qi, ri) = self.rid_map.get(&rid)?;
        let q = self.queries.get(*qi)?;
        let r = q.registrations.get(*ri)?;
        Some((q, r))
    }

    /// The Stage-1 pattern index.
    pub fn pattern_index(&self) -> &PatternIndex {
        &self.pattern_index
    }

    /// Mutable access to the Stage-1 pattern index (evaluation updates its
    /// statistics).
    pub fn pattern_index_mut(&mut self) -> &mut PatternIndex {
        &mut self.pattern_index
    }

    /// The per-pattern requested structural edges.
    pub fn requested_edges(&self) -> &HashMap<PatternId, Vec<(PatternNodeId, PatternNodeId)>> {
        &self.requested_edges
    }

    /// The template catalog.
    pub fn catalog(&self) -> &TemplateCatalog {
        &self.catalog
    }

    /// The maximum window across registered join queries: `Some(t)` when all
    /// join queries have finite time windows, `None` otherwise. Used by
    /// window-based state pruning.
    pub fn max_window(&self) -> Option<u64> {
        if self.any_infinite_window {
            None
        } else {
            self.max_finite_window
        }
    }

    /// The maximum *finite* time window registered so far, even when other
    /// queries have infinite (or count) windows. Used to derive the
    /// join-state bucket width, which is a granularity (never a correctness)
    /// parameter.
    pub fn max_finite_window(&self) -> Option<u64> {
        self.max_finite_window
    }

    /// `true` when some registered join query has an infinite or count
    /// window, which forbids window-based eviction of join state.
    pub fn has_infinite_window(&self) -> bool {
        self.any_infinite_window
    }
}

/// Encode a window as the `wl` column value.
pub fn window_length(window: Window) -> i64 {
    match window {
        Window::Time(t) => t.min(i64::MAX as u64) as i64,
        Window::Infinite | Window::Count(_) => i64::MAX,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmqjp_xscl::parse_query;

    const Q1: &str = "S//book->x1[.//author->x2][.//title->x3] \
        FOLLOWED BY{x2=x5 AND x3=x6, 100} \
        S//blog->x4[.//author->x5][.//title->x6]";
    const Q2: &str = "S//book->x1[.//author->x2][.//category->x7] \
        FOLLOWED BY{x2=x5 AND x7=x8, 200} \
        S//blog->x4[.//author->x5][.//category->x8]";
    const Q3: &str = "S//blog->x4[.//author->x5][.//title->x6] \
        FOLLOWED BY{x5=x5' AND x6=x6', 300} \
        S//blog->x4'[.//author->x5'][.//title->x6']";

    fn registry() -> Registry {
        Registry::new(Arc::new(StringInterner::new()))
    }

    #[test]
    fn paper_example_queries_share_one_template() {
        let mut r = registry();
        let id1 = r
            .register(parse_query(Q1).unwrap(), ProcessingMode::Mmqjp)
            .unwrap();
        let id2 = r
            .register(parse_query(Q2).unwrap(), ProcessingMode::Mmqjp)
            .unwrap();
        let id3 = r
            .register(parse_query(Q3).unwrap(), ProcessingMode::Mmqjp)
            .unwrap();
        assert_eq!(id1, QueryId(0));
        assert_eq!(id2, QueryId(1));
        assert_eq!(id3, QueryId(2));
        assert_eq!(r.num_queries(), 3);
        assert_eq!(r.num_templates(), 1);
        // The RT relation mirrors Table 4(a): three tuples, one per query.
        let rt = &r.templates()[0].rt;
        assert_eq!(rt.len(), 3);
        assert_eq!(rt.schema().arity(), 8); // qid + 6 vars + wl

        // Window lengths are stored per query.
        let wls: Vec<i64> = rt.iter().map(|t| t[7].as_int().unwrap()).collect();
        assert_eq!(wls, vec![100, 200, 300]);
        // Q1 and Q2 share the book and blog block patterns; Q3 reuses the
        // blog block. Distinct patterns: book(author,title),
        // blog(author,title), book(author,category), blog(author,category)
        // => 4.
        assert_eq!(r.num_patterns(), 4);
        assert_eq!(r.max_window(), Some(300));
    }

    #[test]
    fn join_queries_register_two_orientations() {
        let mut r = registry();
        let q = "S//item->a[.//title->t1] JOIN{t1=t2, 50} S//post->b[.//title->t2]";
        let id = r
            .register(parse_query(q).unwrap(), ProcessingMode::Mmqjp)
            .unwrap();
        let runtime = r.query(id).unwrap();
        assert!(runtime.is_join());
        assert_eq!(runtime.registrations.len(), 2);
        assert!(!runtime.registrations[0].swapped);
        assert!(runtime.registrations[1].swapped);
        // Both orientations resolve back to the query.
        let (q0, r0) = r.resolve_rid(runtime.registrations[0].rid).unwrap();
        let (q1, r1) = r.resolve_rid(runtime.registrations[1].rid).unwrap();
        assert_eq!(q0.id, id);
        assert_eq!(q1.id, id);
        assert!(!r0.swapped);
        assert!(r1.swapped);
        // The two orientations of an asymmetric query land in the same
        // single-value-join template.
        assert_eq!(r.num_templates(), 1);
        assert_eq!(r.templates()[0].members(), 2);
    }

    #[test]
    fn single_block_subscription_is_accepted() {
        let mut r = registry();
        let id = r
            .register(
                parse_query("S//blog[.//author]").unwrap(),
                ProcessingMode::Mmqjp,
            )
            .unwrap();
        let runtime = r.query(id).unwrap();
        assert!(!runtime.is_join());
        assert!(runtime.single_pattern.is_some());
        assert_eq!(r.num_templates(), 0);
        assert_eq!(r.num_patterns(), 1);
    }

    #[test]
    fn requested_edges_cover_reduced_structure_and_self_edges() {
        let mut r = registry();
        // Single value join: both sides reduce to single nodes, so the
        // requested edges are self edges.
        r.register(
            parse_query("S//book->b[.//author->a] FOLLOWED BY{a=x, 10} S//blog->g[.//author->x]")
                .unwrap(),
            ProcessingMode::Mmqjp,
        )
        .unwrap();
        let total_edges: usize = r.requested_edges().values().map(|v| v.len()).sum();
        assert_eq!(total_edges, 2); // one self edge per pattern
        for edges in r.requested_edges().values() {
            for (a, b) in edges {
                assert_eq!(a, b);
            }
        }
        // Q1 adds real structural edges.
        r.register(parse_query(Q1).unwrap(), ProcessingMode::Mmqjp)
            .unwrap();
        let q1_edges: usize = r.requested_edges().values().map(|v| v.len()).sum();
        assert_eq!(q1_edges, 2 + 4);
    }

    #[test]
    fn sequential_mode_compiles_per_query_cqt() {
        let mut r = registry();
        r.register(parse_query(Q1).unwrap(), ProcessingMode::Sequential)
            .unwrap();
        let reg = &r.queries()[0].registrations[0];
        assert_eq!(reg.sequential_cqt.num_atoms(), 8);
        // In MMQJP mode the per-query CQT is left empty.
        let mut r2 = registry();
        r2.register(parse_query(Q1).unwrap(), ProcessingMode::Mmqjp)
            .unwrap();
        assert_eq!(
            r2.queries()[0].registrations[0].sequential_cqt.num_atoms(),
            0
        );
    }

    #[test]
    fn window_tracking() {
        let mut r = registry();
        r.register(parse_query(Q1).unwrap(), ProcessingMode::Mmqjp)
            .unwrap();
        assert_eq!(r.max_window(), Some(100));
        assert_eq!(r.max_finite_window(), Some(100));
        assert!(!r.has_infinite_window());
        r.register(
            parse_query("S//a->x FOLLOWED BY{x=y, INF} S//b->y").unwrap(),
            ProcessingMode::Mmqjp,
        )
        .unwrap();
        assert_eq!(r.max_window(), None);
        assert_eq!(r.max_finite_window(), Some(100));
        assert!(r.has_infinite_window());
        assert_eq!(window_length(Window::Time(5)), 5);
        assert_eq!(window_length(Window::Infinite), i64::MAX);
        assert_eq!(window_length(Window::Count(3)), i64::MAX);
    }

    #[test]
    fn unknown_query_lookup_fails() {
        let r = registry();
        assert!(matches!(
            r.query(QueryId(5)),
            Err(CoreError::UnknownQuery { id: 5 })
        ));
        assert!(r.resolve_rid(99).is_none());
    }

    #[test]
    fn template_runtime_metadata() {
        let mut r = registry();
        r.register(parse_query(Q1).unwrap(), ProcessingMode::Mmqjp)
            .unwrap();
        let tr = &r.templates()[0];
        assert_eq!(tr.rt_name(), "RT_0");
        assert_eq!(tr.members(), 1);
        assert_eq!(tr.template.num_meta_vars(), 6);
        assert!(tr.cqt_basic.validate().is_ok());
        assert!(tr.cqt_materialized.validate().is_ok());
        assert_eq!(r.catalog().len(), 1);
        assert!(!r.interner().is_empty());
    }
}
