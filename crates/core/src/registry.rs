//! Query registration and the full subscription lifecycle: templates, `RT`
//! relations, per-query metadata and the Stage-1 pattern index.
//!
//! Queries can be [`register`](Registry::register)ed *and*
//! [`unregister`](Registry::unregister)ed at runtime. Unregistration is
//! incremental — O(the departing query's footprint), never a registry
//! rebuild: the query's `RT` tuples are removed in place, its pattern and
//! requested-edge registrations are released through reference counts (the
//! pattern index drops a pattern when its last subscriber leaves), an
//! emptied template is retired from the catalog, and the window bounds are
//! recomputed from a window multiset so document retention can *tighten*
//! after the widest-window query departs. Freed [`QueryId`]s (and template /
//! pattern ids) are tombstoned, never reused, which keeps shard assignment
//! and the canonical output order deterministic across churn.

use crate::audit::AuditViolation;
use crate::config::ProcessingMode;
use crate::cqt::{self, PlanInputKind};
use crate::error::{CoreError, CoreResult};
use crate::relations::schemas;
use mmqjp_relational::{
    verify_plan_strict, ConjunctiveQuery, PhysicalPlan, Relation, SharedKeyRule, StringInterner,
    Symbol, Value, VerifyOptions,
};
use mmqjp_xpath::{PatternId, PatternIndex, PatternNodeId, TreePattern};
use mmqjp_xscl::{
    normalize_query, FromClause, JoinGraph, JoinOp, QueryId, QueryTemplate, ReducedGraph,
    SelectClause, Side, TemplateCatalog, TemplateId, Window, XsclQuery,
};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Runtime state of one query template: the representative template, its
/// `RT` relation (one tuple per registered query orientation), the two
/// declarative conjunctive-query forms and the compiled physical plan for
/// the variant the engine's mode executes.
#[derive(Debug, Clone)]
pub struct TemplateRuntime {
    /// The template.
    pub template: QueryTemplate,
    /// `RT(qid, var1, ..., varm, wl)` — one tuple per member orientation.
    pub rt: Relation,
    /// Algorithm-1 conjunctive query over the base witness relations (the
    /// declarative form; execution uses [`plan_basic`](Self::plan_basic)).
    pub cqt_basic: ConjunctiveQuery,
    /// Algorithm-4 conjunctive query over `RL` / `RR`.
    pub cqt_materialized: ConjunctiveQuery,
    /// [`cqt_basic`](Self::cqt_basic) compiled to a physical plan at
    /// registration time; `process_batch` executes it by reference. Only
    /// compiled when the engine's mode is [`ProcessingMode::Mmqjp`] — the
    /// one mode that executes the basic form.
    pub plan_basic: Option<PhysicalPlan>,
    /// [`cqt_materialized`](Self::cqt_materialized) compiled to a physical
    /// plan. Only compiled in [`ProcessingMode::MmqjpViewMat`].
    pub plan_materialized: Option<PhysicalPlan>,
    /// The engine relations behind `plan_basic`'s input slots.
    pub(crate) inputs_basic: Vec<PlanInputKind>,
    /// The engine relations behind `plan_materialized`'s input slots.
    pub(crate) inputs_materialized: Vec<PlanInputKind>,
    rt_name: String,
}

impl TemplateRuntime {
    /// Build the runtime for a new template, compiling exactly the plan
    /// variant the engine's (fixed) mode executes: basic for `Mmqjp`,
    /// materialized for `MmqjpViewMat`, neither for `Sequential` (which
    /// runs per-query plans). With `verify`, each compiled plan is checked
    /// against its source CQT and the engine schemas before it is accepted
    /// (see [`mmqjp_relational::verify`]); a violation rejects the
    /// registration with a typed diagnostic. Returns the runtime and the
    /// number of plans compiled.
    fn new(
        template: QueryTemplate,
        mode: ProcessingMode,
        verify: bool,
    ) -> CoreResult<(Self, usize)> {
        let rt = Relation::new(schemas::rt(template.num_meta_vars()));
        let rt_arity = rt.schema().arity();
        let name = cqt::rt_name(template.id.index());
        let cqt_basic = cqt::template_cqt_basic(&template, &name);
        let cqt_materialized = cqt::template_cqt_materialized(&template, &name);
        let arity_of = |rel: &str| cqt::relation_arity(rel, &name, rt_arity);
        let plan_basic = if mode == ProcessingMode::Mmqjp {
            let plan = PhysicalPlan::compile(&cqt_basic, arity_of)?;
            if verify {
                verify_compiled(&plan, &cqt_basic, arity_of, true)?;
            }
            Some(plan)
        } else {
            None
        };
        let plan_materialized = if mode == ProcessingMode::MmqjpViewMat {
            let plan = PhysicalPlan::compile(&cqt_materialized, arity_of)?;
            if verify {
                // The batch-restriction precondition only concerns the basic
                // form's Rdoc atoms; the materialized form reads RL/RR.
                verify_compiled(&plan, &cqt_materialized, arity_of, false)?;
            }
            Some(plan)
        } else {
            None
        };
        let compiled = usize::from(plan_basic.is_some()) + usize::from(plan_materialized.is_some());
        let inputs_basic = plan_basic
            .as_ref()
            .map(|p| cqt::plan_input_kinds(p, &name))
            .unwrap_or_default();
        let inputs_materialized = plan_materialized
            .as_ref()
            .map(|p| cqt::plan_input_kinds(p, &name))
            .unwrap_or_default();
        let runtime = TemplateRuntime {
            template,
            rt,
            cqt_basic,
            cqt_materialized,
            plan_basic,
            plan_materialized,
            inputs_basic,
            inputs_materialized,
            rt_name: name,
        };
        Ok((runtime, compiled))
    }

    /// Name of this template's `RT` relation in the engine database.
    pub fn rt_name(&self) -> String {
        self.rt_name.clone()
    }

    /// Number of registered query orientations in this template.
    pub fn members(&self) -> usize {
        self.rt.len()
    }
}

/// One orientation of a registered query (a `FOLLOWED BY` query has one;
/// a symmetric `JOIN` query has two — the original and the block-swapped
/// form).
#[derive(Debug, Clone)]
pub struct Registration {
    /// The registration id stored in the `qid` column of `RT`.
    pub rid: i64,
    /// The template this orientation belongs to.
    pub template: TemplateId,
    /// Per meta-variable position, this orientation's canonical variable
    /// name.
    pub assignment: Vec<String>,
    /// `true` when this orientation has the query's *right* block playing the
    /// previous-document role.
    pub swapped: bool,
    /// Pattern playing the previous-document (left) role in this orientation.
    pub prev_pattern: TreePattern,
    /// Pattern playing the current-document (right) role in this orientation.
    pub cur_pattern: TreePattern,
    /// Pattern-index id of [`prev_pattern`](Self::prev_pattern) (released on
    /// unregistration).
    pub prev_pid: PatternId,
    /// Pattern-index id of [`cur_pattern`](Self::cur_pattern).
    pub cur_pid: PatternId,
    /// The structural edges this orientation requested for
    /// [`prev_pattern`](Self::prev_pattern) (released on unregistration).
    pub prev_edges: Vec<(PatternNodeId, PatternNodeId)>,
    /// The structural edges this orientation requested for
    /// [`cur_pattern`](Self::cur_pattern).
    pub cur_edges: Vec<(PatternNodeId, PatternNodeId)>,
    /// The per-query conjunctive query used by the Sequential baseline.
    pub sequential_cqt: ConjunctiveQuery,
    /// [`sequential_cqt`](Self::sequential_cqt) compiled to a physical plan
    /// (`None` outside [`ProcessingMode::Sequential`], where the per-query
    /// form is never evaluated).
    pub sequential_plan: Option<PhysicalPlan>,
    /// The engine relations behind `sequential_plan`'s input slots.
    pub(crate) sequential_inputs: Vec<PlanInputKind>,
}

/// Runtime state of one registered query.
#[derive(Debug, Clone)]
pub struct QueryRuntime {
    /// The query id.
    pub id: QueryId,
    /// The normalized query.
    pub query: XsclQuery,
    /// The join operator (None for single-block subscriptions).
    pub op: Option<JoinOp>,
    /// The window (None for single-block subscriptions).
    pub window: Option<Window>,
    /// The `PUBLISH` name, if any.
    pub publish: Option<String>,
    /// The `SELECT` clause.
    pub select: SelectClause,
    /// The registered orientations (empty for single-block subscriptions).
    pub registrations: Vec<Registration>,
    /// For single-block subscriptions, the (normalized) pattern.
    pub single_pattern: Option<TreePattern>,
    /// Pattern-index id of [`single_pattern`](Self::single_pattern).
    pub single_pid: Option<PatternId>,
    /// Number of documents the engine had processed when this query
    /// registered. A subscription only joins documents that arrived after
    /// it — document sequence numbers `<= arrival_floor` are filtered out of
    /// its matches, so a query (re-)registered mid-stream never picks up
    /// join state that happens to be resident from before its subscription.
    pub arrival_floor: u64,
}

impl QueryRuntime {
    /// `true` when this is an inter-document join query.
    pub fn is_join(&self) -> bool {
        !self.registrations.is_empty()
    }
}

/// Check a compiled plan against its source conjunctive query and the engine
/// schemas, raising any [`PlanViolation`](mmqjp_relational::PlanViolation)s
/// as a typed [`CoreError::Relational`] error. `batch_restriction` adds the
/// PR 6 soundness precondition for plans over the base witness relations:
/// every `Rdoc` atom must equate its `strVal` column (term position 2) with
/// some `RdocW` atom, because batch evaluation restricts the `Rdoc` state
/// scan to the string values present in the current batch.
fn verify_compiled(
    plan: &PhysicalPlan,
    query: &ConjunctiveQuery,
    arity_of: impl Fn(&str) -> Option<usize>,
    batch_restriction: bool,
) -> CoreResult<()> {
    let options = VerifyOptions {
        shared_key: batch_restriction.then(|| SharedKeyRule {
            left: cqt::RDOC.to_owned(),
            right: cqt::RDOC_W.to_owned(),
            position: 2,
        }),
    };
    verify_plan_strict(plan, query, arity_of, &options).map_err(CoreError::from)
}

/// The incremental effects of one [`Registry::unregister`] call, reported so
/// the engine can maintain its counters and caches.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct UnregisterEffects {
    /// Distinct Stage-1 patterns dropped because the departing query was
    /// their last subscriber.
    pub patterns_dropped: usize,
    /// Templates retired (their `RT` relation became empty and their catalog
    /// slot was tombstoned).
    pub templates_retired: usize,
    /// Canonical variable symbols no live pattern binds anymore; view-cache
    /// slices carrying rows under these symbols can be reclaimed.
    pub dead_vars: Vec<Symbol>,
    /// `true` when the departing query changed the registered window bounds
    /// (so retention can tighten).
    pub window_changed: bool,
}

/// The registry of all registered queries, their templates and the Stage-1
/// pattern index.
#[derive(Debug)]
pub struct Registry {
    interner: Arc<StringInterner>,
    pattern_index: PatternIndex,
    /// The live requested-edge lists handed to Stage 1, one per pattern, in
    /// first-registration order (kept deterministic across churn).
    requested_edges: HashMap<PatternId, Vec<(PatternNodeId, PatternNodeId)>>,
    /// Reference counts behind `requested_edges`: how many live
    /// registrations requested each `(pattern, edge)`.
    edge_refs: HashMap<PatternId, HashMap<(PatternNodeId, PatternNodeId), usize>>,
    /// How many live *distinct* patterns bind each canonical variable
    /// symbol. A symbol leaving this map means no future witness row can
    /// carry it.
    var_refs: HashMap<Symbol, usize>,
    catalog: TemplateCatalog,
    /// Template runtimes by `TemplateId` index; `None` marks a retired
    /// template (ids are never reused). Boxed so a tombstoned slot costs a
    /// pointer, not the full runtime footprint, under unbounded churn.
    templates: Vec<Option<Box<TemplateRuntime>>>,
    live_templates: usize,
    /// Query runtimes by `QueryId` index; `None` marks an unregistered query
    /// (ids are never reused). Boxed for the same reason as `templates`.
    queries: Vec<Option<Box<QueryRuntime>>>,
    live_queries: usize,
    rid_map: HashMap<i64, (usize, usize)>,
    /// Multiset of finite time windows across live join queries, so the
    /// maximum can tighten when the widest-window query unregisters.
    finite_windows: BTreeMap<u64, usize>,
    /// Number of live join queries with an infinite (or count) window.
    infinite_windows: usize,
    /// Physical plans compiled so far (one per new template in the MMQJP
    /// modes, one per orientation in Sequential mode). Cumulative.
    plans_compiled: usize,
    /// Verify every compiled plan against its source CQT at registration
    /// time (see [`EngineConfig::verify_plans`](crate::EngineConfig)).
    verify_plans: bool,
}

impl Registry {
    /// Create an empty registry sharing the engine's string interner.
    pub fn new(interner: Arc<StringInterner>) -> Self {
        Registry {
            interner,
            pattern_index: PatternIndex::new(),
            requested_edges: HashMap::new(),
            edge_refs: HashMap::new(),
            var_refs: HashMap::new(),
            catalog: TemplateCatalog::new(),
            templates: Vec::new(),
            live_templates: 0,
            queries: Vec::new(),
            live_queries: 0,
            rid_map: HashMap::new(),
            finite_windows: BTreeMap::new(),
            infinite_windows: 0,
            plans_compiled: 0,
            verify_plans: true,
        }
    }

    /// Enable or disable registration-time plan verification (on by
    /// default). The engine forwards
    /// [`EngineConfig::verify_plans`](crate::EngineConfig) here.
    pub fn set_verify_plans(&mut self, verify: bool) {
        self.verify_plans = verify;
    }

    /// Register a query (already parsed). Returns its id.
    ///
    /// `mode` determines whether the Sequential per-query conjunctive query
    /// is compiled (it is skipped in MMQJP modes to keep registration cheap
    /// for very large query sets, and compiled unconditionally in
    /// [`ProcessingMode::Sequential`]). `arrival_floor` is the number of
    /// documents already processed: the new subscription only joins
    /// documents arriving after it (see [`QueryRuntime::arrival_floor`]).
    // Takes the query by value to mirror the public `MmqjpEngine::register`
    // signature it backs; the registry keeps the normalized copy.
    #[allow(clippy::needless_pass_by_value)]
    pub fn register(
        &mut self,
        query: XsclQuery,
        mode: ProcessingMode,
        arrival_floor: u64,
    ) -> CoreResult<QueryId> {
        let normalized = normalize_query(&query).map_err(|e| match e {
            // Single-block subscriptions are allowed; other errors propagate.
            mmqjp_xscl::XsclError::NoValueJoins => mmqjp_xscl::XsclError::NoValueJoins,
            other => other,
        });
        let normalized = match normalized {
            Ok(n) => n,
            Err(e) => return Err(CoreError::Query(e)),
        };
        let id = QueryId(self.queries.len() as u64);
        let nq = normalized.query.clone().with_id(id);

        let runtime = match &nq.from {
            FromClause::Single(block) => {
                // Pure tree-pattern subscription: Stage 1 only.
                let pid = self.index_pattern(&block.pattern);
                QueryRuntime {
                    id,
                    op: None,
                    window: None,
                    publish: nq.publish.clone(),
                    select: nq.select,
                    registrations: Vec::new(),
                    single_pattern: Some(block.pattern.clone()),
                    single_pid: Some(pid),
                    arrival_floor,
                    query: nq,
                }
            }
            FromClause::Join { op, window, .. } => {
                let op = *op;
                let window = *window;
                let graph = JoinGraph::from_query(&nq)?;
                let mut registrations = Vec::new();
                let orientations: Vec<(JoinGraph, bool)> = match op {
                    JoinOp::FollowedBy => vec![(graph, false)],
                    JoinOp::Join => vec![(graph.clone(), false), (graph.swapped(), true)],
                };
                for (oriented, swapped) in orientations {
                    let reduced = ReducedGraph::from_join_graph(&oriented);
                    let membership = self.catalog.insert(&reduced);
                    // Create the template runtime if this is a new template
                    // (the CQT form the engine's mode executes is compiled
                    // to a physical plan exactly once, here).
                    if membership.template.index() == self.templates.len() {
                        let (runtime, compiled) = TemplateRuntime::new(
                            self.catalog.template(membership.template).clone(),
                            mode,
                            self.verify_plans,
                        )?;
                        self.templates.push(Some(Box::new(runtime)));
                        self.live_templates += 1;
                        self.plans_compiled += compiled;
                    }
                    let rid = (id.raw() as i64) * 2 + if swapped { 1 } else { 0 };
                    // RT tuple: (qid, var1..varm, wl).
                    let mut tuple = vec![Value::Int(rid)];
                    for var in &membership.assignment {
                        tuple.push(Value::Sym(self.interner.intern(var)));
                    }
                    tuple.push(Value::Int(window_length(window)));
                    self.template_mut(membership.template)?
                        .rt
                        .push_values(tuple)?;

                    // Stage-1 registration: both patterns, with the reduced
                    // structural edges (plus join-node-root self edges) as
                    // the requested edge set.
                    let prev_pattern = oriented.left.clone();
                    let cur_pattern = oriented.right.clone();
                    let (prev_pid, prev_edges) =
                        self.register_pattern_edges(&prev_pattern, &reduced, Side::Left);
                    let (cur_pid, cur_edges) =
                        self.register_pattern_edges(&cur_pattern, &reduced, Side::Right);

                    let (sequential_cqt, sequential_plan, sequential_inputs) = if mode
                        == ProcessingMode::Sequential
                    {
                        let template = &self
                            .template_runtime(membership.template)
                            .ok_or(CoreError::internal(
                                "a just-created or just-joined template is not live",
                            ))?
                            .template;
                        let cq =
                            cqt::per_query_cqt(template, &membership.assignment, &self.interner);
                        // Per-query CQTs only touch the fixed-schema base
                        // relations; no RT atom to resolve.
                        let arity_of = |rel: &str| cqt::relation_arity(rel, "", 0);
                        let plan = PhysicalPlan::compile(&cq, arity_of)?;
                        if self.verify_plans {
                            verify_compiled(&plan, &cq, arity_of, true)?;
                        }
                        let inputs = cqt::plan_input_kinds(&plan, "");
                        self.plans_compiled += 1;
                        (cq, Some(plan), inputs)
                    } else {
                        // Placeholder; never evaluated outside Sequential
                        // mode.
                        (
                            ConjunctiveQuery::new(Vec::<String>::new()),
                            None,
                            Vec::new(),
                        )
                    };

                    let registration = Registration {
                        rid,
                        template: membership.template,
                        assignment: membership.assignment,
                        swapped,
                        prev_pattern,
                        cur_pattern,
                        prev_pid,
                        cur_pid,
                        prev_edges,
                        cur_edges,
                        sequential_cqt,
                        sequential_plan,
                        sequential_inputs,
                    };
                    self.rid_map
                        .insert(rid, (id.raw() as usize, registrations.len()));
                    registrations.push(registration);
                }
                self.track_window(window);
                QueryRuntime {
                    id,
                    op: Some(op),
                    window: Some(window),
                    publish: nq.publish.clone(),
                    select: nq.select,
                    registrations,
                    single_pattern: None,
                    single_pid: None,
                    arrival_floor,
                    query: nq,
                }
            }
        };
        self.queries.push(Some(Box::new(runtime)));
        self.live_queries += 1;
        Ok(id)
    }

    /// Unregister a query, incrementally releasing every shared structure it
    /// participated in. O(the query's footprint): its `RT` tuples, its
    /// pattern and edge registrations and — when it was the last subscriber —
    /// the dropped patterns and retired templates. Ids are tombstoned, never
    /// reused. Errors with [`CoreError::UnknownQuery`] for ids that were
    /// never assigned or already unregistered.
    pub fn unregister(&mut self, id: QueryId) -> CoreResult<UnregisterEffects> {
        let runtime = self
            .queries
            .get_mut(id.raw() as usize)
            .and_then(Option::take)
            .ok_or(CoreError::UnknownQuery { id: id.raw() })?;
        self.live_queries -= 1;

        let mut effects = UnregisterEffects::default();
        if let Some(pid) = runtime.single_pid {
            self.release_pattern(pid, &mut effects);
        }
        for reg in &runtime.registrations {
            self.rid_map.remove(&reg.rid);
            // Remove this orientation's RT tuple in place, preserving the
            // registration order of the surviving members.
            let rid_value = Value::Int(reg.rid);
            let template = self.template_mut(reg.template)?;
            template.rt.retain(|row| row[0] != rid_value);
            if template.rt.is_empty() {
                // Last member left: retire the template from the catalog.
                self.templates[reg.template.index()] = None;
                self.live_templates -= 1;
                self.catalog.remove(reg.template);
                effects.templates_retired += 1;
            }
            self.release_pattern_edges(reg.prev_pid, &reg.prev_edges, &mut effects);
            self.release_pattern_edges(reg.cur_pid, &reg.cur_edges, &mut effects);
        }
        if let Some(window) = runtime.window {
            effects.window_changed = self.untrack_window(window);
        }
        Ok(effects)
    }

    /// Register a pattern with the Stage-1 index, counting its canonical
    /// variables when it is newly distinct.
    fn index_pattern(&mut self, pattern: &TreePattern) -> PatternId {
        let pid = self.pattern_index.register(pattern.clone());
        if self.pattern_index.refcount(pid) == 1 {
            for (var, _) in pattern.variables() {
                *self.var_refs.entry(self.interner.intern(var)).or_insert(0) += 1;
            }
        }
        pid
    }

    /// Release one registration of a pattern; when it was the last, drop the
    /// pattern and report any canonical variables that died with it.
    fn release_pattern(&mut self, pid: PatternId, effects: &mut UnregisterEffects) {
        // Collect the variables only when this release will drop the
        // pattern — the common shared-pattern path stays allocation-free.
        let vars: Vec<Symbol> = if self.pattern_index.refcount(pid) == 1 {
            self.pattern_index
                .pattern(pid)
                .variables()
                .iter()
                .map(|(var, _)| self.interner.intern(var))
                .collect()
        } else {
            Vec::new()
        };
        if self.pattern_index.unregister(pid) {
            effects.patterns_dropped += 1;
            self.requested_edges.remove(&pid);
            self.edge_refs.remove(&pid);
            for sym in vars {
                if let Some(count) = self.var_refs.get_mut(&sym) {
                    *count -= 1;
                    if *count == 0 {
                        self.var_refs.remove(&sym);
                        effects.dead_vars.push(sym);
                    }
                }
            }
        }
    }

    fn register_pattern_edges(
        &mut self,
        pattern: &TreePattern,
        reduced: &ReducedGraph,
        side: Side,
    ) -> (PatternId, Vec<(PatternNodeId, PatternNodeId)>) {
        let pid = self.index_pattern(pattern);
        // The edge set this registration requests: the reduced structural
        // edges, plus degenerate self edges for join-node roots so their
        // bindings reach the witness relations even without an incoming
        // structural edge.
        let mut edges: Vec<(PatternNodeId, PatternNodeId)> = Vec::new();
        for edge in reduced.structural_edges(side) {
            if !edges.contains(&edge) {
                edges.push(edge);
            }
        }
        let tree = reduced.tree(side);
        for node in &tree.nodes {
            if node.parent.is_none() && node.is_join_node {
                let self_edge = (node.original, node.original);
                if !edges.contains(&self_edge) {
                    edges.push(self_edge);
                }
            }
        }
        let counts = self.edge_refs.entry(pid).or_default();
        let list = self.requested_edges.entry(pid).or_default();
        for edge in &edges {
            let count = counts.entry(*edge).or_insert(0);
            *count += 1;
            if *count == 1 && !list.contains(edge) {
                list.push(*edge);
            }
        }
        (pid, edges)
    }

    /// Release the requested edges of one registration, then the pattern
    /// registration itself.
    fn release_pattern_edges(
        &mut self,
        pid: PatternId,
        edges: &[(PatternNodeId, PatternNodeId)],
        effects: &mut UnregisterEffects,
    ) {
        if let Some(counts) = self.edge_refs.get_mut(&pid) {
            for edge in edges {
                if let Some(count) = counts.get_mut(edge) {
                    *count -= 1;
                    if *count == 0 {
                        counts.remove(edge);
                        if let Some(list) = self.requested_edges.get_mut(&pid) {
                            list.retain(|e| e != edge);
                        }
                    }
                }
            }
        }
        self.release_pattern(pid, effects);
    }

    fn track_window(&mut self, window: Window) {
        match window {
            Window::Time(t) => *self.finite_windows.entry(t).or_insert(0) += 1,
            Window::Infinite | Window::Count(_) => self.infinite_windows += 1,
        }
    }

    /// Remove one query's window from the multiset; returns `true` when the
    /// registered bounds changed (the maximum finite window tightened or the
    /// last infinite window left).
    fn untrack_window(&mut self, window: Window) -> bool {
        let before = (self.max_finite_window(), self.has_infinite_window());
        match window {
            Window::Time(t) => {
                if let Some(count) = self.finite_windows.get_mut(&t) {
                    *count -= 1;
                    if *count == 0 {
                        self.finite_windows.remove(&t);
                    }
                }
            }
            Window::Infinite | Window::Count(_) => {
                self.infinite_windows = self.infinite_windows.saturating_sub(1);
            }
        }
        before != (self.max_finite_window(), self.has_infinite_window())
    }

    /// The string interner shared with the engine.
    pub fn interner(&self) -> &Arc<StringInterner> {
        &self.interner
    }

    /// Number of live (registered and not unregistered) queries.
    pub fn num_queries(&self) -> usize {
        self.live_queries
    }

    /// Total number of query ids ever assigned (unregistered ids are
    /// tombstoned, never reused, so this never decreases).
    pub fn total_queries_registered(&self) -> usize {
        self.queries.len()
    }

    /// Number of live templates.
    pub fn num_templates(&self) -> usize {
        self.live_templates
    }

    /// Number of distinct live Stage-1 patterns.
    pub fn num_patterns(&self) -> usize {
        self.pattern_index.len()
    }

    /// Iterate over the live template runtimes in template-id order.
    pub fn templates(&self) -> impl Iterator<Item = &TemplateRuntime> {
        self.templates.iter().filter_map(|t| t.as_deref())
    }

    /// The template runtime for an id, if the template is live.
    pub fn template_runtime(&self, id: TemplateId) -> Option<&TemplateRuntime> {
        self.templates.get(id.index()).and_then(|t| t.as_deref())
    }

    /// A live template runtime by id; errors on retired ids (internal use on
    /// ids validated live).
    fn template_mut(&mut self, id: TemplateId) -> CoreResult<&mut TemplateRuntime> {
        self.templates
            .get_mut(id.index())
            .and_then(|t| t.as_deref_mut())
            .ok_or(CoreError::internal(
                "template id refers to a retired template",
            ))
    }

    /// Iterate over the live queries in query-id order.
    pub fn queries(&self) -> impl Iterator<Item = &QueryRuntime> {
        self.queries.iter().filter_map(|q| q.as_deref())
    }

    /// Look up a live query by id.
    pub fn query(&self, id: QueryId) -> CoreResult<&QueryRuntime> {
        self.queries
            .get(id.raw() as usize)
            .and_then(|q| q.as_deref())
            .ok_or(CoreError::UnknownQuery { id: id.raw() })
    }

    /// Resolve a registration id from an `RT` / result tuple back to the
    /// query and orientation it belongs to.
    pub fn resolve_rid(&self, rid: i64) -> Option<(&QueryRuntime, &Registration)> {
        let (qi, ri) = self.rid_map.get(&rid)?;
        let q = self.queries.get(*qi)?.as_deref()?;
        let r = q.registrations.get(*ri)?;
        Some((q, r))
    }

    /// The Stage-1 pattern index.
    pub fn pattern_index(&self) -> &PatternIndex {
        &self.pattern_index
    }

    /// Mutable access to the Stage-1 pattern index (evaluation updates its
    /// statistics).
    pub fn pattern_index_mut(&mut self) -> &mut PatternIndex {
        &mut self.pattern_index
    }

    /// The per-pattern requested structural edges.
    pub fn requested_edges(&self) -> &HashMap<PatternId, Vec<(PatternNodeId, PatternNodeId)>> {
        &self.requested_edges
    }

    /// The template catalog.
    pub fn catalog(&self) -> &TemplateCatalog {
        &self.catalog
    }

    /// The maximum window across *live* join queries: `Some(t)` when all
    /// live join queries have finite time windows, `None` otherwise. Used by
    /// window-based state pruning; recomputed on every population change, so
    /// the bound tightens when the widest-window query unregisters.
    pub fn max_window(&self) -> Option<u64> {
        if self.infinite_windows > 0 {
            None
        } else {
            self.max_finite_window()
        }
    }

    /// The maximum *finite* time window across live join queries, even when
    /// other queries have infinite (or count) windows. Used to derive the
    /// join-state bucket width, which is a granularity (never a correctness)
    /// parameter.
    pub fn max_finite_window(&self) -> Option<u64> {
        self.finite_windows.keys().next_back().copied()
    }

    /// `true` when some live join query has an infinite or count window,
    /// which forbids window-based eviction of join state.
    pub fn has_infinite_window(&self) -> bool {
        self.infinite_windows > 0
    }

    /// Physical plans compiled at registration time so far (cumulative; one
    /// per new template in the MMQJP modes, one per orientation in
    /// Sequential mode).
    pub fn plans_compiled(&self) -> usize {
        self.plans_compiled
    }

    /// Cross-check every refcounted / mirrored registry structure against a
    /// recount over the live queries, appending one [`AuditViolation`] per
    /// inconsistency. Read-only; a healthy registry appends nothing. See
    /// [`MmqjpEngine::audit`](crate::MmqjpEngine::audit).
    pub(crate) fn audit(&self, out: &mut Vec<AuditViolation>) {
        // Live counters vs tombstone recounts.
        let counted_queries = self.queries.iter().filter(|q| q.is_some()).count();
        if counted_queries != self.live_queries {
            out.push(AuditViolation::LiveQueryCount {
                tracked: self.live_queries,
                counted: counted_queries,
            });
        }
        let counted_templates = self.templates.iter().filter(|t| t.is_some()).count();
        if counted_templates != self.live_templates {
            out.push(AuditViolation::LiveTemplateCount {
                tracked: self.live_templates,
                counted: counted_templates,
            });
        }
        if self.catalog.len() != counted_templates {
            out.push(AuditViolation::CatalogSize {
                catalog: self.catalog.len(),
                live_templates: counted_templates,
            });
        }

        // One recount pass over the live queries: template membership,
        // pattern registrations, requested edges, windows and rids.
        let mut rt_expected: HashMap<usize, usize> = HashMap::new();
        let mut pattern_expected: HashMap<PatternId, usize> = HashMap::new();
        let mut edge_expected: HashMap<PatternId, HashMap<(PatternNodeId, PatternNodeId), usize>> =
            HashMap::new();
        let mut finite_expected: BTreeMap<u64, usize> = BTreeMap::new();
        let mut infinite_expected = 0usize;
        let mut live_rids: HashMap<i64, (usize, usize)> = HashMap::new();
        for (qi, slot) in self.queries.iter().enumerate() {
            let Some(q) = slot.as_deref() else { continue };
            if let Some(pid) = q.single_pid {
                *pattern_expected.entry(pid).or_insert(0) += 1;
            }
            match q.window {
                Some(Window::Time(t)) => *finite_expected.entry(t).or_insert(0) += 1,
                Some(Window::Infinite | Window::Count(_)) => infinite_expected += 1,
                None => {}
            }
            for (ri, reg) in q.registrations.iter().enumerate() {
                match self
                    .templates
                    .get(reg.template.index())
                    .and_then(|t| t.as_deref())
                {
                    None => out.push(AuditViolation::RetiredTemplateReferenced {
                        query: q.id.raw(),
                        template: reg.template.index(),
                    }),
                    Some(tr) => {
                        *rt_expected.entry(reg.template.index()).or_insert(0) += 1;
                        let rid_value = Value::Int(reg.rid);
                        if !tr.rt.iter().any(|row| row[0] == rid_value) {
                            out.push(AuditViolation::MissingRtTuple {
                                template: reg.template.index(),
                                rid: reg.rid,
                            });
                        }
                    }
                }
                match self.rid_map.get(&reg.rid) {
                    None => out.push(AuditViolation::RidMap {
                        rid: reg.rid,
                        reason: "live orientation missing from the rid map",
                    }),
                    Some(&target) if target != (qi, ri) => out.push(AuditViolation::RidMap {
                        rid: reg.rid,
                        reason: "rid map points at the wrong orientation",
                    }),
                    Some(_) => {}
                }
                live_rids.insert(reg.rid, (qi, ri));
                for (pid, edges) in [
                    (reg.prev_pid, &reg.prev_edges),
                    (reg.cur_pid, &reg.cur_edges),
                ] {
                    *pattern_expected.entry(pid).or_insert(0) += 1;
                    let per_edge = edge_expected.entry(pid).or_default();
                    for edge in edges {
                        *per_edge.entry(*edge).or_insert(0) += 1;
                    }
                }
            }
        }

        // The rid map holds nothing beyond the live orientations.
        for rid in self.rid_map.keys() {
            if !live_rids.contains_key(rid) {
                out.push(AuditViolation::RidMap {
                    rid: *rid,
                    reason: "rid map entry has no live orientation",
                });
            }
        }

        // Each live template's RT relation: exactly one tuple per live
        // member orientation.
        for (ti, slot) in self.templates.iter().enumerate() {
            let Some(tr) = slot.as_deref() else { continue };
            let expected = rt_expected.get(&ti).copied().unwrap_or(0);
            if tr.rt.len() != expected {
                out.push(AuditViolation::TemplateMembership {
                    template: ti,
                    rt_rows: tr.rt.len(),
                    registrations: expected,
                });
            }
        }

        // Pattern-index refcounts, in both directions: every indexed pattern
        // carries exactly its live-registration count, and every registered
        // pattern is indexed.
        let indexed: HashMap<PatternId, usize> = self
            .pattern_index
            .patterns()
            .map(|(pid, _)| (pid, self.pattern_index.refcount(pid)))
            .collect();
        for (&pid, &refs) in &indexed {
            let expected = pattern_expected.get(&pid).copied().unwrap_or(0);
            if refs != expected {
                out.push(AuditViolation::PatternRefcount {
                    pattern: pid.raw(),
                    index_refs: refs,
                    expected,
                });
            }
        }
        for (&pid, &expected) in &pattern_expected {
            if !indexed.contains_key(&pid) {
                out.push(AuditViolation::PatternRefcount {
                    pattern: pid.raw(),
                    index_refs: 0,
                    expected,
                });
            }
        }

        // Edge refcounts and the deterministic requested-edge lists.
        audit_edge_tables(&edge_expected, &self.edge_refs, &self.requested_edges, out);

        // Canonical-variable refcounts: one count per *distinct* live
        // pattern binding the variable.
        let mut var_expected: HashMap<Symbol, usize> = HashMap::new();
        for (_, pattern) in self.pattern_index.patterns() {
            for (var, _) in pattern.variables() {
                *var_expected.entry(self.interner.intern(var)).or_insert(0) += 1;
            }
        }
        for (&sym, &expected) in &var_expected {
            let tracked = self.var_refs.get(&sym).copied().unwrap_or(0);
            if tracked != expected {
                out.push(AuditViolation::VariableRefcount {
                    variable: self
                        .interner
                        .resolve(sym)
                        .map(|s| s.to_string())
                        .unwrap_or_default(),
                    tracked,
                    expected,
                });
            }
        }
        for (&sym, &tracked) in &self.var_refs {
            if !var_expected.contains_key(&sym) {
                out.push(AuditViolation::VariableRefcount {
                    variable: self
                        .interner
                        .resolve(sym)
                        .map(|s| s.to_string())
                        .unwrap_or_default(),
                    tracked,
                    expected: 0,
                });
            }
        }

        // The window multiset equals a recount over the live join queries.
        if self.finite_windows != finite_expected {
            out.push(AuditViolation::WindowMultiset {
                reason: "finite-window multiset differs from the live join queries",
            });
        }
        if self.infinite_windows != infinite_expected {
            out.push(AuditViolation::WindowMultiset {
                reason: "infinite-window count differs from the live join queries",
            });
        }
    }
}

/// Cross-check per-`(pattern, edge)` refcount maps and their mirrored
/// deterministic edge lists against a recount (`expected`). Shared between
/// the registry audit and the hybrid front-stage audit, which maintain the
/// same pair of structures.
pub(crate) fn audit_edge_tables(
    expected: &HashMap<PatternId, HashMap<(PatternNodeId, PatternNodeId), usize>>,
    edge_refs: &HashMap<PatternId, HashMap<(PatternNodeId, PatternNodeId), usize>>,
    requested_edges: &HashMap<PatternId, Vec<(PatternNodeId, PatternNodeId)>>,
    out: &mut Vec<AuditViolation>,
) {
    let edge_key = |e: &(PatternNodeId, PatternNodeId)| (e.0.raw(), e.1.raw());
    let all_pids: std::collections::BTreeSet<PatternId> = expected
        .keys()
        .chain(edge_refs.keys())
        .copied()
        .map(|p| PatternId(p.raw()))
        .collect();
    for pid in all_pids {
        let want = expected.get(&pid);
        let have = edge_refs.get(&pid);
        let edges: std::collections::BTreeSet<(u32, u32)> = want
            .into_iter()
            .flat_map(HashMap::keys)
            .chain(have.into_iter().flat_map(HashMap::keys))
            .map(edge_key)
            .collect();
        for (a, b) in edges {
            let edge = (PatternNodeId(a), PatternNodeId(b));
            let want_n = want.and_then(|m| m.get(&edge)).copied().unwrap_or(0);
            let have_n = have.and_then(|m| m.get(&edge)).copied().unwrap_or(0);
            if want_n != have_n {
                out.push(AuditViolation::EdgeRefcount {
                    pattern: pid.raw(),
                    edge: (a, b),
                    tracked: have_n,
                    expected: want_n,
                });
            }
        }
        // The deterministic list mirrors the refcount map's key set with no
        // duplicates.
        let list = requested_edges.get(&pid).map(Vec::as_slice).unwrap_or(&[]);
        let mut seen: std::collections::BTreeSet<(u32, u32)> = std::collections::BTreeSet::new();
        let mut duplicated = false;
        for edge in list {
            if !seen.insert(edge_key(edge)) {
                duplicated = true;
            }
        }
        if duplicated {
            out.push(AuditViolation::RequestedEdgeList {
                pattern: pid.raw(),
                reason: "duplicate edge in the requested-edge list",
            });
        }
        let keys: std::collections::BTreeSet<(u32, u32)> = have
            .into_iter()
            .flat_map(HashMap::keys)
            .map(edge_key)
            .collect();
        if seen != keys {
            out.push(AuditViolation::RequestedEdgeList {
                pattern: pid.raw(),
                reason: "requested-edge list does not mirror the refcount map",
            });
        }
    }
}

/// Encode a window as the `wl` column value.
pub fn window_length(window: Window) -> i64 {
    match window {
        Window::Time(t) => t.min(i64::MAX as u64) as i64,
        Window::Infinite | Window::Count(_) => i64::MAX,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmqjp_xscl::parse_query;

    const Q1: &str = "S//book->x1[.//author->x2][.//title->x3] \
        FOLLOWED BY{x2=x5 AND x3=x6, 100} \
        S//blog->x4[.//author->x5][.//title->x6]";
    const Q2: &str = "S//book->x1[.//author->x2][.//category->x7] \
        FOLLOWED BY{x2=x5 AND x7=x8, 200} \
        S//blog->x4[.//author->x5][.//category->x8]";
    const Q3: &str = "S//blog->x4[.//author->x5][.//title->x6] \
        FOLLOWED BY{x5=x5' AND x6=x6', 300} \
        S//blog->x4'[.//author->x5'][.//title->x6']";

    fn registry() -> Registry {
        Registry::new(Arc::new(StringInterner::new()))
    }

    #[test]
    fn paper_example_queries_share_one_template() {
        let mut r = registry();
        let id1 = r
            .register(parse_query(Q1).unwrap(), ProcessingMode::Mmqjp, 0)
            .unwrap();
        let id2 = r
            .register(parse_query(Q2).unwrap(), ProcessingMode::Mmqjp, 0)
            .unwrap();
        let id3 = r
            .register(parse_query(Q3).unwrap(), ProcessingMode::Mmqjp, 0)
            .unwrap();
        assert_eq!(id1, QueryId(0));
        assert_eq!(id2, QueryId(1));
        assert_eq!(id3, QueryId(2));
        assert_eq!(r.num_queries(), 3);
        assert_eq!(r.num_templates(), 1);
        // The RT relation mirrors Table 4(a): three tuples, one per query.
        let rt = &r.templates().next().unwrap().rt;
        assert_eq!(rt.len(), 3);
        assert_eq!(rt.schema().arity(), 8); // qid + 6 vars + wl

        // Window lengths are stored per query.
        let wls: Vec<i64> = rt.iter().map(|t| t[7].as_int().unwrap()).collect();
        assert_eq!(wls, vec![100, 200, 300]);
        // Q1 and Q2 share the book and blog block patterns; Q3 reuses the
        // blog block. Distinct patterns: book(author,title),
        // blog(author,title), book(author,category), blog(author,category)
        // => 4.
        assert_eq!(r.num_patterns(), 4);
        assert_eq!(r.max_window(), Some(300));
    }

    #[test]
    fn join_queries_register_two_orientations() {
        let mut r = registry();
        let q = "S//item->a[.//title->t1] JOIN{t1=t2, 50} S//post->b[.//title->t2]";
        let id = r
            .register(parse_query(q).unwrap(), ProcessingMode::Mmqjp, 0)
            .unwrap();
        let runtime = r.query(id).unwrap();
        assert!(runtime.is_join());
        assert_eq!(runtime.registrations.len(), 2);
        assert!(!runtime.registrations[0].swapped);
        assert!(runtime.registrations[1].swapped);
        // Both orientations resolve back to the query.
        let (q0, r0) = r.resolve_rid(runtime.registrations[0].rid).unwrap();
        let (q1, r1) = r.resolve_rid(runtime.registrations[1].rid).unwrap();
        assert_eq!(q0.id, id);
        assert_eq!(q1.id, id);
        assert!(!r0.swapped);
        assert!(r1.swapped);
        // The two orientations of an asymmetric query land in the same
        // single-value-join template.
        assert_eq!(r.num_templates(), 1);
        assert_eq!(r.templates().next().unwrap().members(), 2);
    }

    #[test]
    fn single_block_subscription_is_accepted() {
        let mut r = registry();
        let id = r
            .register(
                parse_query("S//blog[.//author]").unwrap(),
                ProcessingMode::Mmqjp,
                0,
            )
            .unwrap();
        let runtime = r.query(id).unwrap();
        assert!(!runtime.is_join());
        assert!(runtime.single_pattern.is_some());
        assert_eq!(r.num_templates(), 0);
        assert_eq!(r.num_patterns(), 1);
    }

    #[test]
    fn requested_edges_cover_reduced_structure_and_self_edges() {
        let mut r = registry();
        // Single value join: both sides reduce to single nodes, so the
        // requested edges are self edges.
        r.register(
            parse_query("S//book->b[.//author->a] FOLLOWED BY{a=x, 10} S//blog->g[.//author->x]")
                .unwrap(),
            ProcessingMode::Mmqjp,
            0,
        )
        .unwrap();
        let total_edges: usize = r.requested_edges().values().map(|v| v.len()).sum();
        assert_eq!(total_edges, 2); // one self edge per pattern
        for edges in r.requested_edges().values() {
            for (a, b) in edges {
                assert_eq!(a, b);
            }
        }
        // Q1 adds real structural edges.
        r.register(parse_query(Q1).unwrap(), ProcessingMode::Mmqjp, 0)
            .unwrap();
        let q1_edges: usize = r.requested_edges().values().map(|v| v.len()).sum();
        assert_eq!(q1_edges, 2 + 4);
    }

    #[test]
    fn sequential_mode_compiles_per_query_cqt() {
        let mut r = registry();
        r.register(parse_query(Q1).unwrap(), ProcessingMode::Sequential, 0)
            .unwrap();
        let reg = &r.queries().next().unwrap().registrations[0];
        assert_eq!(reg.sequential_cqt.num_atoms(), 8);
        // In MMQJP mode the per-query CQT is left empty.
        let mut r2 = registry();
        r2.register(parse_query(Q1).unwrap(), ProcessingMode::Mmqjp, 0)
            .unwrap();
        let reg2 = &r2.queries().next().unwrap().registrations[0];
        assert_eq!(reg2.sequential_cqt.num_atoms(), 0);
    }

    #[test]
    fn window_tracking() {
        let mut r = registry();
        r.register(parse_query(Q1).unwrap(), ProcessingMode::Mmqjp, 0)
            .unwrap();
        assert_eq!(r.max_window(), Some(100));
        assert_eq!(r.max_finite_window(), Some(100));
        assert!(!r.has_infinite_window());
        r.register(
            parse_query("S//a->x FOLLOWED BY{x=y, INF} S//b->y").unwrap(),
            ProcessingMode::Mmqjp,
            0,
        )
        .unwrap();
        assert_eq!(r.max_window(), None);
        assert_eq!(r.max_finite_window(), Some(100));
        assert!(r.has_infinite_window());
        assert_eq!(window_length(Window::Time(5)), 5);
        assert_eq!(window_length(Window::Infinite), i64::MAX);
        assert_eq!(window_length(Window::Count(3)), i64::MAX);
    }

    #[test]
    fn unregister_shrinks_shared_template_in_place() {
        let mut r = registry();
        let id1 = r
            .register(parse_query(Q1).unwrap(), ProcessingMode::Mmqjp, 0)
            .unwrap();
        let id2 = r
            .register(parse_query(Q2).unwrap(), ProcessingMode::Mmqjp, 0)
            .unwrap();
        let id3 = r
            .register(parse_query(Q3).unwrap(), ProcessingMode::Mmqjp, 0)
            .unwrap();
        assert_eq!(r.templates().next().unwrap().members(), 3);
        let patterns_before = r.num_patterns();

        // Q2 leaves: its RT tuple goes, the template survives with Q1 and
        // Q3 (in registration order), and the two category patterns it was
        // the only subscriber of are dropped.
        let effects = r.unregister(id2).unwrap();
        assert_eq!(r.num_queries(), 2);
        assert_eq!(r.num_templates(), 1);
        let rt = &r.templates().next().unwrap().rt;
        assert_eq!(rt.len(), 2);
        let wls: Vec<i64> = rt.iter().map(|t| t[7].as_int().unwrap()).collect();
        assert_eq!(wls, vec![100, 300]);
        assert_eq!(effects.patterns_dropped, 2);
        assert_eq!(effects.templates_retired, 0);
        assert_eq!(r.num_patterns(), patterns_before - 2);
        // The unregistered id is gone and resolves nowhere.
        assert!(matches!(r.query(id2), Err(CoreError::UnknownQuery { .. })));
        assert!(r.resolve_rid((id2.raw() as i64) * 2).is_none());
        // Survivors still resolve.
        assert!(r.query(id1).is_ok());
        assert!(r.query(id3).is_ok());

        // The last two members leave: the template is retired.
        let e1 = r.unregister(id1).unwrap();
        assert_eq!(e1.templates_retired, 0);
        let e3 = r.unregister(id3).unwrap();
        assert_eq!(e3.templates_retired, 1);
        assert_eq!(r.num_templates(), 0);
        assert_eq!(r.num_patterns(), 0);
        assert_eq!(r.num_queries(), 0);
        assert!(r.requested_edges().is_empty());
        // Unregistering twice fails.
        assert!(matches!(
            r.unregister(id1),
            Err(CoreError::UnknownQuery { .. })
        ));
        // A fresh registration never reuses a freed id.
        let id4 = r
            .register(parse_query(Q1).unwrap(), ProcessingMode::Mmqjp, 0)
            .unwrap();
        assert_eq!(id4, QueryId(3));
        assert_eq!(r.total_queries_registered(), 4);
    }

    #[test]
    fn unregister_recomputes_window_bounds() {
        let mut r = registry();
        let narrow = r
            .register(parse_query(Q1).unwrap(), ProcessingMode::Mmqjp, 0)
            .unwrap(); // window 100
        let wide = r
            .register(parse_query(Q3).unwrap(), ProcessingMode::Mmqjp, 0)
            .unwrap(); // window 300
        let inf = r
            .register(
                parse_query("S//a->x FOLLOWED BY{x=y, INF} S//b->y").unwrap(),
                ProcessingMode::Mmqjp,
                0,
            )
            .unwrap();
        assert_eq!(r.max_window(), None);
        assert_eq!(r.max_finite_window(), Some(300));

        // The infinite-window query leaves: pruning becomes possible again.
        let effects = r.unregister(inf).unwrap();
        assert!(effects.window_changed);
        assert_eq!(r.max_window(), Some(300));
        assert!(!r.has_infinite_window());

        // The widest finite window leaves: the bound tightens.
        let effects = r.unregister(wide).unwrap();
        assert!(effects.window_changed);
        assert_eq!(r.max_window(), Some(100));
        assert_eq!(r.max_finite_window(), Some(100));

        // The last windowed query leaves: no bound remains.
        let effects = r.unregister(narrow).unwrap();
        assert!(effects.window_changed);
        assert_eq!(r.max_window(), None);
        assert_eq!(r.max_finite_window(), None);
    }

    #[test]
    fn unregister_duplicate_window_keeps_the_bound() {
        let mut r = registry();
        let a = r
            .register(parse_query(Q1).unwrap(), ProcessingMode::Mmqjp, 0)
            .unwrap();
        let b = r
            .register(parse_query(Q1).unwrap(), ProcessingMode::Mmqjp, 0)
            .unwrap();
        assert_eq!(r.max_window(), Some(100));
        let effects = r.unregister(a).unwrap();
        assert!(!effects.window_changed, "the twin still holds window 100");
        assert_eq!(r.max_window(), Some(100));
        let effects = r.unregister(b).unwrap();
        assert!(effects.window_changed);
        assert_eq!(r.max_window(), None);
    }

    #[test]
    fn unregister_releases_shared_patterns_by_refcount() {
        let mut r = registry();
        // Q1 and Q3 share the blog(author, title) pattern.
        let id1 = r
            .register(parse_query(Q1).unwrap(), ProcessingMode::Mmqjp, 0)
            .unwrap();
        let id3 = r
            .register(parse_query(Q3).unwrap(), ProcessingMode::Mmqjp, 0)
            .unwrap();
        assert_eq!(r.num_patterns(), 2); // book(a,t) and the shared blog(a,t)
        let effects = r.unregister(id1).unwrap();
        // The book pattern dies with Q1; the shared blog pattern survives.
        assert_eq!(effects.patterns_dropped, 1);
        assert_eq!(r.num_patterns(), 1);
        let effects = r.unregister(id3).unwrap();
        assert_eq!(effects.patterns_dropped, 1);
        assert_eq!(r.num_patterns(), 0);
        // Dead canonical variables were reported for reclamation.
        assert!(!effects.dead_vars.is_empty());
    }

    #[test]
    fn unregister_single_block_subscription() {
        let mut r = registry();
        let id = r
            .register(
                parse_query("S//blog[.//author]").unwrap(),
                ProcessingMode::Mmqjp,
                0,
            )
            .unwrap();
        assert_eq!(r.num_patterns(), 1);
        let effects = r.unregister(id).unwrap();
        assert_eq!(effects.patterns_dropped, 1);
        assert_eq!(r.num_patterns(), 0);
        assert_eq!(r.num_queries(), 0);
        assert!(!effects.window_changed);
    }

    #[test]
    fn reregistered_isomorphic_query_starts_a_fresh_template() {
        let mut r = registry();
        let id1 = r
            .register(parse_query(Q1).unwrap(), ProcessingMode::Mmqjp, 0)
            .unwrap();
        let t1 = r.queries().next().unwrap().registrations[0].template;
        r.unregister(id1).unwrap();
        assert_eq!(r.num_templates(), 0);
        let id2 = r
            .register(parse_query(Q1).unwrap(), ProcessingMode::Mmqjp, 0)
            .unwrap();
        assert_ne!(id2, id1);
        let t2 = r.queries().next().unwrap().registrations[0].template;
        assert_ne!(t2, t1, "retired template ids are never revived");
        assert_eq!(r.num_templates(), 1);
        assert_eq!(r.template_runtime(t2).unwrap().members(), 1);
        assert!(r.template_runtime(t1).is_none());
    }

    #[test]
    fn audit_is_clean_and_detects_seeded_violations() {
        let mut r = registry();
        let id1 = r
            .register(parse_query(Q1).unwrap(), ProcessingMode::Mmqjp, 0)
            .unwrap();
        r.register(parse_query(Q3).unwrap(), ProcessingMode::Mmqjp, 0)
            .unwrap();
        r.unregister(id1).unwrap();
        let mut out = Vec::new();
        r.audit(&mut out);
        assert!(out.is_empty(), "healthy registry reported: {out:?}");

        // Seed a counter drift: the auditor must recount and object.
        r.live_queries += 1;
        let mut out = Vec::new();
        r.audit(&mut out);
        assert!(out.iter().any(|v| matches!(
            v,
            AuditViolation::LiveQueryCount {
                tracked: 2,
                counted: 1
            }
        )));
        r.live_queries -= 1;

        // Seed a window-multiset drift.
        *r.finite_windows.entry(999).or_insert(0) += 1;
        let mut out = Vec::new();
        r.audit(&mut out);
        assert!(out
            .iter()
            .any(|v| matches!(v, AuditViolation::WindowMultiset { .. })));
        r.finite_windows.remove(&999);

        // Seed an edge-refcount drift on some live pattern.
        let pid = *r.edge_refs.keys().next().unwrap();
        if let Some(count) = r
            .edge_refs
            .get_mut(&pid)
            .and_then(|m| m.values_mut().next())
        {
            *count += 1;
        }
        let mut out = Vec::new();
        r.audit(&mut out);
        assert!(out
            .iter()
            .any(|v| matches!(v, AuditViolation::EdgeRefcount { .. })));
    }

    #[test]
    fn unknown_query_lookup_fails() {
        let r = registry();
        assert!(matches!(
            r.query(QueryId(5)),
            Err(CoreError::UnknownQuery { id: 5 })
        ));
        assert!(r.resolve_rid(99).is_none());
    }

    #[test]
    fn template_runtime_metadata() {
        let mut r = registry();
        r.register(parse_query(Q1).unwrap(), ProcessingMode::Mmqjp, 0)
            .unwrap();
        let tr = r.templates().next().unwrap();
        assert_eq!(tr.rt_name(), "RT_0");
        assert_eq!(tr.members(), 1);
        assert_eq!(tr.template.num_meta_vars(), 6);
        assert!(tr.cqt_basic.validate().is_ok());
        assert!(tr.cqt_materialized.validate().is_ok());
        assert_eq!(r.catalog().len(), 1);
        assert!(!r.interner().is_empty());
    }
}
