//! Engine configuration.

use serde::{Deserialize, Serialize};

/// Which Stage-2 (Join Processor) strategy the engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ProcessingMode {
    /// The paper's baseline: each registered query's join is evaluated
    /// independently for every incoming document (one conjunctive query per
    /// query, no cross-query sharing).
    Sequential,
    /// Query-template based join processing (Algorithms 1–3): one conjunctive
    /// query per template, evaluated over the base witness relations.
    #[default]
    Mmqjp,
    /// MMQJP with view materialization (Algorithms 4–5): the `RL`/`RR`
    /// intermediates are computed once per document and shared by all
    /// templates, with a string-keyed view cache of `RL` slices reused across
    /// documents.
    MmqjpViewMat,
}

impl ProcessingMode {
    /// Short label used in benchmark output.
    pub fn label(&self) -> &'static str {
        match self {
            ProcessingMode::Sequential => "Sequential",
            ProcessingMode::Mmqjp => "MMQJP",
            ProcessingMode::MmqjpViewMat => "MMQJP+VM",
        }
    }
}

/// How the engine responds to worker death and poison input (documents that
/// fail a per-document check, such as out-of-order arrival under
/// [`EngineConfig::enforce_in_order`]).
///
/// The policy only changes *failure* behavior: on a fault-free stream all
/// three policies produce byte-identical output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum FaultPolicy {
    /// The historical behavior: a poison document fails its whole batch with
    /// a typed error, and a dead shard worker makes every subsequent request
    /// fail with [`ShardUnavailable`](crate::CoreError::ShardUnavailable).
    /// No replay log is kept, so this policy has zero bookkeeping cost.
    #[default]
    FailFast,
    /// Self-healing: a poison document is skipped with a typed
    /// `QuarantineRecord` (the rest of its batch proceeds), and a dead shard
    /// or front worker is respawned on the spot — surviving subscriptions
    /// are re-registered from the retained query registry and the shard's
    /// in-window join state is replayed from the bounded `ReplayLog`, so
    /// subsequent output is byte-identical to an engine that never failed.
    Quarantine,
    /// Graceful degradation: a dead shard's queries become unavailable (its
    /// matches stop; registrations hashing to it error) while every other
    /// shard keeps serving. The replay log is still maintained, so a manual
    /// `ShardedEngine::respawn_shard` heals the shard later with its full
    /// state. Poison documents behave as under
    /// [`FailFast`](FaultPolicy::FailFast).
    Degrade,
}

/// Configuration of an [`MmqjpEngine`](crate::MmqjpEngine).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// The Stage-2 strategy.
    pub mode: ProcessingMode,
    /// Maximum number of entries in the view cache (string-keyed `RL`
    /// slices). `None` means unbounded, which is what the paper's experiments
    /// assume ("we assume we can afford the space to materialize the entire
    /// RL"). Ignored unless the mode is [`ProcessingMode::MmqjpViewMat`].
    pub view_cache_capacity: Option<usize>,
    /// Keep full documents in a store so matched outputs can embed the
    /// joined subtrees (the default `SELECT *` construction). Disable for
    /// throughput experiments where only match counts matter.
    pub retain_documents: bool,
    /// Purge join state belonging to documents that have fallen out of every
    /// registered query's window. Only effective when all registered queries
    /// have finite time windows.
    ///
    /// Independent of this flag, the *document retention* maps (timestamps
    /// and, with [`retain_documents`](Self::retain_documents), full
    /// documents) are always evicted once a document has aged beyond every
    /// registered window and [`doc_retention_cap`](Self::doc_retention_cap),
    /// so a long-running engine does not leak retained documents.
    ///
    /// Retention ages are measured against the newest timestamp seen, so for
    /// *in-order* streams eviction is invisible in results. When
    /// [`enforce_in_order`](Self::enforce_in_order) is off, a document
    /// arriving more than the retention bound later than the newest
    /// timestamp cannot join with the already-evicted documents of that
    /// aged-out range (the same best-effort semantics window pruning always
    /// had); keep windows infinite and the cap unset if such stragglers must
    /// match arbitrarily old state.
    pub prune_state_by_window: bool,
    /// Hard cap (in timestamp units) on how long documents and their
    /// timestamps are retained for output construction and temporal
    /// filtering, regardless of query windows. Acts as a memory backstop
    /// when queries have infinite (or no) windows; when finite windows exist
    /// the effective retention bound is the *smaller* of the maximum window
    /// and this cap — capping below the maximum window trades dropped
    /// matches (and `document: None` outputs) for bounded memory. `None`
    /// (the default) means retention is bounded by the registered windows
    /// alone.
    pub doc_retention_cap: Option<u64>,
    /// Width (in timestamp units) of the buckets the windowed join state is
    /// partitioned into. Expired state is dropped a whole bucket at a time,
    /// so the width trades eviction granularity (state can outlive its
    /// window by up to one bucket; the temporal filter still applies, so
    /// results are unaffected) against bookkeeping overhead. `None` (the
    /// default) derives the width from the registered windows:
    /// `max(1, bound / 16)`.
    pub state_bucket_width: Option<u64>,
    /// When a query unregisters and some canonical variables lose their last
    /// live pattern, drop the view-cache slices that still carry rows under
    /// those variables. The slices are pure caches — dropping them never
    /// changes results (survivors' slices are recomputed on demand) — so
    /// this is a memory/latency trade-off: leave it on (the default) for
    /// long-running deployments with subscription churn; turn it off to
    /// keep unregistration strictly O(registry footprint) with stale slice
    /// rows left to age out through window expiry. Only meaningful in
    /// [`ProcessingMode::MmqjpViewMat`].
    pub purge_views_on_unregister: bool,
    /// Reject documents whose timestamp is older than the newest timestamp
    /// already processed. The paper assumes in-order streams; disabling this
    /// lets out-of-order events in (they simply join as if on time).
    pub enforce_in_order: bool,
    /// Number of query-population shards used by
    /// [`ShardedEngine`](crate::ShardedEngine): the registered queries are
    /// hash-partitioned across this many independent engine instances, each
    /// running on its own worker thread in the configured [`mode`](Self::mode).
    /// `0` is treated as `1`. Ignored by the single-threaded
    /// [`MmqjpEngine`](crate::MmqjpEngine).
    pub num_shards: usize,
    /// Number of worker threads in the document-parallel Stage-1 front stage
    /// of [`ShardedEngine`](crate::ShardedEngine). `0` (the default) keeps
    /// the original replicated-document topology: every shard parses every
    /// document itself. Any value `>= 1` switches the sharded engine to the
    /// hybrid topology: documents are parsed and pattern-matched exactly
    /// once by a pool of this many front workers, and only the resulting
    /// witness rows are routed to the query shards that subscribed to them.
    /// Ignored by the single-threaded [`MmqjpEngine`](crate::MmqjpEngine).
    pub front_pool: usize,
    /// Verify every compiled physical plan against its source conjunctive
    /// query at registration time (schema/variable coverage, join-graph
    /// connectivity, the batch-restriction soundness precondition, …).
    /// Verification is a few microseconds per registration and turns subtle
    /// planner regressions into immediate, typed
    /// [`RegistrationError`](crate::CoreError)s, so it defaults to on;
    /// disable it only for registration-throughput experiments.
    pub verify_plans: bool,
    /// Evaluate Stage 1 through the shared streaming automaton: one
    /// traversal per document evaluates the bottom-up pass of **every**
    /// registered pattern (join blocks and single-block subscriptions
    /// alike), instead of one matcher walk per distinct pattern. Match
    /// output is byte-identical to the per-pattern DOM path, which stays
    /// available as the fallback (`false`). Defaults to on; the environment
    /// variable `MMQJP_STREAMING_FRONT` (`0`/`false`/`off` to disable)
    /// overrides the default so CI can sweep both paths without code
    /// changes.
    pub streaming_front: bool,
    /// How worker death and poison input are handled (see [`FaultPolicy`]).
    /// The default, [`FaultPolicy::FailFast`], keeps the historical
    /// fail-the-batch / brick-the-shard behavior and costs nothing; the
    /// other policies maintain a retained query registry and a bounded
    /// replay log in [`ShardedEngine`](crate::ShardedEngine) so dead shards
    /// can be rebuilt deterministically.
    pub fault_policy: FaultPolicy,
}

/// The process-wide default for
/// [`streaming_front`](EngineConfig::streaming_front): on, unless the
/// `MMQJP_STREAMING_FRONT` environment variable disables it.
pub fn streaming_front_default() -> bool {
    match std::env::var("MMQJP_STREAMING_FRONT") {
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            !(v == "0" || v == "false" || v == "off" || v == "no")
        }
        Err(_) => true,
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            mode: ProcessingMode::Mmqjp,
            view_cache_capacity: None,
            retain_documents: true,
            prune_state_by_window: false,
            doc_retention_cap: None,
            state_bucket_width: None,
            purge_views_on_unregister: true,
            enforce_in_order: false,
            num_shards: 1,
            front_pool: 0,
            verify_plans: true,
            streaming_front: streaming_front_default(),
            fault_policy: FaultPolicy::FailFast,
        }
    }
}

impl EngineConfig {
    /// Configuration for the paper's `Sequential` baseline.
    pub fn sequential() -> Self {
        EngineConfig {
            mode: ProcessingMode::Sequential,
            ..EngineConfig::default()
        }
    }

    /// Configuration for plain MMQJP (Algorithms 1–3).
    pub fn mmqjp() -> Self {
        EngineConfig {
            mode: ProcessingMode::Mmqjp,
            ..EngineConfig::default()
        }
    }

    /// Configuration for MMQJP with view materialization (Algorithms 4–5).
    pub fn mmqjp_view_mat() -> Self {
        EngineConfig {
            mode: ProcessingMode::MmqjpViewMat,
            ..EngineConfig::default()
        }
    }

    /// Builder-style setter for the view cache capacity.
    pub fn with_view_cache_capacity(mut self, capacity: Option<usize>) -> Self {
        self.view_cache_capacity = capacity;
        self
    }

    /// Builder-style setter for document retention.
    pub fn with_retain_documents(mut self, retain: bool) -> Self {
        self.retain_documents = retain;
        self
    }

    /// Builder-style setter for window-based state pruning.
    pub fn with_prune_state_by_window(mut self, prune: bool) -> Self {
        self.prune_state_by_window = prune;
        self
    }

    /// Builder-style setter for the document-retention cap.
    pub fn with_doc_retention_cap(mut self, cap: Option<u64>) -> Self {
        self.doc_retention_cap = cap;
        self
    }

    /// Builder-style setter for the join-state bucket width.
    pub fn with_state_bucket_width(mut self, width: Option<u64>) -> Self {
        self.state_bucket_width = width;
        self
    }

    /// Builder-style setter for view-cache purging on unregistration.
    pub fn with_purge_views_on_unregister(mut self, purge: bool) -> Self {
        self.purge_views_on_unregister = purge;
        self
    }

    /// Builder-style setter for the shard count used by
    /// [`ShardedEngine`](crate::ShardedEngine).
    pub fn with_num_shards(mut self, num_shards: usize) -> Self {
        self.num_shards = num_shards;
        self
    }

    /// Builder-style setter for the document-parallel front pool used by
    /// [`ShardedEngine`](crate::ShardedEngine). `0` keeps the replicated
    /// topology; `>= 1` enables hybrid parse-once sharding with that many
    /// Stage-1 workers.
    pub fn with_front_pool(mut self, front_pool: usize) -> Self {
        self.front_pool = front_pool;
        self
    }

    /// Builder-style setter for registration-time plan verification.
    pub fn with_verify_plans(mut self, verify: bool) -> Self {
        self.verify_plans = verify;
        self
    }

    /// Builder-style setter for the streaming Stage-1 front end.
    pub fn with_streaming_front(mut self, streaming: bool) -> Self {
        self.streaming_front = streaming;
        self
    }

    /// Builder-style setter for the fault policy.
    pub fn with_fault_policy(mut self, policy: FaultPolicy) -> Self {
        self.fault_policy = policy;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_mmqjp() {
        let c = EngineConfig::default();
        assert_eq!(c.mode, ProcessingMode::Mmqjp);
        assert_eq!(c.view_cache_capacity, None);
        assert!(c.retain_documents);
        assert!(!c.prune_state_by_window);
        assert_eq!(c.doc_retention_cap, None);
        assert_eq!(c.state_bucket_width, None);
        assert!(c.purge_views_on_unregister);
        assert_eq!(c.num_shards, 1);
        assert_eq!(c.front_pool, 0);
        assert!(c.verify_plans);
        // The default tracks the (possibly env-overridden) process default.
        assert_eq!(c.streaming_front, streaming_front_default());
        assert_eq!(c.fault_policy, FaultPolicy::FailFast);
    }

    #[test]
    fn named_constructors() {
        assert_eq!(EngineConfig::sequential().mode, ProcessingMode::Sequential);
        assert_eq!(EngineConfig::mmqjp().mode, ProcessingMode::Mmqjp);
        assert_eq!(
            EngineConfig::mmqjp_view_mat().mode,
            ProcessingMode::MmqjpViewMat
        );
    }

    #[test]
    fn builder_setters() {
        let c = EngineConfig::mmqjp_view_mat()
            .with_view_cache_capacity(Some(128))
            .with_retain_documents(false)
            .with_prune_state_by_window(true)
            .with_doc_retention_cap(Some(5000))
            .with_state_bucket_width(Some(50))
            .with_purge_views_on_unregister(false)
            .with_num_shards(4)
            .with_front_pool(2)
            .with_verify_plans(false)
            .with_streaming_front(false)
            .with_fault_policy(FaultPolicy::Quarantine);
        assert_eq!(c.view_cache_capacity, Some(128));
        assert!(!c.retain_documents);
        assert!(c.prune_state_by_window);
        assert_eq!(c.doc_retention_cap, Some(5000));
        assert_eq!(c.state_bucket_width, Some(50));
        assert!(!c.purge_views_on_unregister);
        assert_eq!(c.num_shards, 4);
        assert_eq!(c.front_pool, 2);
        assert!(!c.verify_plans);
        assert!(!c.streaming_front);
        assert_eq!(c.fault_policy, FaultPolicy::Quarantine);
    }

    #[test]
    fn mode_labels() {
        assert_eq!(ProcessingMode::Sequential.label(), "Sequential");
        assert_eq!(ProcessingMode::Mmqjp.label(), "MMQJP");
        assert_eq!(ProcessingMode::MmqjpViewMat.label(), "MMQJP+VM");
        assert_eq!(ProcessingMode::default(), ProcessingMode::Mmqjp);
    }
}
