//! Generation of the per-template relational conjunctive queries `CQ_T`
//! (Section 4.4 and Section 5 of the paper).
//!
//! Three forms are generated:
//!
//! * the **basic** form (Algorithm 1) over the base witness relations
//!   `Rdoc`, `Rbin`, `RdocW`, `RbinW` plus the template's `RT` relation;
//! * the **materialized** form (Algorithm 4) over the shared intermediates
//!   `RL` and `RR` (plus `Rbin`/`RbinW` atoms for structural edges whose
//!   child is not a value-join node, and `RT`);
//! * the **per-query** form used by the Sequential baseline: the basic form
//!   with the query's concrete variable names substituted for the
//!   meta-variables and no `RT` atom.
//!
//! Conjunctive-query variable naming: `d1` is the docid of the previous
//! (left) document, `d2` the docid of the current (right) document, `n{i}`
//! the node bound at meta-variable position `i`, `v{i}` the variable-name
//! symbol at position `i`, `s{e}` the string value of value-join edge `e`.

use crate::relations::schemas;
use mmqjp_relational::{Atom, ConjunctiveQuery, PhysicalPlan, StringInterner, Term, Value};
use mmqjp_xscl::{QueryTemplate, Side};

/// Name of the `Rdoc` relation in the engine database.
pub const RDOC: &str = "Rdoc";
/// Name of the `Rbin` relation in the engine database.
pub const RBIN: &str = "Rbin";
/// Name of the `RdocW` relation in the engine database.
pub const RDOC_W: &str = "RdocW";
/// Name of the `RbinW` relation in the engine database.
pub const RBIN_W: &str = "RbinW";
/// Name of the `RL` intermediate in the engine database.
pub const RL: &str = "RL";
/// Name of the `RR` intermediate in the engine database.
pub const RR: &str = "RR";

/// Name of the `RT` relation for a template index.
pub fn rt_name(template_index: usize) -> String {
    format!("RT_{template_index}")
}

/// Arity of an engine relation by name, for plan compilation. `rt_name` /
/// `rt_arity` describe the one template-specific relation; everything else
/// has a fixed schema (see [`schemas`]).
pub(crate) fn relation_arity(name: &str, rt_name: &str, rt_arity: usize) -> Option<usize> {
    match name {
        RBIN | RBIN_W => Some(schemas::bin().arity()),
        RDOC | RDOC_W => Some(schemas::doc().arity()),
        RL => Some(schemas::rl().arity()),
        RR => Some(schemas::rr().arity()),
        n if n == rt_name => Some(rt_arity),
        _ => None,
    }
}

/// Which engine relation each of a compiled plan's input slots reads.
/// Resolved once at registration so `process_batch` never matches relation
/// *names* on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PlanInputKind {
    /// The segmented `Rbin` join state.
    Rbin,
    /// The segmented `Rdoc` join state.
    Rdoc,
    /// The current batch's `RbinW` witness relation.
    RbinW,
    /// The current batch's `RdocW` witness relation.
    RdocW,
    /// The per-batch `RL` intermediate (view-materialization mode).
    Rl,
    /// The per-batch `RR` intermediate (view-materialization mode).
    Rr,
    /// The owning template's `RT` relation.
    Rt,
}

/// Map a compiled plan's input slots to [`PlanInputKind`]s.
pub(crate) fn plan_input_kinds(plan: &PhysicalPlan, rt_name: &str) -> Vec<PlanInputKind> {
    plan.relations()
        .iter()
        .map(|name| match name.as_str() {
            RBIN => PlanInputKind::Rbin,
            RDOC => PlanInputKind::Rdoc,
            RBIN_W => PlanInputKind::RbinW,
            RDOC_W => PlanInputKind::RdocW,
            RL => PlanInputKind::Rl,
            RR => PlanInputKind::Rr,
            n if n == rt_name => PlanInputKind::Rt,
            other => unreachable!("engine CQTs never reference relation `{other}`"),
        })
        .collect()
}

fn n(i: usize) -> Term {
    Term::var(format!("n{i}"))
}

fn v(i: usize) -> Term {
    Term::var(format!("v{i}"))
}

fn s(e: usize) -> Term {
    Term::var(format!("s{e}"))
}

/// The head columns shared by the template forms:
/// `(qid, d1, d2, n0, ..., n{M-1}, wl)`.
pub fn template_head(template: &QueryTemplate) -> Vec<String> {
    let mut head = vec!["qid".to_owned(), "d1".to_owned(), "d2".to_owned()];
    for i in 0..template.num_meta_vars() {
        head.push(format!("n{i}"));
    }
    head.push("wl".to_owned());
    head
}

/// Positions (global) of reduced-tree roots that participate in value joins;
/// these need degenerate self-edge `Rbin`/`RbinW` atoms because no incoming
/// structural edge constrains their binding.
fn self_edge_positions(template: &QueryTemplate, side: Side) -> Vec<usize> {
    let tree = template.graph.tree(side);
    tree.nodes
        .iter()
        .enumerate()
        .filter(|(_, node)| node.parent.is_none() && node.is_join_node)
        .map(|(idx, _)| template.global_position(side, idx))
        .collect()
}

/// Parent position (global) of a global position, or the position itself for
/// reduced-tree roots (used to pick the structural edge backing an `RL`/`RR`
/// atom).
fn parent_or_self(template: &QueryTemplate, position: usize) -> usize {
    let (side, idx) = template.position_side(position);
    match template.graph.tree(side).nodes[idx].parent {
        Some(p) => template.global_position(side, p),
        None => position,
    }
}

fn is_join_node(template: &QueryTemplate, position: usize) -> bool {
    let (side, idx) = template.position_side(position);
    template.graph.tree(side).nodes[idx].is_join_node
}

/// The basic (Algorithm 1) conjunctive query for a template.
pub fn template_cqt_basic(template: &QueryTemplate, rt: &str) -> ConjunctiveQuery {
    let mut q = ConjunctiveQuery::new(template_head(template));

    // Value-join edges: one Rdoc/RdocW pair per edge.
    for (e, (l, r)) in template.value_edges().into_iter().enumerate() {
        q.push_atom(Atom::new(RDOC, [Term::var("d1"), n(l), s(e)]));
        q.push_atom(Atom::new(RDOC_W, [Term::var("d2"), n(r), s(e)]));
    }
    // Structural edges.
    for (p, c, side) in template.structural_edges() {
        match side {
            Side::Left => q.push_atom(Atom::new(RBIN, [Term::var("d1"), v(p), v(c), n(p), n(c)])),
            Side::Right => {
                q.push_atom(Atom::new(RBIN_W, [Term::var("d2"), v(p), v(c), n(p), n(c)]));
            }
        }
    }
    // Degenerate self edges for join-node roots.
    for p in self_edge_positions(template, Side::Left) {
        q.push_atom(Atom::new(RBIN, [Term::var("d1"), v(p), v(p), n(p), n(p)]));
    }
    for p in self_edge_positions(template, Side::Right) {
        q.push_atom(Atom::new(RBIN_W, [Term::var("d2"), v(p), v(p), n(p), n(p)]));
    }
    // RT atom ties meta-variable symbols and per-query metadata together.
    q.push_atom(rt_atom(template, rt));
    q
}

/// The materialized (Algorithm 4) conjunctive query for a template,
/// expressed over `RL` and `RR`.
pub fn template_cqt_materialized(template: &QueryTemplate, rt: &str) -> ConjunctiveQuery {
    let mut q = ConjunctiveQuery::new(template_head(template));

    for (e, (l, r)) in template.value_edges().into_iter().enumerate() {
        let pl = parent_or_self(template, l);
        let pr = parent_or_self(template, r);
        q.push_atom(Atom::new(
            RL,
            [Term::var("d1"), v(pl), v(l), n(pl), n(l), s(e)],
        ));
        q.push_atom(Atom::new(
            RR,
            [Term::var("d2"), v(pr), v(r), n(pr), n(r), s(e)],
        ));
    }
    // Structural edges whose child is not a value-join node are not covered
    // by RL/RR and still need base-relation atoms.
    for (p, c, side) in template.structural_edges() {
        if is_join_node(template, c) {
            continue;
        }
        match side {
            Side::Left => q.push_atom(Atom::new(RBIN, [Term::var("d1"), v(p), v(c), n(p), n(c)])),
            Side::Right => {
                q.push_atom(Atom::new(RBIN_W, [Term::var("d2"), v(p), v(c), n(p), n(c)]));
            }
        }
    }
    q.push_atom(rt_atom(template, rt));
    q
}

/// The per-query conjunctive query used by the Sequential baseline: the basic
/// form with the query's concrete (interned) variable names substituted for
/// the meta-variables and no `RT` atom. The head is
/// `(d1, d2, n0, ..., n{M-1})`.
pub fn per_query_cqt(
    template: &QueryTemplate,
    assignment: &[String],
    interner: &StringInterner,
) -> ConjunctiveQuery {
    let sym = |i: usize| -> Term { Term::Const(Value::Sym(interner.intern(&assignment[i]))) };

    let mut head = vec!["d1".to_owned(), "d2".to_owned()];
    for i in 0..template.num_meta_vars() {
        head.push(format!("n{i}"));
    }
    let mut q = ConjunctiveQuery::new(head);

    for (e, (l, r)) in template.value_edges().into_iter().enumerate() {
        q.push_atom(Atom::new(RDOC, [Term::var("d1"), n(l), s(e)]));
        q.push_atom(Atom::new(RDOC_W, [Term::var("d2"), n(r), s(e)]));
    }
    for (p, c, side) in template.structural_edges() {
        match side {
            Side::Left => q.push_atom(Atom::new(
                RBIN,
                [Term::var("d1"), sym(p), sym(c), n(p), n(c)],
            )),
            Side::Right => q.push_atom(Atom::new(
                RBIN_W,
                [Term::var("d2"), sym(p), sym(c), n(p), n(c)],
            )),
        }
    }
    for p in self_edge_positions(template, Side::Left) {
        q.push_atom(Atom::new(
            RBIN,
            [Term::var("d1"), sym(p), sym(p), n(p), n(p)],
        ));
    }
    for p in self_edge_positions(template, Side::Right) {
        q.push_atom(Atom::new(
            RBIN_W,
            [Term::var("d2"), sym(p), sym(p), n(p), n(p)],
        ));
    }
    q
}

/// The `RT` atom of a template: `RT_i(qid, v0, ..., v{M-1}, wl)`.
fn rt_atom(template: &QueryTemplate, rt: &str) -> Atom {
    let mut terms = vec![Term::var("qid")];
    for i in 0..template.num_meta_vars() {
        terms.push(v(i));
    }
    terms.push(Term::var("wl"));
    Atom::new(rt, terms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmqjp_xscl::{normalize_query, parse_query, JoinGraph, ReducedGraph, TemplateCatalog};

    const Q1: &str = "S//book->x1[.//author->x2][.//title->x3] \
        FOLLOWED BY{x2=x5 AND x3=x6, 100} \
        S//blog->x4[.//author->x5][.//title->x6]";

    fn q1_template() -> (QueryTemplate, Vec<String>) {
        let q = normalize_query(&parse_query(Q1).unwrap()).unwrap().query;
        let g = ReducedGraph::from_join_graph(&JoinGraph::from_query(&q).unwrap());
        let mut catalog = TemplateCatalog::new();
        let m = catalog.insert(&g);
        (catalog.template(m.template).clone(), m.assignment)
    }

    fn single_join_template() -> (QueryTemplate, Vec<String>) {
        let q = normalize_query(
            &parse_query("S//book->b[.//author->a] FOLLOWED BY{a=x, 10} S//blog->g[.//author->x]")
                .unwrap(),
        )
        .unwrap()
        .query;
        let g = ReducedGraph::from_join_graph(&JoinGraph::from_query(&q).unwrap());
        let mut catalog = TemplateCatalog::new();
        let m = catalog.insert(&g);
        (catalog.template(m.template).clone(), m.assignment)
    }

    #[test]
    fn basic_cqt_matches_paper_structure() {
        // Section 4.4's CQ_T for the Figure 5 template: 2 Rdoc, 2 RdocW,
        // 2 Rbin, 2 RbinW and 1 RT atom — 9 atoms total.
        let (t, _) = q1_template();
        let q = template_cqt_basic(&t, "RT_0");
        assert_eq!(q.num_atoms(), 9);
        let count = |name: &str| q.body.iter().filter(|a| a.relation == name).count();
        assert_eq!(count(RDOC), 2);
        assert_eq!(count(RDOC_W), 2);
        assert_eq!(count(RBIN), 2);
        assert_eq!(count(RBIN_W), 2);
        assert_eq!(count("RT_0"), 1);
        assert!(q.validate().is_ok());
        assert!(q.is_connected());
        // Head: qid, d1, d2, six node columns, wl.
        assert_eq!(q.head.len(), 10);
        assert_eq!(q.head[0], "qid");
        assert_eq!(*q.head.last().unwrap(), "wl");
    }

    #[test]
    fn materialized_cqt_uses_rl_rr_only() {
        // Section 5's rewritten query: 2 RL, 2 RR, 1 RT — no base relations
        // because every structural edge's child is a value-join leaf.
        let (t, _) = q1_template();
        let q = template_cqt_materialized(&t, "RT_0");
        let count = |name: &str| q.body.iter().filter(|a| a.relation == name).count();
        assert_eq!(count(RL), 2);
        assert_eq!(count(RR), 2);
        assert_eq!(count(RBIN), 0);
        assert_eq!(count(RBIN_W), 0);
        assert_eq!(count("RT_0"), 1);
        assert_eq!(q.num_atoms(), 5);
        assert!(q.validate().is_ok());
        assert!(q.is_connected());
        assert_eq!(q.head, template_cqt_basic(&t, "RT_0").head);
    }

    #[test]
    fn single_node_sides_get_self_edges() {
        let (t, _) = single_join_template();
        assert_eq!(t.num_meta_vars(), 2);
        let q = template_cqt_basic(&t, "RT_0");
        // 1 Rdoc + 1 RdocW + 1 self-edge Rbin + 1 self-edge RbinW + RT = 5.
        assert_eq!(q.num_atoms(), 5);
        let rbin_atom = q.body.iter().find(|a| a.relation == RBIN).unwrap();
        // Self edge repeats the same variable and node terms.
        assert_eq!(rbin_atom.terms[1], rbin_atom.terms[2]);
        assert_eq!(rbin_atom.terms[3], rbin_atom.terms[4]);
        // Materialized form: RL + RR + RT.
        let m = template_cqt_materialized(&t, "RT_0");
        assert_eq!(m.num_atoms(), 3);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn per_query_cqt_substitutes_constants() {
        let (t, assignment) = q1_template();
        let interner = StringInterner::new();
        let q = per_query_cqt(&t, &assignment, &interner);
        // Same shape as the basic form minus the RT atom.
        assert_eq!(q.num_atoms(), 8);
        assert!(q.validate().is_ok());
        // The Rbin atoms carry constant symbols, not variables.
        let rbin_atom = q.body.iter().find(|a| a.relation == RBIN).unwrap();
        assert!(matches!(rbin_atom.terms[1], Term::Const(Value::Sym(_))));
        // Head has no qid/wl.
        assert_eq!(q.head.len(), 2 + t.num_meta_vars());
        assert_eq!(q.head[0], "d1");
        // The interner now knows the canonical variable names.
        assert!(interner.get("S//book//author").is_some());
    }

    #[test]
    fn lca_templates_keep_base_atoms_in_materialized_form() {
        // A template with an internal LCA node below the root: the edge to
        // that internal node is not covered by RL/RR and must remain as a
        // base-relation atom.
        let text = "S//r->r1[.//g->g1[.//a->a1][.//b->b1]][.//c->c1] \
            FOLLOWED BY{a1=x AND b1=y AND c1=z, 100} \
            S//i->i1[.//x->x][.//y->y][.//z->z]";
        let q = normalize_query(&parse_query(text).unwrap()).unwrap().query;
        let g = ReducedGraph::from_join_graph(&JoinGraph::from_query(&q).unwrap());
        let mut catalog = TemplateCatalog::new();
        let m = catalog.insert(&g);
        let t = catalog.template(m.template).clone();
        let cq = template_cqt_materialized(&t, "RT_0");
        // The left root -> g edge (g is not a join node) requires one Rbin
        // atom; everything else is RL/RR.
        let count = |name: &str| cq.body.iter().filter(|a| a.relation == name).count();
        assert_eq!(count(RBIN), 1);
        assert_eq!(count(RL), 3);
        assert_eq!(count(RR), 3);
        assert!(cq.validate().is_ok());
        assert!(cq.is_connected());
    }

    #[test]
    fn rt_name_formatting() {
        assert_eq!(rt_name(0), "RT_0");
        assert_eq!(rt_name(17), "RT_17");
    }
}
