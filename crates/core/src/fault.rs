//! Deterministic fault injection for the sharded pipeline.
//!
//! Production failure handling is only trustworthy if it is exercised, and it
//! is only *testable* if the failures are reproducible. This module provides a
//! seeded, step-indexed fault schedule ([`FaultPlan`]) and the runtime that
//! drives it ([`FaultInjector`]): "panic shard 2 while it serves batch 7",
//! "drop shard 0's response channel at batch 3", "corrupt the bytes of
//! document 1 in batch 5". The same seed always produces the same schedule,
//! so a chaos-harness failure replays exactly.
//!
//! The injector is strictly opt-in: a [`ShardedEngine`](crate::ShardedEngine)
//! without one (the default) never consults this module on the hot path, and
//! a benign plan ([`FaultPlan::none`]) injects nothing — the equivalence
//! fixtures run once under a benign plan to prove the plumbing itself is
//! non-perturbing.
//!
//! Poison *input* (as opposed to injected worker death) is recorded by the
//! quarantine path as a [`QuarantineRecord`], regardless of whether the
//! poison arrived organically or via [`FaultKind::OutOfOrderTimestamp`].

use crate::error::CoreError;
use std::collections::BTreeMap;

/// A single injected fault, addressed by batch index via [`FaultPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultKind {
    /// Panic the given shard worker while it serves this batch. The worker
    /// contains the panic ([`CoreError::ShardPanicked`]) and retires; what
    /// happens next depends on the
    /// [`FaultPolicy`](crate::FaultPolicy).
    PanicShard {
        /// Index of the shard to kill.
        shard: usize,
    },
    /// Make the given shard drop this batch's reply channel without
    /// answering (the worker itself stays alive but desynchronised, so the
    /// supervisor treats it exactly like a death and respawns it). Models a
    /// lost response rather than a crashed computation.
    DropResponse {
        /// Index of the shard whose reply is dropped.
        shard: usize,
    },
    /// Panic the given front (parse) worker while it parses its slice of
    /// this batch. Only meaningful in the hybrid topology; ignored when
    /// `front_pool == 0`.
    PanicFront {
        /// Index of the front worker to kill.
        worker: usize,
    },
    /// Corrupt the serialized bytes of the given document before parsing.
    /// Applied by the harness (which owns the raw bytes) via
    /// [`corrupt_bytes`]; the engine itself never sees this kind.
    CorruptDocument {
        /// Index of the document within the batch.
        doc_index: usize,
    },
    /// Rewrite the given document's timestamp to one older than the stream
    /// watermark, turning it into poison input for an in-order engine.
    OutOfOrderTimestamp {
        /// Index of the document within the batch.
        doc_index: usize,
    },
}

/// A deterministic, step-indexed schedule of faults: batch index → faults to
/// inject while that batch is processed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    steps: BTreeMap<u64, Vec<FaultKind>>,
}

impl FaultPlan {
    /// The benign plan: injects nothing, ever. Installing it proves the
    /// injection plumbing is non-perturbing.
    pub fn none() -> Self {
        Self::default()
    }

    /// Add a fault to inject at the given (0-based) batch index. Builder
    /// style; multiple faults may target the same batch.
    pub fn at(mut self, batch: u64, fault: FaultKind) -> Self {
        self.steps.entry(batch).or_default().push(fault);
        self
    }

    /// Derive a pseudo-random plan from `seed`, scheduling roughly one fault
    /// every few batches across `batches` steps for an engine with
    /// `num_shards` shards and `front_pool` front workers. The same
    /// arguments always yield the same plan.
    pub fn seeded(seed: u64, batches: u64, num_shards: usize, front_pool: usize) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut plan = Self::default();
        let shards = num_shards.max(1) as u64;
        for batch in 0..batches {
            // ~40% of batches get one fault; the rest run clean so the
            // pipeline also exercises fault-free steady state post-recovery.
            if rng.next() % 10 >= 4 {
                continue;
            }
            let fault = match rng.next() % 5 {
                0 => FaultKind::PanicShard {
                    shard: (rng.next() % shards) as usize,
                },
                1 => FaultKind::DropResponse {
                    shard: (rng.next() % shards) as usize,
                },
                2 if front_pool > 0 => FaultKind::PanicFront {
                    worker: (rng.next() % front_pool as u64) as usize,
                },
                3 => FaultKind::CorruptDocument {
                    doc_index: (rng.next() % 4) as usize,
                },
                _ => FaultKind::OutOfOrderTimestamp {
                    doc_index: (rng.next() % 4) as usize,
                },
            };
            plan = plan.at(batch, fault);
        }
        plan
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.steps.values().all(Vec::is_empty)
    }

    /// The faults scheduled for the given batch index.
    pub fn faults_at(&self, batch: u64) -> &[FaultKind] {
        self.steps.get(&batch).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Runtime driver for a [`FaultPlan`]: hands the engine the faults scheduled
/// for each batch and counts how many were actually delivered.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
    injected: usize,
}

impl FaultInjector {
    /// Create an injector for the given plan.
    pub fn new(plan: FaultPlan) -> Self {
        Self { plan, injected: 0 }
    }

    /// The faults to inject for the given batch index. Each returned fault
    /// is counted as injected (mirrored into the engine's `faults_injected`
    /// stat by the caller).
    pub fn faults_for(&mut self, batch: u64) -> Vec<FaultKind> {
        let faults = self.plan.faults_at(batch).to_vec();
        self.injected += faults.len();
        faults
    }

    /// Total faults delivered so far.
    pub fn injected(&self) -> usize {
        self.injected
    }
}

/// A poison document that was skipped under
/// [`FaultPolicy::Quarantine`](crate::FaultPolicy) instead of failing its
/// batch. The record pins the document's exact position in the stream so a
/// differential harness can reconstruct the surviving-document stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineRecord {
    /// 0-based index of the batch the document arrived in.
    pub batch: u64,
    /// Index of the document within its batch.
    pub doc_index: usize,
    /// The offending document's (effective) timestamp.
    pub timestamp: u64,
    /// Why the document was rejected.
    pub error: CoreError,
}

/// Deterministically mutate the bytes of a serialized document, for the
/// malformed-input and chaos harnesses. The mutation count and positions
/// derive from `seed` alone. The result is arbitrary bytes — it may or may
/// not still parse; harnesses must treat accept and reject as both valid as
/// long as the two parsers agree and neither panics.
pub fn corrupt_bytes(input: &str, seed: u64) -> Vec<u8> {
    let mut bytes = input.as_bytes().to_vec();
    if bytes.is_empty() {
        return bytes;
    }
    let mut rng = SplitMix64::new(seed);
    let mutations = 1 + (rng.next() % 4) as usize;
    for _ in 0..mutations {
        let pos = (rng.next() % bytes.len() as u64) as usize;
        match rng.next() % 3 {
            0 => bytes[pos] = (rng.next() % 256) as u8,
            1 => {
                bytes.remove(pos);
                if bytes.is_empty() {
                    return bytes;
                }
            }
            _ => bytes.insert(pos, (rng.next() % 256) as u8),
        }
    }
    bytes
}

/// Minimal splitmix64 generator so fault schedules need no external RNG
/// crate and stay identical across platforms.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// How an injected fault is delivered to a worker thread, carried inside the
/// worker's request messages. `Panic` makes the worker panic mid-request
/// (exercising containment); `DropReply` makes it skip the request and drop
/// the reply channel without dying (exercising supervisor detection of lost
/// responses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WorkerFault {
    Panic,
    DropReply,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_plan_is_empty() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        let mut inj = FaultInjector::new(plan);
        for b in 0..100 {
            assert!(inj.faults_for(b).is_empty());
        }
        assert_eq!(inj.injected(), 0);
    }

    #[test]
    fn builder_schedules_faults() {
        let plan = FaultPlan::none()
            .at(2, FaultKind::PanicShard { shard: 1 })
            .at(2, FaultKind::OutOfOrderTimestamp { doc_index: 0 })
            .at(5, FaultKind::DropResponse { shard: 0 });
        assert!(!plan.is_empty());
        assert_eq!(plan.faults_at(2).len(), 2);
        assert_eq!(plan.faults_at(3).len(), 0);
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.faults_for(2).len(), 2);
        assert_eq!(inj.faults_for(5).len(), 1);
        assert_eq!(inj.injected(), 3);
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded(42, 20, 4, 2);
        let b = FaultPlan::seeded(42, 20, 4, 2);
        assert_eq!(a, b);
        let c = FaultPlan::seeded(43, 20, 4, 2);
        assert_ne!(a, c, "different seeds should differ (w.h.p.)");
        // No front faults when there is no front pool.
        let d = FaultPlan::seeded(42, 64, 4, 0);
        for batch in 0..64 {
            for fault in d.faults_at(batch) {
                assert!(!matches!(fault, FaultKind::PanicFront { .. }));
            }
        }
    }

    #[test]
    fn corrupt_bytes_is_deterministic_and_mutating() {
        let doc = "<rss><item><title>t</title></item></rss>";
        let a = corrupt_bytes(doc, 7);
        let b = corrupt_bytes(doc, 7);
        assert_eq!(a, b);
        assert_ne!(a, doc.as_bytes());
        assert!(corrupt_bytes("", 7).is_empty());
    }
}
