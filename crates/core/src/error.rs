//! Error types for the MMQJP engine.

use mmqjp_relational::RelError;
use mmqjp_xscl::XsclError;
use std::fmt;

/// Convenience result alias used throughout the crate.
pub type CoreResult<T> = Result<T, CoreError>;

/// Errors produced by the MMQJP engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A query could not be parsed or normalized.
    Query(XsclError),
    /// An internal relational operation failed (indicates a bug in query
    /// compilation rather than a user error).
    Relational(RelError),
    /// The query is not supported by the Join Processor (e.g. a single-block
    /// subscription registered where a join query is required).
    Unsupported {
        /// Human-readable description.
        reason: String,
    },
    /// A document was submitted with a timestamp older than one already
    /// processed while the engine is configured for in-order streams.
    OutOfOrderDocument {
        /// The timestamp of the offending document.
        timestamp: u64,
        /// The newest timestamp seen so far.
        newest: u64,
    },
    /// A referenced query id is unknown.
    UnknownQuery {
        /// The raw query id.
        id: u64,
    },
    /// A shard worker thread of a [`ShardedEngine`](crate::ShardedEngine) is
    /// gone (its thread panicked or was shut down), so the request could not
    /// be completed.
    ShardUnavailable {
        /// Index of the unavailable shard.
        shard: usize,
    },
    /// A shard worker caught a panic while serving a request. The worker
    /// contains the panic (the channel is answered with this typed error
    /// instead of being silently dropped) and then retires itself: a
    /// panicking engine's state is suspect, so the supervisor must respawn
    /// the shard (see `ShardedEngine::respawn_shard`) before it serves again.
    ShardPanicked {
        /// Index of the shard whose worker panicked.
        shard: usize,
        /// The panic payload, rendered as a string (`"<non-string panic
        /// payload>"` when the payload was not a string).
        payload: String,
    },
    /// An internal engine invariant did not hold. This always indicates a
    /// bug in the engine (never a user error); the engine reports it as a
    /// typed error instead of panicking on the processing path.
    Internal {
        /// Which invariant was violated.
        context: &'static str,
    },
    /// A join-state or witness tuple carried a value of the wrong type in an
    /// index-key column. This indicates state corruption (or a bug in witness
    /// construction), never a user error: the engine refuses to silently
    /// collapse such rows onto a sentinel key.
    CorruptStateRow {
        /// Name of the relation holding the malformed row.
        relation: &'static str,
        /// Name of the offending column.
        column: &'static str,
        /// Debug rendering of the malformed value.
        value: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Query(e) => write!(f, "query error: {e}"),
            CoreError::Relational(e) => write!(f, "internal relational error: {e}"),
            CoreError::Unsupported { reason } => write!(f, "unsupported: {reason}"),
            CoreError::OutOfOrderDocument { timestamp, newest } => write!(
                f,
                "out-of-order document: timestamp {timestamp} is older than already-processed {newest}"
            ),
            CoreError::UnknownQuery { id } => write!(f, "unknown query id {id}"),
            CoreError::ShardUnavailable { shard } => {
                write!(f, "shard {shard} worker is unavailable")
            }
            CoreError::ShardPanicked { shard, payload } => {
                write!(f, "shard {shard} worker panicked: {payload}")
            }
            CoreError::Internal { context } => {
                write!(f, "internal engine invariant violated: {context}")
            }
            CoreError::CorruptStateRow {
                relation,
                column,
                value,
            } => write!(
                f,
                "corrupt state row: {relation}.{column} holds {value} instead of an index key"
            ),
        }
    }
}

impl CoreError {
    /// Shorthand for an [`Internal`](Self::Internal) invariant violation.
    pub(crate) fn internal(context: &'static str) -> Self {
        CoreError::Internal { context }
    }
}

impl std::error::Error for CoreError {}

impl From<XsclError> for CoreError {
    fn from(e: XsclError) -> Self {
        CoreError::Query(e)
    }
}

impl From<RelError> for CoreError {
    fn from(e: RelError) -> Self {
        CoreError::Relational(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e: CoreError = XsclError::NoValueJoins.into();
        assert!(e.to_string().contains("query error"));
        let e: CoreError = RelError::UnknownRelation {
            relation: "Rbin".into(),
        }
        .into();
        assert!(e.to_string().contains("Rbin"));
        assert!(CoreError::Unsupported {
            reason: "nested joins".into()
        }
        .to_string()
        .contains("nested joins"));
        assert!(CoreError::OutOfOrderDocument {
            timestamp: 1,
            newest: 5
        }
        .to_string()
        .contains("out-of-order"));
        assert!(CoreError::UnknownQuery { id: 7 }.to_string().contains('7'));
        assert!(CoreError::ShardUnavailable { shard: 2 }
            .to_string()
            .contains("shard 2"));
        let e = CoreError::ShardPanicked {
            shard: 3,
            payload: "index out of bounds".into(),
        };
        assert!(e.to_string().contains("shard 3"));
        assert!(e.to_string().contains("index out of bounds"));
        assert!(CoreError::internal("watermark went backwards")
            .to_string()
            .contains("watermark went backwards"));
        let e = CoreError::CorruptStateRow {
            relation: "Rdoc",
            column: "strVal",
            value: "Null".into(),
        };
        assert!(e.to_string().contains("Rdoc.strVal"));
        assert!(e.to_string().contains("Null"));
    }

    #[test]
    fn is_std_error() {
        fn check<E: std::error::Error>(_: &E) {}
        check(&CoreError::UnknownQuery { id: 0 });
    }
}
