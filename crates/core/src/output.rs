//! Query match outputs and default output-document construction
//! (Algorithm 3 and the `SELECT *` semantics of Section 2).

use crate::error::{CoreError, CoreResult};
use mmqjp_xml::{DocId, Document, NodeId};
use mmqjp_xscl::QueryId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One variable binding reported in a match.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Binding {
    /// The query's (canonical) variable name.
    pub variable: String,
    /// The document the node belongs to.
    pub doc: DocId,
    /// The bound node.
    pub node: NodeId,
}

impl fmt::Display for Binding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}:{}", self.variable, self.doc, self.node)
    }
}

/// One match of a registered query: a pair of documents satisfying the
/// query's value joins and temporal constraint (or a single document for
/// single-block subscriptions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchOutput {
    /// The query that matched.
    pub query: QueryId,
    /// The query's `PUBLISH` stream, if any.
    pub publish: Option<String>,
    /// The document matched by the query's *left* block. For single-block
    /// subscriptions this equals `right_doc`.
    pub left_doc: DocId,
    /// The document matched by the query's *right* block (the current
    /// document when the match was produced).
    pub right_doc: DocId,
    /// The variable bindings of the match (one entry per meta-variable of
    /// the query's template, or per pattern variable for single-block
    /// subscriptions).
    pub bindings: Vec<Binding>,
    /// The constructed output document (`SELECT *` semantics), when the
    /// engine retains documents; `None` otherwise or for
    /// `SELECT BINDINGS` queries.
    pub document: Option<Document>,
}

impl MatchOutput {
    /// The binding of a given variable, if present.
    pub fn binding(&self, variable: &str) -> Option<&Binding> {
        self.bindings.iter().find(|b| b.variable == variable)
    }

    /// Compare two matches by `(query, left_doc, right_doc, bindings)`.
    ///
    /// This is a total order on the matches a batch can produce: the bindings
    /// determine the result tuple the match was built from, so two matches
    /// comparing `Equal` are identical (including their constructed output
    /// document). Used by [`sort_matches`] to impose the canonical order.
    pub fn canonical_cmp(&self, other: &MatchOutput) -> std::cmp::Ordering {
        self.query
            .cmp(&other.query)
            .then_with(|| self.left_doc.cmp(&other.left_doc))
            .then_with(|| self.right_doc.cmp(&other.right_doc))
            .then_with(|| self.bindings.cmp(&other.bindings))
    }
}

/// Sort matches into the canonical `(query, left_doc, right_doc, bindings)`
/// order.
///
/// [`ShardedEngine`](crate::ShardedEngine) returns every batch in this order
/// so its output is deterministic and directly comparable with a
/// canonically-sorted single-engine run, independent of shard count and
/// thread interleaving.
pub fn sort_matches(matches: &mut [MatchOutput]) {
    matches.sort_by(MatchOutput::canonical_cmp);
}

impl fmt::Display for MatchOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} matched ({} FOLLOWED BY {})",
            self.query, self.left_doc, self.right_doc
        )
    }
}

/// Construct the default (`SELECT *`) output document for a join match: a new
/// root element whose two children are the subtrees of the left and right
/// input documents rooted at the query blocks' root bindings.
pub fn construct_join_output(
    left_doc: &Document,
    left_root: NodeId,
    right_doc: &Document,
    right_root: NodeId,
) -> CoreResult<Document> {
    let mut out = Document::new("result");
    copy_subtree(left_doc, left_root, &mut out, NodeId::ROOT)?;
    copy_subtree(right_doc, right_root, &mut out, NodeId::ROOT)?;
    Ok(out)
}

/// Copy the subtree of `src` rooted at `src_node` under `dst_parent` in
/// `dst`.
fn copy_subtree(
    src: &Document,
    src_node: NodeId,
    dst: &mut Document,
    dst_parent: NodeId,
) -> CoreResult<()> {
    let node = src.node(src_node);
    let new_id = dst
        .append_child(dst_parent, node.tag())
        .map_err(|_| CoreError::internal("output document is built in pre-order"))?;
    if let Some(text) = node.text() {
        dst.set_text(new_id, text);
    }
    for (name, value) in node.attributes() {
        dst.set_attribute(new_id, name.clone(), value.clone());
    }
    for &child in node.children() {
        copy_subtree(src, child, dst, new_id)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmqjp_xml::{rss, serialize};

    #[test]
    fn binding_accessors_and_display() {
        let b = Binding {
            variable: "S//book//author".into(),
            doc: DocId(1),
            node: NodeId::from_raw(2),
        };
        assert_eq!(b.to_string(), "S//book//author@d1:n2");
        let m = MatchOutput {
            query: QueryId(3),
            publish: None,
            left_doc: DocId(1),
            right_doc: DocId(2),
            bindings: vec![b.clone()],
            document: None,
        };
        assert_eq!(m.binding("S//book//author"), Some(&b));
        assert!(m.binding("missing").is_none());
        assert!(m.to_string().contains("Q3"));
    }

    #[test]
    fn canonical_order_sorts_by_query_docs_then_bindings() {
        let m = |q: u64, l: u64, r: u64, node: u32| MatchOutput {
            query: QueryId(q),
            publish: None,
            left_doc: DocId(l),
            right_doc: DocId(r),
            bindings: vec![Binding {
                variable: "v".into(),
                doc: DocId(l),
                node: NodeId::from_raw(node),
            }],
            document: None,
        };
        let mut matches = vec![m(2, 1, 3, 0), m(1, 2, 3, 0), m(1, 1, 3, 5), m(1, 1, 3, 2)];
        sort_matches(&mut matches);
        let keys: Vec<(u64, u64, u32)> = matches
            .iter()
            .map(|o| (o.query.raw(), o.left_doc.raw(), o.bindings[0].node.raw()))
            .collect();
        assert_eq!(keys, vec![(1, 1, 2), (1, 1, 5), (1, 2, 0), (2, 1, 0)]);
        assert_eq!(
            matches[0].canonical_cmp(&matches[0]),
            std::cmp::Ordering::Equal
        );
    }

    #[test]
    fn join_output_has_two_subtrees_under_new_root() {
        let d1 = rss::book_announcement(
            &["Danny Ayers"],
            "Beginning RSS and Atom Programming",
            &["Scripting & Programming"],
            "Wrox",
            "0764579169",
        );
        let d2 = rss::blog_article(
            "Danny Ayers",
            "http://dannyayers.com/",
            "Beginning RSS and Atom Programming",
            "Book Announcement",
            "Just heard ...",
        );
        let out = construct_join_output(&d1, NodeId::ROOT, &d2, NodeId::ROOT).unwrap();
        assert_eq!(out.root().tag(), "result");
        assert_eq!(out.root().children().len(), 2);
        let xml = serialize(&out);
        assert!(xml.starts_with("<result><book>"));
        assert!(xml.contains("<blog>"));
        assert!(xml.contains("Danny Ayers"));
        out.check_invariants().unwrap();
        // Every node of both inputs is present plus the new root.
        assert_eq!(out.len(), d1.len() + d2.len() + 1);
    }

    #[test]
    fn join_output_with_subtree_roots() {
        // Using a non-root binding only copies that subtree.
        let d1 = rss::book_announcement(&["A"], "T", &["C"], "P", "I");
        let author = d1.first_with_tag("author").unwrap();
        let d2 = rss::blog_article("A", "u", "T", "C", "D");
        let title = d2.first_with_tag("title").unwrap();
        let out = construct_join_output(&d1, author, &d2, title).unwrap();
        assert_eq!(out.len(), 3);
        let xml = serialize(&out);
        assert_eq!(xml, "<result><author>A</author><title>T</title></result>");
    }
}
