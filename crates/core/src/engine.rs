//! The MMQJP engine: two-stage processing of XML streams against a large set
//! of registered XSCL queries (Algorithms 1–5 of the paper).

use crate::audit::AuditViolation;
use crate::config::{EngineConfig, FaultPolicy, ProcessingMode};
use crate::cqt::PlanInputKind;
use crate::error::{CoreError, CoreResult};
use crate::fault::QuarantineRecord;
use crate::output::{construct_join_output, Binding, MatchOutput};
use crate::registry::{QueryRuntime, Registration, Registry};
use crate::relations::{rl_row, schemas, RoutedBatch, WitnessBatch};
use crate::state::{key_int, key_sym, JoinState};
use crate::stats::{EngineStats, PhaseTimings};
use crate::view_cache::ViewCache;
use mmqjp_relational::{
    ChunkedRows, ExecScratch, FxHashMap, PlanInput, Relation, RowRef, StringInterner, Symbol,
};
use mmqjp_xml::{DocId, Document, NodeId};
use mmqjp_xpath::{PatternMatcher, SharedPass, TreePattern};
use mmqjp_xscl::{JoinOp, QueryId, SelectClause, Side, XsclQuery};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

/// The Massively Multi-Query Join Processing engine.
///
/// See the crate-level documentation for an overview and a quick-start
/// example. The engine is single-threaded by design (the paper's system is a
/// single Join Processor instance); concurrency is achieved by partitioning
/// streams across engine instances.
#[derive(Debug)]
pub struct MmqjpEngine {
    config: EngineConfig,
    interner: Arc<StringInterner>,
    registry: Registry,
    /// The windowed join state: time-bucketed `Rbin`/`Rdoc`/`RdocTS`,
    /// per-bucket secondary indexes and the document-retention maps.
    state: JoinState,
    view_cache: ViewCache,
    /// Pooled executor buffers (selection vectors, join hash tables,
    /// row-id intermediates) reused by every plan execution of this engine.
    scratch: ExecScratch,
    stats: EngineStats,
    next_doc_seq: u64,
    newest_timestamp: u64,
    /// 0-based index of the next batch `process_batch` will ingest; pins
    /// [`QuarantineRecord`]s to their position in the stream.
    batches_ingested: u64,
    /// Poison documents skipped under [`FaultPolicy::Quarantine`], drained
    /// by [`take_quarantine_records`](Self::take_quarantine_records).
    quarantine: Vec<QuarantineRecord>,
}

impl MmqjpEngine {
    /// Create an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        MmqjpEngine::with_interner(config, Arc::new(StringInterner::new()))
    }

    /// Create an engine sharing an existing string interner.
    ///
    /// [`StringInterner`] is thread-safe, so several engines (for example the
    /// shards of a [`ShardedEngine`](crate::ShardedEngine)) can intern
    /// through the same instance concurrently; symbols stay comparable across
    /// all of them and shared strings are stored once.
    pub fn with_interner(config: EngineConfig, interner: Arc<StringInterner>) -> Self {
        let view_cache = ViewCache::new(config.view_cache_capacity);
        let mut registry = Registry::new(Arc::clone(&interner));
        registry.set_verify_plans(config.verify_plans);
        MmqjpEngine {
            registry,
            state: JoinState::new(config.prune_state_by_window),
            view_cache,
            scratch: ExecScratch::new(),
            stats: EngineStats::default(),
            next_doc_seq: 0,
            newest_timestamp: 0,
            batches_ingested: 0,
            quarantine: Vec::new(),
            interner,
            config,
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> EngineStats {
        let mut s = self.stats;
        s.queries_registered = self.registry.num_queries();
        s.templates = self.registry.num_templates();
        s.distinct_patterns = self.registry.num_patterns();
        s.rbin_tuples = self.state.rbin_len();
        s.rdoc_tuples = self.state.rdoc_len();
        s.state_buckets = self.state.num_buckets();
        s.docs_retained = self.state.docs_retained();
        s.plans_compiled = self.registry.plans_compiled();
        s.rows_materialized = self.scratch.rows_materialized() as usize;
        s.scratch_reuses = self.scratch.scratch_reuses() as usize;
        let vc = self.view_cache.stats();
        s.view_cache_hits = vc.hits;
        s.view_cache_misses = vc.misses;
        s.view_cache_evictions = vc.evictions;
        s
    }

    /// Run a full invariant audit over the engine's redundant bookkeeping —
    /// registry refcounts, catalog discipline, join-state indexes and
    /// counters, document accounting and the timestamp watermark — returning
    /// every violated invariant as a typed [`AuditViolation`]. Read-only and
    /// side-effect free; a healthy engine returns an empty vector, and any
    /// violation indicates an engine bug (see [`crate::audit`]).
    pub fn audit(&self) -> Vec<AuditViolation> {
        let mut out = Vec::new();
        self.registry.audit(&mut out);
        self.state.audit(self.newest_timestamp, &mut out);
        // Out-of-order rejections consume sequence numbers without counting
        // a document, so processed <= assigned (never more).
        if self.stats.documents_processed as u64 > self.next_doc_seq {
            out.push(AuditViolation::DocumentAccounting {
                documents_processed: self.stats.documents_processed,
                doc_seq: self.next_doc_seq,
            });
        }
        out
    }

    /// Number of registered queries.
    pub fn num_queries(&self) -> usize {
        self.registry.num_queries()
    }

    /// Number of distinct query templates.
    pub fn num_templates(&self) -> usize {
        self.registry.num_templates()
    }

    /// Number of distinct Stage-1 tree patterns.
    pub fn num_patterns(&self) -> usize {
        self.registry.num_patterns()
    }

    /// Access the query registry (templates, queries, catalog).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The shared string interner.
    pub fn interner(&self) -> &Arc<StringInterner> {
        &self.interner
    }

    /// Register a query from its textual XSCL form. Returns the query id.
    pub fn register_query_text(&mut self, text: &str) -> CoreResult<QueryId> {
        let query = mmqjp_xscl::parse_query(text)?;
        self.register_query(query)
    }

    /// Register a parsed query. Returns the query id.
    ///
    /// A subscription registered mid-stream only joins documents that
    /// arrive after it: resident join state from earlier documents is never
    /// matched against it, so registration order (not just the query set)
    /// defines each query's visible stream.
    pub fn register_query(&mut self, query: XsclQuery) -> CoreResult<QueryId> {
        self.registry
            .register(query, self.config.mode, self.next_doc_seq)
    }

    /// Re-register a query at its *original* arrival floor instead of the
    /// current sequence number. Recovery only: a respawned shard replays
    /// documents its queries had already seen, and each re-registered query
    /// must match exactly the suffix of the stream it matched before the
    /// crash (see [`crate::recovery`]).
    pub(crate) fn register_query_at_floor(
        &mut self,
        query: XsclQuery,
        floor: u64,
    ) -> CoreResult<QueryId> {
        self.registry.register(query, self.config.mode, floor)
    }

    /// Drain the quarantine ledger: every poison document skipped so far
    /// under [`FaultPolicy::Quarantine`], in arrival order. Empty under
    /// other policies (poison then fails its batch instead).
    pub fn take_quarantine_records(&mut self) -> Vec<QuarantineRecord> {
        std::mem::take(&mut self.quarantine)
    }

    /// Rebuild join state from an already-processed batch (ids and
    /// timestamps stamped, order already enforced): Stage 1 plus state
    /// maintenance only. Stage 2 and output construction are skipped — the
    /// batch's matches were delivered before the crash, and the view cache
    /// is a pure cache that may start cold. Counts `rows_replayed` and the
    /// `recovery` phase, but not `documents_processed` (each document was
    /// already counted once, globally, in its original life). Returns the
    /// number of witness rows rebuilt.
    pub(crate) fn replay_batch(&mut self, docs: &[Document]) -> CoreResult<usize> {
        if docs.is_empty() {
            return Ok(0);
        }
        let t0 = Instant::now();
        let mut batch = WitnessBatch::new();
        let requested = self.registry.requested_edges().clone();
        let mut pass = SharedPass::default();
        for doc in docs {
            self.next_doc_seq = self.next_doc_seq.max(doc.id().raw());
            self.newest_timestamp = self.newest_timestamp.max(doc.timestamp().raw());
            let results = if self.config.streaming_front {
                self.registry
                    .pattern_index_mut()
                    .shared_pass_reusing(doc, &mut pass);
                self.registry
                    .pattern_index()
                    .edge_bindings_from_pass(doc, &requested, &pass)
            } else {
                self.registry
                    .pattern_index_mut()
                    .evaluate_edge_bindings(doc, &requested)
            };
            let with_patterns: Vec<(&TreePattern, Vec<mmqjp_xpath::EdgeBinding>)> = results
                .into_iter()
                .map(|(pid, bindings)| (self.registry.pattern_index().pattern(pid), bindings))
                .collect();
            batch.add_document(doc, &with_patterns, &self.interner)?;
        }
        let rows = batch.rbin_w.len() + batch.rdoc_w.len();
        let meta: Vec<(DocId, u64)> = docs.iter().map(|d| (d.id(), d.timestamp().raw())).collect();
        self.maintain_state(batch, &meta, docs, None)?;
        self.stats.rows_replayed += rows;
        self.stats.timings.recovery += t0.elapsed();
        Ok(rows)
    }

    /// Restore the stream watermarks after a replay whose retained suffix
    /// may not reach the live stream position (the log is bounded; the
    /// sequence counter and timestamp watermark are not). Monotonic: never
    /// moves either watermark backwards.
    pub(crate) fn restore_watermarks(&mut self, ingested: u64, newest: u64) {
        self.next_doc_seq = self.next_doc_seq.max(ingested);
        self.newest_timestamp = self.newest_timestamp.max(newest);
    }

    /// Unregister a query, incrementally releasing every shared structure it
    /// participated in: its `RT` tuples are removed in place (an emptied
    /// template is retired from the catalog), its Stage-1 pattern and
    /// requested-edge registrations are released through reference counts,
    /// the window bounds are recomputed so document retention can tighten,
    /// and view-cache slices carrying rows under now-dead canonical
    /// variables are reclaimed (see
    /// [`EngineConfig::purge_views_on_unregister`]).
    ///
    /// The cost is O(the departing query's footprint) — never a registry
    /// rebuild. Freed [`QueryId`]s are tombstoned and never reused, so shard
    /// assignment and the canonical output order stay deterministic across
    /// churn. Join-state rows that only the departed query's patterns
    /// produced are left to age out with their time bucket (they are
    /// semantically inert — no live `RT` tuple joins them — and window
    /// expiry bounds their lifetime); everything else is reclaimed eagerly.
    ///
    /// Errors with [`CoreError::UnknownQuery`] for ids never assigned or
    /// already unregistered.
    pub fn unregister_query(&mut self, id: QueryId) -> CoreResult<()> {
        let effects = self.registry.unregister(id)?;
        self.stats.queries_unregistered += 1;
        self.stats.templates_retired += effects.templates_retired;
        self.stats.patterns_dropped += effects.patterns_dropped;
        if self.config.purge_views_on_unregister && !effects.dead_vars.is_empty() {
            let dead: HashSet<Symbol> = effects.dead_vars.iter().copied().collect();
            self.stats.view_slices_invalidated += self.view_cache.purge_dead_vars(&dead);
        }
        // When the retention bound tightened, re-derive the bucket width so
        // eviction granularity follows the surviving windows (a one-time
        // re-partition of resident state; never widens). Skipped while no
        // retention bound exists at all (an infinite-window query is live
        // and no cap is set): nothing can be evicted then, so re-bucketing
        // unbounded state would be pure cost — the tighten happens when the
        // bound-blocking query itself departs.
        if effects.window_changed
            && self.config.state_bucket_width.is_none()
            && self.doc_retention_bound().is_some()
        {
            if let Some(width) = self.width_hint().map(JoinState::derive_width) {
                self.state.tighten_width(width)?;
            }
        }
        Ok(())
    }

    /// Process one document, returning the matches it produced.
    pub fn process_document(&mut self, doc: Document) -> CoreResult<Vec<MatchOutput>> {
        self.process_batch(vec![doc])
    }

    /// Process a batch of documents in arrival order.
    ///
    /// All documents of the batch are joined against the *pre-batch* join
    /// state, then merged into the state together — exactly the batched
    /// evaluation the paper uses for its RSS throughput experiment. With a
    /// batch size of one this is identical to [`process_document`]; with
    /// larger batches, matches *within* the batch are not reported (the same
    /// trade-off the paper makes).
    ///
    /// [`process_document`]: MmqjpEngine::process_document
    pub fn process_batch(&mut self, docs: Vec<Document>) -> CoreResult<Vec<MatchOutput>> {
        let batch_index = self.batches_ingested;
        self.batches_ingested += 1;
        if docs.is_empty() {
            return Ok(Vec::new());
        }
        let mut timings = PhaseTimings::default();

        // ---- Stage 1: XPath evaluation & witness construction -------------
        let t0 = Instant::now();
        let mut batch = WitnessBatch::new();
        let mut prepared_docs = Vec::with_capacity(docs.len());
        let mut single_block_outputs = Vec::new();
        // Cloned once per batch: the registry cannot hand out a borrow while
        // the pattern index is evaluated mutably below.
        let requested = self.registry.requested_edges().clone();
        // Reused across the batch's documents so the shared automaton pass
        // stays allocation-free after the first document.
        let mut pass = SharedPass::default();
        for (doc_index, mut doc) in docs.into_iter().enumerate() {
            // Screen before committing the sequence number, so a quarantined
            // document leaves no gap: the surviving stream gets the exact
            // ids a fresh engine fed only the survivors would assign.
            let tentative = self.next_doc_seq + 1;
            let ts = match doc.timestamp().raw() {
                0 => tentative,
                raw => raw,
            };
            if self.config.enforce_in_order && ts < self.newest_timestamp {
                let error = CoreError::OutOfOrderDocument {
                    timestamp: ts,
                    newest: self.newest_timestamp,
                };
                if self.config.fault_policy == FaultPolicy::FailFast {
                    // Historical semantics: the rejected document consumes
                    // its sequence number and fails the whole batch.
                    self.next_doc_seq = tentative;
                    return Err(error);
                }
                self.quarantine.push(QuarantineRecord {
                    batch: batch_index,
                    doc_index,
                    timestamp: ts,
                    error,
                });
                self.stats.docs_quarantined += 1;
                continue;
            }
            self.next_doc_seq = tentative;
            doc.set_id(DocId(tentative));
            doc.set_timestamp(mmqjp_xml::Timestamp(ts));
            self.newest_timestamp = self.newest_timestamp.max(ts);

            // Single-block subscriptions are answered directly from Stage 1.
            let results = if self.config.streaming_front {
                // Streaming front end: one shared automaton pass over the
                // document answers every registered pattern at once; both the
                // single-block witnesses and the join edge bindings are then
                // derived from the same satisfiability sets.
                self.registry
                    .pattern_index_mut()
                    .shared_pass_reusing(&doc, &mut pass);
                single_block_outputs.extend(self.match_single_blocks_from_pass(&doc, &pass));
                self.registry
                    .pattern_index()
                    .edge_bindings_from_pass(&doc, &requested, &pass)
            } else {
                single_block_outputs.extend(self.match_single_block_queries(&doc));
                self.registry
                    .pattern_index_mut()
                    .evaluate_edge_bindings(&doc, &requested)
            };
            let with_patterns: Vec<(&TreePattern, Vec<mmqjp_xpath::EdgeBinding>)> = results
                .into_iter()
                .map(|(pid, bindings)| (self.registry.pattern_index().pattern(pid), bindings))
                .collect();
            let t_ingest = Instant::now();
            batch.add_document(&doc, &with_patterns, &self.interner)?;
            timings.ingest += t_ingest.elapsed();
            prepared_docs.push(doc);
        }
        timings.xpath += t0.elapsed().saturating_sub(timings.ingest);

        // Every document quarantined: nothing entered the stream, so there
        // is no Stage 2 to run and no state to maintain.
        if prepared_docs.is_empty() {
            self.stats.timings += timings;
            return Ok(single_block_outputs);
        }

        // ---- Stage 2: value-join processing --------------------------------
        // The compiled plans execute over *borrowed* state: the registry's
        // templates (plans and RT relations), the segmented join state and
        // the batch's witness relations are read in place — nothing is
        // cloned or moved per batch. Split field borrows keep the scratch
        // pool and view cache writable alongside.
        let mut outputs = single_block_outputs;
        // The per-batch RbinW index built during view-materialized
        // evaluation is handed on to maintenance so it is never built twice.
        let mut rbinw_index: Option<RbinwByDocnode> = None;
        if self.registry.num_templates() > 0 && !batch.is_empty() {
            let result_rows = self.evaluate_stage2(&batch, &mut rbinw_index, &mut timings)?;
            let t_out = Instant::now();
            for (rid, rows) in result_rows {
                outputs.extend(self.produce_outputs(rid, &rows, &batch, &prepared_docs)?);
            }
            timings.output += t_out.elapsed();
        }

        // ---- Maintenance (Algorithm 2 / 5) ---------------------------------
        let meta: Vec<(DocId, u64)> = prepared_docs
            .iter()
            .map(|d| (d.id(), d.timestamp().raw()))
            .collect();
        let t_maint = Instant::now();
        let maintenance = self.maintain_state(batch, &meta, &prepared_docs, rbinw_index);
        timings.maintenance += t_maint.elapsed();
        maintenance?;

        self.stats.documents_processed += prepared_docs.len();
        self.stats.results_emitted += outputs.len();
        self.stats.timings += timings;
        Ok(outputs)
    }

    /// Process a witness batch routed by the hybrid
    /// [`ShardedEngine`](crate::ShardedEngine) front stage.
    ///
    /// Stage 1 (parsing, pattern matching, witness construction and
    /// single-block subscriptions) already happened exactly once at the
    /// front; this entry point runs only Stage 2 and state maintenance over
    /// the routed witness rows. The front stage owns document-id assignment
    /// and in-order enforcement, so no ids are assigned and no order check
    /// happens here — the local sequence/watermark are synced from the
    /// routed metadata so mid-stream registrations get the same arrival
    /// floor a single engine would assign. `documents_processed` is *not*
    /// incremented (the front stage counts each document once, globally).
    pub fn process_witness_batch(&mut self, routed: RoutedBatch) -> CoreResult<Vec<MatchOutput>> {
        let RoutedBatch {
            batch,
            doc_meta,
            docs,
        } = routed;
        if doc_meta.is_empty() {
            return Ok(Vec::new());
        }
        let mut timings = PhaseTimings::default();
        for &(doc, ts) in &doc_meta {
            self.next_doc_seq = self.next_doc_seq.max(doc.raw());
            self.newest_timestamp = self.newest_timestamp.max(ts);
        }

        let mut outputs = Vec::new();
        let mut rbinw_index: Option<RbinwByDocnode> = None;
        if self.registry.num_templates() > 0 && !batch.is_empty() {
            let result_rows = self.evaluate_stage2(&batch, &mut rbinw_index, &mut timings)?;
            let t_out = Instant::now();
            for (rid, rows) in result_rows {
                // `docs` is empty unless documents are retained; output
                // document construction is gated on retention, so an empty
                // slice is never consulted.
                outputs.extend(self.produce_outputs(rid, &rows, &batch, &docs)?);
            }
            timings.output += t_out.elapsed();
        }

        let t_maint = Instant::now();
        let maintenance = self.maintain_state(batch, &doc_meta, &docs, rbinw_index);
        timings.maintenance += t_maint.elapsed();
        maintenance?;

        self.stats.results_emitted += outputs.len();
        self.stats.timings += timings;
        Ok(outputs)
    }

    /// Stage-2 dispatch shared by the document and witness ingest paths.
    fn evaluate_stage2(
        &mut self,
        batch: &WitnessBatch,
        rbinw_index: &mut Option<RbinwByDocnode>,
        timings: &mut PhaseTimings,
    ) -> CoreResult<ResultRows> {
        match self.config.mode {
            ProcessingMode::Sequential => evaluate_sequential(
                &self.registry,
                &self.state,
                &mut self.scratch,
                batch,
                timings,
            ),
            ProcessingMode::Mmqjp => {
                let (rows, _) = evaluate_mmqjp(
                    &self.registry,
                    &self.state,
                    &mut self.view_cache,
                    &mut self.scratch,
                    batch,
                    false,
                    timings,
                )?;
                Ok(rows)
            }
            ProcessingMode::MmqjpViewMat => {
                let (rows, index) = evaluate_mmqjp(
                    &self.registry,
                    &self.state,
                    &mut self.view_cache,
                    &mut self.scratch,
                    batch,
                    true,
                    timings,
                )?;
                *rbinw_index = index;
                Ok(rows)
            }
        }
    }

    // --------------------------------------------------------------------
    // Output production (Algorithm 3)
    // --------------------------------------------------------------------

    /// Turn a result relation into match outputs, applying the temporal
    /// constraint. `rid_override` is `-1` for template results (which carry a
    /// qid column) and a concrete rid for Sequential results.
    fn produce_outputs(
        &self,
        rid_override: i64,
        rows: &Relation,
        batch: &WitnessBatch,
        batch_docs: &[Document],
    ) -> CoreResult<Vec<MatchOutput>> {
        let mut outputs = Vec::new();
        let template_mode = rid_override < 0;
        for row in rows.iter() {
            let (rid, d1, d2, nodes_offset) = if template_mode {
                (
                    row[0].as_int().unwrap_or(i64::MIN),
                    row[1].as_int().unwrap_or(-1),
                    row[2].as_int().unwrap_or(-1),
                    3usize,
                )
            } else {
                (
                    rid_override,
                    row[0].as_int().unwrap_or(-1),
                    row[1].as_int().unwrap_or(-1),
                    2usize,
                )
            };
            let Some((query, registration)) = self.registry.resolve_rid(rid) else {
                continue;
            };
            // Document ids are u64 end-to-end; a negative id in a result row
            // cannot refer to any retained or in-batch document.
            let (Ok(d1), Ok(d2)) = (u64::try_from(d1), u64::try_from(d2)) else {
                continue;
            };
            let (d1, d2) = (DocId(d1), DocId(d2));
            // A subscription only joins documents that arrived after its
            // registration (document ids are arrival sequence numbers).
            if d1.raw() <= query.arrival_floor || d2.raw() <= query.arrival_floor {
                continue;
            }
            let Some(ts1) = self.state.doc_timestamp(d1) else {
                continue;
            };
            let Some(ts2) = batch.timestamp_of(d2).map(|t| t.raw()) else {
                continue;
            };
            let window = query.window.unwrap_or(mmqjp_xscl::Window::Infinite);
            let temporal_ok = match query.op {
                Some(JoinOp::FollowedBy) => ts2 > ts1 && window.accepts_delta(ts2 - ts1),
                Some(JoinOp::Join) => {
                    let delta = ts2.abs_diff(ts1);
                    window.accepts_delta(delta)
                }
                None => true,
            };
            if !temporal_ok {
                continue;
            }
            outputs.push(self.build_match(
                query,
                registration,
                row,
                nodes_offset,
                d1,
                d2,
                batch_docs,
            )?);
        }
        Ok(outputs)
    }

    #[allow(clippy::too_many_arguments)]
    fn build_match(
        &self,
        query: &QueryRuntime,
        registration: &Registration,
        row: RowRef<'_>,
        nodes_offset: usize,
        d1: DocId,
        d2: DocId,
        batch_docs: &[Document],
    ) -> CoreResult<MatchOutput> {
        let template = &self
            .registry
            .template_runtime(registration.template)
            .ok_or(CoreError::internal(
                "a resolved registration's template is live",
            ))?
            .template;
        let num_left = template.num_left();
        let num_vars = template.num_meta_vars();

        let mut bindings = Vec::with_capacity(num_vars);
        for i in 0..num_vars {
            let node = row[nodes_offset + i].as_int().unwrap_or(0) as u32;
            let doc = if i < num_left { d1 } else { d2 };
            bindings.push(Binding {
                variable: registration.assignment[i].clone(),
                doc,
                node: NodeId::from_raw(node),
            });
        }

        // Map template sides back to the query's own left/right blocks.
        let (left_doc, right_doc) = if registration.swapped {
            (d2, d1)
        } else {
            (d1, d2)
        };

        let document = if self.config.retain_documents && query.select == SelectClause::Star {
            self.construct_output_document(
                registration,
                template,
                row,
                nodes_offset,
                d1,
                d2,
                batch_docs,
            )?
        } else {
            None
        };

        Ok(MatchOutput {
            query: query.id,
            publish: query.publish.clone(),
            left_doc,
            right_doc,
            bindings,
            document,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn construct_output_document(
        &self,
        registration: &Registration,
        template: &mmqjp_xscl::QueryTemplate,
        row: RowRef<'_>,
        nodes_offset: usize,
        d1: DocId,
        d2: DocId,
        batch_docs: &[Document],
    ) -> CoreResult<Option<Document>> {
        let Some(prev_doc) = self.state.document(d1) else {
            return Ok(None);
        };
        let Some(cur_doc) = batch_docs.iter().find(|d| d.id() == d2) else {
            return Ok(None);
        };

        // Root binding of a side: the binding of the template-side root
        // position when that position corresponds to the query's pattern
        // root, otherwise the document root.
        let side_root = |side: Side, pattern: &TreePattern| -> NodeId {
            let pos = match side {
                Side::Left => 0,
                Side::Right => template.num_left(),
            };
            let root_var = pattern.root().variable().unwrap_or("");
            if registration.assignment[pos] == root_var {
                NodeId::from_raw(row[nodes_offset + pos].as_int().unwrap_or(0) as u32)
            } else {
                NodeId::ROOT
            }
        };
        let prev_root = side_root(Side::Left, &registration.prev_pattern);
        let cur_root = side_root(Side::Right, &registration.cur_pattern);

        // The output puts the query's left block first.
        let out = if registration.swapped {
            construct_join_output(cur_doc, cur_root, prev_doc, prev_root)?
        } else {
            construct_join_output(prev_doc, prev_root, cur_doc, cur_root)?
        };
        Ok(Some(out))
    }

    /// Answer single-block subscriptions directly from the pattern matcher.
    fn match_single_block_queries(&self, doc: &Document) -> Vec<MatchOutput> {
        let mut outputs = Vec::new();
        for q in self.registry.queries() {
            let Some(pattern) = &q.single_pattern else {
                continue;
            };
            let matcher = PatternMatcher::new(pattern);
            self.push_single_block_outputs(q, doc, matcher.witnesses(doc), &mut outputs);
        }
        outputs
    }

    /// Streaming-front variant of [`match_single_block_queries`]: the
    /// satisfiability and usefulness passes were already run by the shared
    /// automaton, so each subscription only replays witness enumeration over
    /// its own (already pruned) useful sets.
    ///
    /// [`match_single_block_queries`]: MmqjpEngine::match_single_block_queries
    fn match_single_blocks_from_pass(&self, doc: &Document, pass: &SharedPass) -> Vec<MatchOutput> {
        let mut outputs = Vec::new();
        for q in self.registry.queries() {
            let (Some(pattern), Some(pid)) = (&q.single_pattern, q.single_pid) else {
                continue;
            };
            let Some(useful) = pass.useful(pid) else {
                continue;
            };
            if useful.first().map_or(true, Vec::is_empty) {
                continue;
            }
            let matcher = PatternMatcher::new(pattern);
            self.push_single_block_outputs(
                q,
                doc,
                matcher.witnesses_from_useful(doc, useful),
                &mut outputs,
            );
        }
        outputs
    }

    fn push_single_block_outputs(
        &self,
        q: &QueryRuntime,
        doc: &Document,
        witnesses: Vec<mmqjp_xpath::Witness>,
        outputs: &mut Vec<MatchOutput>,
    ) {
        for w in witnesses {
            let bindings = w
                .bindings()
                .iter()
                .map(|(v, n)| Binding {
                    variable: v.clone(),
                    doc: doc.id(),
                    node: *n,
                })
                .collect();
            let document = if self.config.retain_documents && q.select == SelectClause::Star {
                Some(doc.clone())
            } else {
                None
            };
            outputs.push(MatchOutput {
                query: q.id,
                publish: q.publish.clone(),
                left_doc: doc.id(),
                right_doc: doc.id(),
                bindings,
                document,
            });
        }
    }

    // --------------------------------------------------------------------
    // State maintenance (Algorithm 2 / Algorithm 5)
    // --------------------------------------------------------------------

    fn maintain_state(
        &mut self,
        batch: WitnessBatch,
        meta: &[(DocId, u64)],
        docs: &[Document],
        rbinw_index: Option<RbinwByDocnode>,
    ) -> CoreResult<()> {
        // Algorithm 5: fold the current documents' RR contributions into the
        // cached RL slices so future documents find them materialized.
        if self.config.mode == ProcessingMode::MmqjpViewMat {
            // Group the batch's RdocW rows by string value and append the
            // corresponding RbinW rows to the matching cache slices (only for
            // string values already cached — new values will be computed on
            // first use). The RbinW index was usually already built during
            // evaluation; it is only rebuilt when Stage 2 was skipped.
            let rbinw_by_docnode = match rbinw_index {
                Some(index) => index,
                None => rbinw_by_docnode(&batch)?,
            };
            for row in batch.rdoc_w.iter() {
                let sym = key_sym(&row[2], "RdocW", "strVal")?;
                if !self.view_cache.contains(sym) {
                    continue;
                }
                let docid = key_int(&row[0], "RdocW", "docid")?;
                let node = key_int(&row[1], "RdocW", "node")?;
                let mut addition = Relation::new(schemas::rl());
                for &bin_row in rbinw_by_docnode
                    .get(&(docid, node))
                    .map(|v| v.as_slice())
                    .unwrap_or(&[])
                {
                    let b = batch.rbin_w.row(bin_row);
                    addition.push_values(rl_row(b, sym))?;
                }
                if !addition.is_empty() {
                    self.view_cache.append(sym, &addition)?;
                }
            }
        }

        // Algorithm 2: append the batch into its timestamp buckets,
        // maintaining the per-bucket indexes and the retention ledger. The
        // bucket width follows the registered windows; if documents were
        // processed before any windowed query existed, the provisional width
        // is revised (with a one-time re-partition) once a bound appears.
        let derived = match self.config.state_bucket_width {
            Some(w) => Some(w.max(1)),
            None => self.width_hint().map(JoinState::derive_width),
        };
        self.state.ensure_width(derived)?;
        // The batch is consumed here: its witness rows move whole into the
        // segmented store, no per-row field copies.
        self.state
            .absorb_routed(batch, meta, docs, self.config.retain_documents)?;

        // Window expiry: drop whole buckets that no registered window can
        // reach — O(expired rows), no index rebuild — and invalidate exactly
        // the view-cache slices whose string values lost rows.
        if self.config.prune_state_by_window {
            if let Some(window) = self.registry.max_window() {
                let cutoff = self.newest_timestamp.saturating_sub(window);
                let eviction = self.state.evict_join_state(cutoff);
                if !eviction.expired_strvals.is_empty() {
                    let before = self.view_cache.len();
                    self.view_cache
                        .invalidate_if(|k| eviction.expired_strvals.contains(&k));
                    self.stats.view_slices_invalidated += before - self.view_cache.len();
                }
                self.stats.state_buckets_evicted += eviction.buckets;
                self.stats.state_rows_evicted += eviction.rows;
            }
        }

        // Document retention is bounded even when join-state pruning is off:
        // once a document has aged beyond every registered window (and the
        // configured cap), neither the temporal filter nor output
        // construction can ever need it again.
        if let Some(bound) = self.doc_retention_bound() {
            let cutoff = self.newest_timestamp.saturating_sub(bound);
            self.stats.docs_evicted += self.state.evict_documents(cutoff);
        }
        Ok(())
    }

    /// How long documents (and their timestamps) must be retained: the
    /// maximum registered window, tightened or replaced by
    /// [`EngineConfig::doc_retention_cap`]. `None` — retain forever — only
    /// when some window is infinite *and* no cap is configured.
    fn doc_retention_bound(&self) -> Option<u64> {
        min_bound(self.registry.max_window(), self.config.doc_retention_cap)
    }

    /// The retention span the bucket width is derived from. Uses the largest
    /// *finite* window even when infinite windows exist (width is a pure
    /// granularity parameter — see [`JoinState`]).
    fn width_hint(&self) -> Option<u64> {
        min_bound(
            self.registry.max_finite_window(),
            self.config.doc_retention_cap,
        )
    }
}

// ------------------------------------------------------------------------
// Stage-2 evaluation strategies (compiled-plan execution)
// ------------------------------------------------------------------------
//
// These are free functions over the engine's parts (registry, state, view
// cache, scratch) rather than `&mut self` methods so the borrow checker can
// see that plan execution only *reads* the registry and join state while
// writing the scratch pool — which is what lets the hot path run without
// moving or cloning any relation.

/// The per-batch evaluation context: chunked views over the segmented join
/// state (built once, O(#buckets)), the batch's witness relations and the
/// optional `RL`/`RR` intermediates. Every plan execution of the batch
/// resolves its input slots against this.
struct EvalInputs<'a> {
    rbin: ChunkedRows<'a>,
    rdoc: ChunkedRows<'a>,
    batch: &'a WitnessBatch,
    rl: Option<Relation>,
    rr: Option<Relation>,
    /// Basic MMQJP mode only: the resident `Rdoc` rows whose string value
    /// occurs in the current batch, computed once per batch and shared by
    /// every template. Sound because every basic-plan `Rdoc` atom equates
    /// its strVal variable with an `RdocW` atom's — rows with absent string
    /// values can never join.
    rdoc_restricted: Option<Relation>,
    /// Basic MMQJP mode only: the resident `Rbin` rows of documents that
    /// survive the `Rdoc` restriction. Only substituted for plans that also
    /// read `Rdoc` (all left-side atoms share its document variable there).
    rbin_restricted: Option<Relation>,
}

impl<'a> EvalInputs<'a> {
    fn new(state: &'a JoinState, batch: &'a WitnessBatch) -> Self {
        EvalInputs {
            rbin: ChunkedRows::from_segmented(state.rbin()),
            rdoc: ChunkedRows::from_segmented(state.rdoc()),
            batch,
            rl: None,
            rr: None,
            rdoc_restricted: None,
            rbin_restricted: None,
        }
    }

    /// Resolve a plan's input slots for one execution. `rt` is the owning
    /// template's `RT` relation (`None` for per-query plans, which never
    /// reference one).
    fn resolve<'b>(
        &'b self,
        kinds: &[PlanInputKind],
        rt: Option<&'b Relation>,
        inputs: &mut Vec<PlanInput<'b>>,
    ) -> CoreResult<()> {
        inputs.clear();
        // The Rbin restriction is derived from the restricted Rdoc's
        // document ids, so it is only sound for plans whose Rbin atoms share
        // a document variable with an Rdoc atom — i.e. plans that read Rdoc.
        let narrow_rbin = self.rbin_restricted.is_some() && kinds.contains(&PlanInputKind::Rdoc);
        for kind in kinds {
            inputs.push(match kind {
                PlanInputKind::Rbin if narrow_rbin => PlanInput::from(
                    self.rbin_restricted
                        .as_ref()
                        .ok_or(CoreError::internal("narrow_rbin implies a restricted Rbin"))?,
                ),
                PlanInputKind::Rbin => PlanInput::from(&self.rbin),
                PlanInputKind::Rdoc => match &self.rdoc_restricted {
                    Some(restricted) => PlanInput::from(restricted),
                    None => PlanInput::from(&self.rdoc),
                },
                PlanInputKind::RbinW => PlanInput::from(&self.batch.rbin_w),
                PlanInputKind::RdocW => PlanInput::from(&self.batch.rdoc_w),
                PlanInputKind::Rl => PlanInput::from(
                    self.rl
                        .as_ref()
                        .ok_or(CoreError::internal("RL is computed in materialized mode"))?,
                ),
                PlanInputKind::Rr => PlanInput::from(
                    self.rr
                        .as_ref()
                        .ok_or(CoreError::internal("RR is computed in materialized mode"))?,
                ),
                PlanInputKind::Rt => PlanInput::from(
                    rt.ok_or(CoreError::internal("template plans carry an RT input"))?,
                ),
            });
        }
        Ok(())
    }
}

/// Per-batch index of `RbinW` rows by `(docid, node2)`, used both to build
/// the `RR` slices and to fold the batch into cached `RL` slices.
type RbinwByDocnode = FxHashMap<(i64, i64), Vec<usize>>;

/// One Stage-2 result set: `(rid filter, rows)` per non-empty evaluation,
/// where `rid = -1` marks template results (which carry their own qid
/// column).
type ResultRows = Vec<(i64, Relation)>;

/// Build the [`RbinwByDocnode`] index for a batch.
fn rbinw_by_docnode(batch: &WitnessBatch) -> CoreResult<RbinwByDocnode> {
    let mut index: RbinwByDocnode = FxHashMap::default();
    for (i, row) in batch.rbin_w.iter().enumerate() {
        let key = (
            key_int(&row[0], "RbinW", "docid")?,
            key_int(&row[4], "RbinW", "node2")?,
        );
        index.entry(key).or_default().push(i);
    }
    Ok(index)
}

/// Evaluate all templates with their compiled basic or materialized plans.
/// Returns, per result relation, `(rid filter, rows)` where `rid = -1` marks
/// template results (which carry their own qid column), plus — in
/// materialized mode — the batch's `RbinW` index so maintenance can reuse
/// it instead of rebuilding it.
fn evaluate_mmqjp(
    registry: &Registry,
    state: &JoinState,
    view_cache: &mut ViewCache,
    scratch: &mut ExecScratch,
    batch: &WitnessBatch,
    materialized: bool,
    timings: &mut PhaseTimings,
) -> CoreResult<(ResultRows, Option<RbinwByDocnode>)> {
    let mut ctx = EvalInputs::new(state, batch);
    let mut rbinw_index = None;
    if materialized {
        let (rl, rr, index) = compute_rl_rr(state, view_cache, batch, timings)?;
        ctx.rl = Some(rl);
        ctx.rr = Some(rr);
        rbinw_index = Some(index);
    } else {
        // Basic MMQJP: restrict the shared join-state inputs to the rows the
        // batch can actually join, once, before the per-template loop. Every
        // basic plan's Rdoc atom equates its strVal variable with an RdocW
        // atom's, so Rdoc rows under string values absent from the batch are
        // dead weight every template would otherwise re-scan — this is the
        // shared work the view-materialized mode gets from its RL/RR
        // intermediates, without materializing any view.
        let t_restrict = Instant::now();
        let mut strvals: Vec<Symbol> = Vec::new();
        let mut seen: HashSet<Symbol> = HashSet::new();
        for row in batch.rdoc_w.iter() {
            let sym = key_sym(&row[2], "RdocW", "strVal")?;
            if seen.insert(sym) {
                strvals.push(sym);
            }
        }
        let (rdoc, docids) = state.rdoc_for_strvals(&strvals)?;
        ctx.rbin_restricted = Some(state.rbin_for_docids(&docids)?);
        ctx.rdoc_restricted = Some(rdoc);
        timings.compute_rvj += t_restrict.elapsed();
    }

    let t0 = Instant::now();
    let mat0 = scratch.materialize_time();
    let mut results = Vec::new();
    let mut inputs: Vec<PlanInput<'_>> = Vec::new();
    for t in registry.templates() {
        let (plan, kinds) = if materialized {
            (t.plan_materialized.as_ref(), &t.inputs_materialized)
        } else {
            (t.plan_basic.as_ref(), &t.inputs_basic)
        };
        let plan = plan.ok_or(CoreError::internal(
            "the plan variant for the engine's mode is compiled",
        ))?;
        ctx.resolve(kinds, Some(&t.rt), &mut inputs)?;
        let rows = plan.execute(&inputs, scratch, true);
        if !rows.is_empty() {
            results.push((-1, rows));
        }
    }
    let materialize = scratch.materialize_time().saturating_sub(mat0);
    timings.conjunctive += t0.elapsed().saturating_sub(materialize);
    timings.materialize += materialize;
    Ok((results, rbinw_index))
}

/// Evaluate every registered query's compiled per-query plan independently
/// (the paper's Sequential baseline).
fn evaluate_sequential(
    registry: &Registry,
    state: &JoinState,
    scratch: &mut ExecScratch,
    batch: &WitnessBatch,
    timings: &mut PhaseTimings,
) -> CoreResult<ResultRows> {
    let t0 = Instant::now();
    let mat0 = scratch.materialize_time();
    let ctx = EvalInputs::new(state, batch);
    let mut results = Vec::new();
    let mut inputs: Vec<PlanInput<'_>> = Vec::new();
    // Live queries in query-id order; tombstoned queries are skipped.
    for q in registry.queries() {
        for r in &q.registrations {
            let Some(plan) = r.sequential_plan.as_ref() else {
                continue; // registered under an MMQJP mode; never evaluated
            };
            ctx.resolve(&r.sequential_inputs, None, &mut inputs)?;
            let rows = plan.execute(&inputs, scratch, true);
            if !rows.is_empty() {
                results.push((r.rid, rows));
            }
        }
    }
    let materialize = scratch.materialize_time().saturating_sub(mat0);
    timings.conjunctive += t0.elapsed().saturating_sub(materialize);
    timings.materialize += materialize;
    Ok(results)
}

/// Compute the shared `RL` and `RR` intermediates (Algorithm 4, lines 2–8),
/// consulting and maintaining the view cache for `RL` slices. Also returns
/// the batch's `RbinW` index for reuse by state maintenance.
fn compute_rl_rr(
    state: &JoinState,
    view_cache: &mut ViewCache,
    batch: &WitnessBatch,
    timings: &mut PhaseTimings,
) -> CoreResult<(Relation, Relation, RbinwByDocnode)> {
    // STR: distinct string values of the current batch that also occur in
    // the join state (a semi-join of RdocW with Rdoc on strVal).
    let t_rvj = Instant::now();
    let mut str_values: Vec<Symbol> = Vec::new();
    let mut seen: HashSet<Symbol> = HashSet::new();
    // Per-batch index of RdocW rows by string value and of RbinW rows by
    // (docid, node2), used to build the RR slices.
    let mut rdocw_by_str: FxHashMap<Symbol, Vec<usize>> = FxHashMap::default();
    for (i, row) in batch.rdoc_w.iter().enumerate() {
        let sym = key_sym(&row[2], "RdocW", "strVal")?;
        if state.contains_strval(sym) && seen.insert(sym) {
            str_values.push(sym);
        }
        rdocw_by_str.entry(sym).or_default().push(i);
    }
    let rbinw_by_docnode = rbinw_by_docnode(batch)?;
    timings.compute_rvj += t_rvj.elapsed();

    // RL slices: from the cache when possible, otherwise computed from
    // Rdoc ⋈ Rbin.
    let t_rl = Instant::now();
    let mut rl = Relation::new(schemas::rl());
    for &s in &str_values {
        if let Some(slice) = view_cache.get(s) {
            rl.extend_from(slice)?;
            continue;
        }
        let slice = state.rl_slice(s)?;
        rl.extend_from(&slice)?;
        view_cache.insert(s, slice);
    }
    timings.compute_rl += t_rl.elapsed();

    // RR slices: always computed (they involve the current document).
    let t_rr = Instant::now();
    let mut rr = Relation::new(schemas::rl());
    for &s in &str_values {
        for &doc_row in rdocw_by_str.get(&s).map(|v| v.as_slice()).unwrap_or(&[]) {
            let row = batch.rdoc_w.row(doc_row);
            let docid = key_int(&row[0], "RdocW", "docid")?;
            let node = key_int(&row[1], "RdocW", "node")?;
            for &bin_row in rbinw_by_docnode
                .get(&(docid, node))
                .map(|v| v.as_slice())
                .unwrap_or(&[])
            {
                let b = batch.rbin_w.row(bin_row);
                rr.push_values(rl_row(b, s))?;
            }
        }
    }
    timings.compute_rr += t_rr.elapsed();
    Ok((rl, rr, rbinw_by_docnode))
}

/// The smaller of two optional bounds; `None` only when both are absent.
fn min_bound(a: Option<u64>, b: Option<u64>) -> Option<u64> {
    a.into_iter().chain(b).min()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmqjp_xml::{rss, Timestamp};

    const Q1: &str = "S//book->x1[.//author->x2][.//title->x3] \
        FOLLOWED BY{x2=x5 AND x3=x6, 100} \
        S//blog->x4[.//author->x5][.//title->x6]";
    const Q2: &str = "S//book->x1[.//author->x2][.//category->x7] \
        FOLLOWED BY{x2=x5 AND x7=x8, 200} \
        S//blog->x4[.//author->x5][.//category->x8]";
    const Q3: &str = "S//blog->x4[.//author->x5][.//title->x6] \
        FOLLOWED BY{x5=x5' AND x6=x6', 300} \
        S//blog->x4'[.//author->x5'][.//title->x6']";

    fn d1() -> Document {
        rss::book_announcement(
            &["Danny Ayers", "Andrew Watt"],
            "Beginning RSS and Atom Programming",
            &["Scripting & Programming", "Web Site Development"],
            "Wrox",
            "0764579169",
        )
        .with_timestamp(Timestamp(10))
    }

    fn d2() -> Document {
        rss::blog_article(
            "Danny Ayers",
            "http://dannyayers.com/topics/books/rss-book",
            "Beginning RSS and Atom Programming",
            "Scripting & Programming",
            "Just heard ...",
        )
        .with_timestamp(Timestamp(20))
    }

    fn engine(config: EngineConfig) -> MmqjpEngine {
        let mut e = MmqjpEngine::new(config);
        e.register_query_text(Q1).unwrap();
        e.register_query_text(Q2).unwrap();
        e.register_query_text(Q3).unwrap();
        e
    }

    /// The Section 4.4.1 walkthrough: d1 then d2 produce exactly one match
    /// for Q1 and one for Q2 (the blog article's category matches d1's
    /// category for Q2, its title matches d1's title for Q1), and none for
    /// Q3.
    fn run_walkthrough(config: EngineConfig) -> Vec<MatchOutput> {
        let mut e = engine(config);
        let first = e.process_document(d1()).unwrap();
        assert!(first.is_empty());
        e.process_document(d2()).unwrap()
    }

    #[test]
    fn walkthrough_section_4_4_1_mmqjp() {
        let outputs = run_walkthrough(EngineConfig::mmqjp());
        let mut queries: Vec<u64> = outputs.iter().map(|o| o.query.raw()).collect();
        queries.sort_unstable();
        assert_eq!(queries, vec![0, 1]); // Q1 and Q2
        for o in &outputs {
            assert_eq!(o.left_doc, DocId(1));
            assert_eq!(o.right_doc, DocId(2));
            let doc = o.document.as_ref().unwrap();
            assert_eq!(doc.root().tag(), "result");
            assert_eq!(doc.root().children().len(), 2);
        }
    }

    #[test]
    fn walkthrough_section_4_4_1_view_mat() {
        let outputs = run_walkthrough(EngineConfig::mmqjp_view_mat());
        assert_eq!(outputs.len(), 2);
    }

    #[test]
    fn walkthrough_section_4_4_1_sequential() {
        let outputs = run_walkthrough(EngineConfig::sequential());
        assert_eq!(outputs.len(), 2);
    }

    #[test]
    fn all_modes_agree_on_the_walkthrough() {
        let mut a = run_walkthrough(EngineConfig::mmqjp());
        let mut b = run_walkthrough(EngineConfig::mmqjp_view_mat());
        let mut c = run_walkthrough(EngineConfig::sequential());
        let key = |o: &MatchOutput| (o.query, o.left_doc, o.right_doc);
        a.sort_by_key(key);
        b.sort_by_key(key);
        c.sort_by_key(key);
        let ka: Vec<_> = a.iter().map(key).collect();
        let kb: Vec<_> = b.iter().map(key).collect();
        let kc: Vec<_> = c.iter().map(key).collect();
        assert_eq!(ka, kb);
        assert_eq!(ka, kc);
    }

    #[test]
    fn window_constraint_filters_matches() {
        let mut e = MmqjpEngine::new(EngineConfig::mmqjp());
        e.register_query_text(
            "S//book->x1[.//title->x3] FOLLOWED BY{x3=x6, 5} S//blog->x4[.//title->x6]",
        )
        .unwrap();
        e.process_document(d1().with_timestamp(Timestamp(10)))
            .unwrap();
        // 100 - 10 > 5: outside the window.
        let out = e
            .process_document(d2().with_timestamp(Timestamp(100)))
            .unwrap();
        assert!(out.is_empty());
        // A second blog article within the window of nothing earlier than the
        // first book still matches nothing (the book is now 95 units old).
        let out = e
            .process_document(d2().with_timestamp(Timestamp(104)))
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn followed_by_requires_order() {
        let mut e = MmqjpEngine::new(EngineConfig::mmqjp());
        e.register_query_text(Q1).unwrap();
        // Blog first, book second: no match (FOLLOWED BY is directional).
        e.process_document(d2().with_timestamp(Timestamp(5)))
            .unwrap();
        let out = e
            .process_document(d1().with_timestamp(Timestamp(10)))
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn join_operator_matches_both_orders() {
        let q = "S//book->x1[.//title->x3] JOIN{x3=x6, 100} S//blog->x4[.//title->x6]";
        // Order 1: book then blog.
        let mut e = MmqjpEngine::new(EngineConfig::mmqjp());
        e.register_query_text(q).unwrap();
        e.process_document(d1().with_timestamp(Timestamp(1)))
            .unwrap();
        let out = e
            .process_document(d2().with_timestamp(Timestamp(2)))
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].left_doc, DocId(1));
        assert_eq!(out[0].right_doc, DocId(2));
        // Order 2: blog then book — still matches thanks to the swapped
        // orientation.
        let mut e = MmqjpEngine::new(EngineConfig::mmqjp());
        e.register_query_text(q).unwrap();
        e.process_document(d2().with_timestamp(Timestamp(1)))
            .unwrap();
        let out = e
            .process_document(d1().with_timestamp(Timestamp(2)))
            .unwrap();
        assert_eq!(out.len(), 1);
        // The query's left block (book) matched the later document.
        assert_eq!(out[0].left_doc, DocId(2));
        assert_eq!(out[0].right_doc, DocId(1));
    }

    #[test]
    fn q3_matches_pair_of_blog_postings() {
        let mut e = MmqjpEngine::new(EngineConfig::mmqjp());
        e.register_query_text(Q3).unwrap();
        let blog1 =
            rss::blog_article("Ann", "u1", "Same Title", "c", "d").with_timestamp(Timestamp(1));
        let blog2 =
            rss::blog_article("Ann", "u2", "Same Title", "c", "d").with_timestamp(Timestamp(2));
        let blog3 =
            rss::blog_article("Bob", "u3", "Same Title", "c", "d").with_timestamp(Timestamp(3));
        assert!(e.process_document(blog1).unwrap().is_empty());
        let out = e.process_document(blog2).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].query, QueryId(0));
        // Bob's posting shares the title but not the author: no new match
        // with either earlier posting.
        let out = e.process_document(blog3).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn multiple_matching_pairs_produce_multiple_outputs() {
        let mut e = MmqjpEngine::new(EngineConfig::mmqjp());
        e.register_query_text(Q1).unwrap();
        e.process_document(d1()).unwrap();
        // A second identical book announcement.
        e.process_document(d1().with_timestamp(Timestamp(11)))
            .unwrap();
        let out = e.process_document(d2()).unwrap();
        // The blog article joins with both book announcements.
        assert_eq!(out.len(), 2);
        let left_docs: HashSet<u64> = out.iter().map(|o| o.left_doc.raw()).collect();
        assert_eq!(left_docs, HashSet::from([1, 2]));
    }

    #[test]
    fn engine_stats_track_processing() {
        let mut e = engine(EngineConfig::mmqjp_view_mat());
        e.process_document(d1()).unwrap();
        e.process_document(d2()).unwrap();
        let stats = e.stats();
        assert_eq!(stats.documents_processed, 2);
        assert_eq!(stats.results_emitted, 2);
        assert_eq!(stats.queries_registered, 3);
        assert_eq!(stats.templates, 1);
        assert!(stats.rdoc_tuples > 0);
        assert!(stats.rbin_tuples > 0);
        assert!(stats.timings.total().as_nanos() > 0);
        assert_eq!(e.num_queries(), 3);
        assert_eq!(e.num_templates(), 1);
        assert!(e.num_patterns() >= 3);
        assert_eq!(e.config().mode, ProcessingMode::MmqjpViewMat);
        assert!(!e.interner().is_empty());
        assert_eq!(e.registry().num_queries(), 3);
    }

    #[test]
    fn hot_path_executes_compiled_plans_from_pooled_scratch() {
        // The no-per-batch-allocation contract: plans are compiled once at
        // registration (never per batch), every execution after the first
        // runs on the engine's pooled scratch buffers, and result rows are
        // materialized exactly once. CQs and witness relations are never
        // cloned on the hot path — the old build/restore database round
        // trip is gone, so the only per-batch products are these counters.
        for config in [
            EngineConfig::sequential(),
            EngineConfig::mmqjp(),
            EngineConfig::mmqjp_view_mat(),
        ] {
            let mode = config.mode;
            let mut e = engine(config);
            let plans_after_registration = e.stats().plans_compiled;
            match mode {
                // Three queries share one template; exactly the variant this
                // mode executes is compiled.
                ProcessingMode::Mmqjp | ProcessingMode::MmqjpViewMat => {
                    assert_eq!(plans_after_registration, 1, "mode {mode:?}");
                }
                // One per-query plan per orientation, no template plans.
                ProcessingMode::Sequential => {
                    assert_eq!(plans_after_registration, 3, "mode {mode:?}");
                }
            }

            let batches = 4u64;
            for i in 0..batches {
                e.process_document(d1().with_timestamp(Timestamp(10 + 2 * i)))
                    .unwrap();
            }
            let out = e
                .process_document(d2().with_timestamp(Timestamp(20)))
                .unwrap();
            assert!(!out.is_empty());
            let stats = e.stats();
            // Registration never happened again mid-stream.
            assert_eq!(stats.plans_compiled, plans_after_registration);
            // Every execution after the very first reused the pooled
            // scratch: executions = batches x live plans of the mode.
            let plans_per_batch = match mode {
                ProcessingMode::Sequential => 3, // one per query orientation
                _ => 1,                          // one per template
            };
            let executions = (batches as usize + 1) * plans_per_batch;
            assert_eq!(stats.scratch_reuses, executions - 1, "mode {mode:?}");
            // Late materialization: at least one row per emitted match was
            // built, and none more than the distinct result rows.
            assert!(stats.rows_materialized >= stats.results_emitted);
        }
    }

    #[test]
    fn bindings_report_canonical_variables() {
        let outputs = run_walkthrough(EngineConfig::mmqjp());
        let q1_match = outputs.iter().find(|o| o.query == QueryId(0)).unwrap();
        let author = q1_match.binding("S//book//author").unwrap();
        assert_eq!(author.doc, DocId(1));
        // Danny Ayers is node 1 in our Figure-1 fixture.
        assert_eq!(author.node, NodeId::from_raw(1));
        let blog_title = q1_match.binding("S//blog//title").unwrap();
        assert_eq!(blog_title.doc, DocId(2));
    }

    #[test]
    fn single_block_subscription_matches_every_document() {
        let mut e = MmqjpEngine::new(EngineConfig::mmqjp());
        e.register_query_text("S//blog[.//author]").unwrap();
        assert!(e.process_document(d1()).unwrap().is_empty());
        let out = e.process_document(d2()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].left_doc, out[0].right_doc);
        assert!(out[0].document.is_some());
    }

    #[test]
    fn retain_documents_false_skips_output_construction() {
        let mut e = MmqjpEngine::new(EngineConfig::mmqjp().with_retain_documents(false));
        e.register_query_text(Q1).unwrap();
        e.process_document(d1()).unwrap();
        let out = e.process_document(d2()).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0].document.is_none());
    }

    #[test]
    fn batch_processing_joins_against_prior_state_only() {
        let mut e = MmqjpEngine::new(EngineConfig::mmqjp());
        e.register_query_text(Q1).unwrap();
        // Both documents in one batch: the match is within the batch and is
        // not reported (documented trade-off), but the state is built.
        let out = e.process_batch(vec![d1(), d2()]).unwrap();
        assert!(out.is_empty());
        // A later blog article joins with the book from the first batch.
        let out = e
            .process_document(d2().with_timestamp(Timestamp(30)))
            .unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn view_cache_is_exercised_across_documents() {
        let mut e = MmqjpEngine::new(EngineConfig::mmqjp_view_mat());
        e.register_query_text(Q1).unwrap();
        e.process_document(d1()).unwrap();
        e.process_document(d2()).unwrap();
        // Processing a second blog article with the same author/title reuses
        // the cached RL slices.
        let out = e
            .process_document(d2().with_timestamp(Timestamp(30)))
            .unwrap();
        assert_eq!(out.len(), 1);
        let stats = e.stats();
        assert!(
            stats.view_cache_hits > 0,
            "expected cache hits, got {stats:?}"
        );
    }

    #[test]
    fn window_pruning_discards_old_state() {
        let mut e = MmqjpEngine::new(EngineConfig::mmqjp().with_prune_state_by_window(true));
        e.register_query_text(
            "S//book->x1[.//title->x3] FOLLOWED BY{x3=x6, 10} S//blog->x4[.//title->x6]",
        )
        .unwrap();
        e.process_document(d1().with_timestamp(Timestamp(1)))
            .unwrap();
        let before = e.stats().rdoc_tuples;
        assert!(before > 0);
        // A much later document pushes the book out of the window.
        e.process_document(d2().with_timestamp(Timestamp(1000)))
            .unwrap();
        let after = e.stats();
        assert!(after.rdoc_tuples < before + 5);
        // The expired book is gone from the state, so a further blog article
        // cannot match it.
        let out = e
            .process_document(d2().with_timestamp(Timestamp(1005)))
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn window_pruning_is_incremental_and_counted() {
        // Bucketed expiry: no rebuild, whole buckets dropped, counters
        // reported. Width 1 (window 10 / 16 floors to 1) gives near-exact
        // granularity, so the book's state is gone after the jump to ts 1000.
        let mut e = MmqjpEngine::new(EngineConfig::mmqjp().with_prune_state_by_window(true));
        e.register_query_text(
            "S//book->x1[.//title->x3] FOLLOWED BY{x3=x6, 10} S//blog->x4[.//title->x6]",
        )
        .unwrap();
        e.process_document(d1().with_timestamp(Timestamp(1)))
            .unwrap();
        e.process_document(d2().with_timestamp(Timestamp(1000)))
            .unwrap();
        let stats = e.stats();
        assert!(stats.state_buckets_evicted > 0);
        assert!(stats.state_rows_evicted > 0);
        assert!(stats.docs_evicted > 0);
        assert!(stats.state_buckets >= 1);
    }

    #[test]
    fn doc_retention_is_bounded_without_state_pruning() {
        // The leak fix: with prune_state_by_window = false (the default) and
        // retain_documents = true, documents and timestamps are still
        // evicted once they age beyond every registered window. Join state
        // is deliberately left alone in this configuration.
        let mut e = MmqjpEngine::new(EngineConfig::mmqjp());
        assert!(!e.config().prune_state_by_window);
        e.register_query_text(
            "S//book->x1[.//title->x3] FOLLOWED BY{x3=x6, 10} S//blog->x4[.//title->x6]",
        )
        .unwrap();
        for i in 0..100u64 {
            e.process_document(d1().with_timestamp(Timestamp(1 + i * 5)))
                .unwrap();
        }
        let stats = e.stats();
        assert!(
            stats.docs_retained <= 16,
            "doc store must plateau, got {} retained",
            stats.docs_retained
        );
        assert_eq!(stats.docs_evicted + stats.docs_retained, 100);
        // Join state is untouched by doc eviction.
        assert!(stats.rdoc_tuples >= 100);
        // Matches still fire across the retained window: the books at ts 491
        // and 496 are both within 10 of the blog at ts 497.
        let out = e
            .process_document(d2().with_timestamp(Timestamp(1 + 99 * 5 + 1)))
            .unwrap();
        assert_eq!(out.len(), 2);
        assert!(
            out.iter().all(|o| o.document.is_some()),
            "retained docs build the outputs"
        );
    }

    #[test]
    fn doc_retention_cap_bounds_infinite_windows() {
        // With an infinite window nothing could ever be evicted; the config
        // cap acts as the explicit memory backstop.
        let mut e = MmqjpEngine::new(EngineConfig::mmqjp().with_doc_retention_cap(Some(50)));
        e.register_query_text(
            "S//book->x1[.//title->x3] FOLLOWED BY{x3=x6, INF} S//blog->x4[.//title->x6]",
        )
        .unwrap();
        for i in 0..100u64 {
            e.process_document(d1().with_timestamp(Timestamp(1 + i * 5)))
                .unwrap();
        }
        let stats = e.stats();
        assert!(
            stats.docs_retained <= 32,
            "cap must bound retention, got {}",
            stats.docs_retained
        );
        assert!(stats.docs_evicted >= 68);

        // Without the cap the same stream retains every document.
        let mut e = MmqjpEngine::new(EngineConfig::mmqjp());
        e.register_query_text(
            "S//book->x1[.//title->x3] FOLLOWED BY{x3=x6, INF} S//blog->x4[.//title->x6]",
        )
        .unwrap();
        for i in 0..100u64 {
            e.process_document(d1().with_timestamp(Timestamp(1 + i * 5)))
                .unwrap();
        }
        assert_eq!(e.stats().docs_retained, 100);
    }

    #[test]
    fn pruning_invalidates_only_expired_view_slices() {
        // Two distinct titles: after the first expires, its slice is
        // invalidated while the survivor's cached slice keeps serving hits.
        let mut e = MmqjpEngine::new(
            EngineConfig::mmqjp_view_mat()
                .with_prune_state_by_window(true)
                .with_state_bucket_width(Some(10)),
        );
        e.register_query_text(Q3).unwrap();
        let old_blog = rss::blog_article("Ann", "u1", "Old Title", "c", "d");
        let live_blog = rss::blog_article("Ann", "u2", "Live Title", "c", "d");
        e.process_document(old_blog.with_timestamp(Timestamp(1)))
            .unwrap();
        e.process_document(live_blog.clone().with_timestamp(Timestamp(290)))
            .unwrap();
        // Warm the cache for "Live Title" (and match the ts-290 posting).
        let out = e
            .process_document(live_blog.clone().with_timestamp(Timestamp(295)))
            .unwrap();
        assert_eq!(out.len(), 1);
        // Jump far enough that the old posting's bucket expires (window is
        // 300); the live postings stay in-window.
        let out = e
            .process_document(live_blog.clone().with_timestamp(Timestamp(500)))
            .unwrap();
        assert_eq!(out.len(), 2);
        let stats = e.stats();
        assert!(stats.state_rows_evicted > 0, "old posting must expire");
        assert!(
            stats.view_slices_invalidated >= 1,
            "expired slice is invalidated"
        );
        // The surviving slice still produces cache hits afterwards.
        let hits_before = e.stats().view_cache_hits;
        e.process_document(live_blog.with_timestamp(Timestamp(505)))
            .unwrap();
        assert!(e.stats().view_cache_hits > hits_before);
    }

    #[test]
    fn out_of_order_documents_rejected_when_enforced() {
        let mut config = EngineConfig::mmqjp();
        config.enforce_in_order = true;
        let mut e = MmqjpEngine::new(config);
        e.register_query_text(Q1).unwrap();
        e.process_document(d1().with_timestamp(Timestamp(100)))
            .unwrap();
        let err = e
            .process_document(d2().with_timestamp(Timestamp(50)))
            .unwrap_err();
        assert!(matches!(err, CoreError::OutOfOrderDocument { .. }));
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut e = MmqjpEngine::new(EngineConfig::mmqjp());
        e.register_query_text(Q1).unwrap();
        assert!(e.process_batch(Vec::new()).unwrap().is_empty());
        assert_eq!(e.stats().documents_processed, 0);
    }

    #[test]
    fn unregistered_query_stops_matching_and_survivors_continue() {
        for config in [
            EngineConfig::sequential(),
            EngineConfig::mmqjp(),
            EngineConfig::mmqjp_view_mat(),
        ] {
            let mut e = engine(config);
            e.process_document(d1()).unwrap();
            // Unregister Q1 mid-window: only Q2 still matches d2.
            e.unregister_query(QueryId(0)).unwrap();
            let out = e
                .process_document(d2().with_timestamp(Timestamp(20)))
                .unwrap();
            assert_eq!(out.len(), 1, "mode {:?}", e.config().mode);
            assert_eq!(out[0].query, QueryId(1));
            let stats = e.stats();
            assert_eq!(stats.queries_registered, 2);
            assert_eq!(stats.queries_unregistered, 1);
            // Q1's patterns were shared with Q2/Q3, so nothing dropped yet.
            assert_eq!(stats.templates, 1);
        }
    }

    #[test]
    fn unregistering_everything_retires_templates_and_patterns() {
        let mut e = engine(EngineConfig::mmqjp());
        e.process_document(d1()).unwrap();
        for id in [0, 1, 2] {
            e.unregister_query(QueryId(id)).unwrap();
        }
        let stats = e.stats();
        assert_eq!(stats.queries_registered, 0);
        assert_eq!(stats.queries_unregistered, 3);
        assert_eq!(stats.templates, 0);
        assert_eq!(stats.templates_retired, 1);
        assert_eq!(stats.distinct_patterns, 0);
        assert_eq!(stats.patterns_dropped, 4);
        // Further documents produce nothing and ids are never reused.
        let out = e.process_document(d2()).unwrap();
        assert!(out.is_empty());
        let id = e.register_query_text(Q1).unwrap();
        assert_eq!(id, QueryId(3));
        // Double unregister errors.
        assert!(matches!(
            e.unregister_query(QueryId(0)),
            Err(CoreError::UnknownQuery { .. })
        ));
    }

    #[test]
    fn unregister_purges_dead_view_slices() {
        let mut e = MmqjpEngine::new(EngineConfig::mmqjp_view_mat());
        e.register_query_text(Q3).unwrap(); // blog-blog self join
        let blog = |ts: u64| {
            rss::blog_article("Ann", "u1", "Same Title", "c", "d").with_timestamp(Timestamp(ts))
        };
        e.process_document(blog(1)).unwrap();
        e.process_document(blog(2)).unwrap();
        assert!(e.stats().view_cache_misses > 0);
        let before = e.stats().view_slices_invalidated;
        e.unregister_query(QueryId(0)).unwrap();
        // The blog pattern died with its only subscriber; its cached slices
        // were reclaimed.
        let stats = e.stats();
        assert_eq!(stats.patterns_dropped, 1);
        assert!(
            stats.view_slices_invalidated > before,
            "dead-variable slices must be purged: {stats:?}"
        );
    }

    #[test]
    fn doc_retention_tightens_after_widest_window_unregisters() {
        // Regression for the latent gap: the registry used to compute
        // max_finite_window once and only grow it. With the multiset it
        // tightens, and document retention follows on the next batch.
        let mut e = MmqjpEngine::new(EngineConfig::mmqjp());
        let narrow = e
            .register_query_text(
                "S//book->x1[.//title->x3] FOLLOWED BY{x3=x6, 10} S//blog->x4[.//title->x6]",
            )
            .unwrap();
        let wide = e
            .register_query_text(
                "S//book->x1[.//title->x3] FOLLOWED BY{x3=x6, 10000} S//blog->x4[.//title->x6]",
            )
            .unwrap();
        let _ = narrow;
        for i in 0..40u64 {
            e.process_document(d1().with_timestamp(Timestamp(1 + i * 5)))
                .unwrap();
        }
        // The 10000 window retains everything.
        assert_eq!(e.stats().docs_retained, 40);
        e.unregister_query(wide).unwrap();
        assert_eq!(e.registry().max_window(), Some(10));
        // The next documents prune retention down to the 10-unit window.
        for i in 40..44u64 {
            e.process_document(d1().with_timestamp(Timestamp(1 + i * 5)))
                .unwrap();
        }
        let stats = e.stats();
        assert!(
            stats.docs_retained <= 16,
            "retention must tighten to the surviving window, got {}",
            stats.docs_retained
        );
        assert_eq!(stats.docs_retained + stats.docs_evicted, 44);
    }

    #[test]
    fn mid_stream_registration_never_sees_prior_documents() {
        // A subscription only joins documents arriving after it: resident
        // join state (here produced by a twin query's identical patterns)
        // is never matched against a later registration. This is what makes
        // unregister ≡ fresh-engine-with-survivors exact even when queries
        // are re-registered mid-stream.
        for config in [
            EngineConfig::sequential(),
            EngineConfig::mmqjp(),
            EngineConfig::mmqjp_view_mat(),
        ] {
            let mode = config.mode;
            let mut e = MmqjpEngine::new(config);
            e.register_query_text(Q1).unwrap();
            e.process_document(d1()).unwrap(); // doc 1, pre-dates the twin
            let twin = e.register_query_text(Q1).unwrap();
            let out = e.process_document(d2()).unwrap();
            // The original query matches (d1, d2); the twin must not — d1
            // arrived before it subscribed.
            assert_eq!(out.len(), 1, "mode {mode:?}");
            assert_eq!(out[0].query, QueryId(0));
            // A fresh post-registration book: the original pairs the new
            // blog with both books, the twin only with the post-subscription
            // one.
            e.process_document(d1().with_timestamp(Timestamp(30)))
                .unwrap();
            let out = e
                .process_document(d2().with_timestamp(Timestamp(40)))
                .unwrap();
            let mut queries: Vec<u64> = out.iter().map(|o| o.query.raw()).collect();
            queries.sort_unstable();
            assert_eq!(queries, vec![0, 0, twin.raw()], "mode {mode:?}");
            let twin_match = out.iter().find(|o| o.query == twin).unwrap();
            assert_eq!(twin_match.left_doc, DocId(3));
        }
    }

    #[test]
    fn documents_without_join_queries_are_just_absorbed() {
        let mut e = MmqjpEngine::new(EngineConfig::mmqjp());
        let out = e.process_document(d1()).unwrap();
        assert!(out.is_empty());
        assert_eq!(e.stats().documents_processed, 1);
    }
}
