//! Checkpoint/replay recovery for the sharded pipeline.
//!
//! A shard worker that panics (or loses its channel) takes its in-memory
//! join state with it. This module rebuilds that state deterministically,
//! without ever checkpointing the state itself:
//!
//! 1. **Re-register** the shard's surviving subscriptions from the retained
//!    global registry ([`RetainedQuery`]), each at its original arrival
//!    floor, so recovered queries only match documents they would have
//!    matched before the crash.
//! 2. **Replay** the in-window document stream from a bounded [`ReplayLog`]:
//!    Stage 1 + state maintenance only (no Stage 2, no output — those
//!    results were already delivered before the crash). The PR 3 retention
//!    ledger bounds what must be kept: once a document has aged beyond every
//!    registered window (and the configured cap), no future output can
//!    reference it, so the log can drop it too.
//!
//! Because ids, timestamps and registration order are all replayed exactly,
//! the rebuilt engine's *subsequent* output is byte-identical to that of an
//! engine that never failed — the property the chaos differential harness
//! asserts.

use crate::config::EngineConfig;
use crate::engine::MmqjpEngine;
use crate::error::CoreResult;
use mmqjp_relational::StringInterner;
use mmqjp_xml::Document;
use mmqjp_xscl::{Window, XsclQuery};
use std::collections::VecDeque;
use std::sync::Arc;

/// A live subscription as retained by the coordinator for recovery: the
/// normalized query plus the arrival floor it was originally registered at.
#[derive(Debug, Clone)]
pub(crate) struct RetainedQuery {
    /// The query, exactly as first registered.
    pub(crate) query: XsclQuery,
    /// `next_doc_seq` at original registration time: the query only matches
    /// documents with a later sequence number.
    pub(crate) floor: u64,
}

/// A bounded log of already-prepared document batches (ids and timestamps
/// assigned), retained only as far back as some registered window can still
/// reach. Held by the coordinator — one log serves every shard, because
/// under both topologies every shard's state derives from the same global
/// document stream.
#[derive(Debug, Clone, Default)]
pub struct ReplayLog {
    entries: VecDeque<ReplayEntry>,
}

#[derive(Debug, Clone)]
struct ReplayEntry {
    docs: Vec<Document>,
    /// Newest timestamp in `docs`; the whole entry is retired once this ages
    /// beyond the retention bound.
    max_ts: u64,
}

impl ReplayLog {
    /// Append one processed batch (already id- and timestamp-stamped).
    /// Empty batches carry no replayable state and are skipped.
    pub(crate) fn record(&mut self, docs: Vec<Document>) {
        if docs.is_empty() {
            return;
        }
        let max_ts = docs.iter().map(|d| d.timestamp().raw()).max().unwrap_or(0);
        self.entries.push_back(ReplayEntry { docs, max_ts });
    }

    /// Drop entries whose newest document has aged beyond `bound` relative
    /// to the stream watermark `newest`. A `None` bound (some window is
    /// unbounded and no cap is configured) retains everything, mirroring
    /// document retention in the engine itself. Batches are retired whole:
    /// an entry whose newest document is still in-window is kept even if
    /// older documents in it are not — replay re-runs the engine's own
    /// eviction, so over-retention cannot change the rebuilt state.
    pub(crate) fn evict(&mut self, newest: u64, bound: Option<u64>) {
        let Some(bound) = bound else { return };
        let cutoff = newest.saturating_sub(bound);
        while let Some(front) = self.entries.front() {
            if front.max_ts >= cutoff {
                break;
            }
            self.entries.pop_front();
        }
    }

    /// Number of retained batches.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log retains no batches.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total documents across all retained batches.
    pub fn total_docs(&self) -> usize {
        self.entries.iter().map(|e| e.docs.len()).sum()
    }

    /// Newest timestamp of the oldest retained batch, if any — used by the
    /// audit to check the log stays within its retention bound.
    pub(crate) fn oldest_entry_max_ts(&self) -> Option<u64> {
        self.entries.front().map(|e| e.max_ts)
    }

    /// The retained batches, oldest first.
    pub(crate) fn batches(&self) -> impl Iterator<Item = &[Document]> {
        self.entries.iter().map(|e| e.docs.as_slice())
    }
}

/// How far back replayable documents must be retained for the given live
/// queries: the maximum time window, tightened (or, when every finite bound
/// is unavailable, replaced) by `doc_retention_cap`. `None` — retain forever
/// — only when some window is unbounded (`Infinite` or `Count`, which time
/// cannot bound) *and* no cap is configured. Single-block subscriptions
/// carry no join window and contribute nothing. Mirrors
/// `MmqjpEngine::doc_retention_bound` so the log never evicts what a shard
/// might still need.
pub(crate) fn retention_bound<'a>(
    queries: impl Iterator<Item = &'a XsclQuery>,
    cap: Option<u64>,
) -> Option<u64> {
    let mut max_window: Option<u64> = Some(0);
    for query in queries {
        match query.window() {
            Some(Window::Time(t)) => {
                if let Some(m) = max_window.as_mut() {
                    *m = (*m).max(t);
                }
            }
            Some(Window::Infinite | Window::Count(_)) => max_window = None,
            None => {}
        }
    }
    match (max_window, cap) {
        (Some(w), Some(c)) => Some(w.min(c)),
        (Some(w), None) => Some(w),
        (None, cap) => cap,
    }
}

/// Rebuild a dead shard's engine from first principles: fresh engine on the
/// shared interner, surviving subscriptions re-registered in ascending
/// global-id order at their original floors, then the retained document
/// stream replayed through Stage 1 + maintenance. Returns the rebuilt
/// engine, the local [`QueryId`](mmqjp_xscl::QueryId)s' global counterparts
/// in registration order, and the number of witness rows replayed.
pub(crate) fn rebuild_shard_engine(
    config: &EngineConfig,
    interner: &Arc<StringInterner>,
    queries: &[(u64, RetainedQuery)],
    log: &ReplayLog,
    ingested: u64,
    newest: u64,
) -> CoreResult<(MmqjpEngine, Vec<u64>, usize)> {
    let mut engine = MmqjpEngine::with_interner(config.clone(), Arc::clone(interner));
    let mut globals = Vec::with_capacity(queries.len());
    for (global, retained) in queries {
        engine.register_query_at_floor(retained.query.clone(), retained.floor)?;
        globals.push(*global);
    }
    let mut rows = 0usize;
    for batch in log.batches() {
        rows += engine.replay_batch(batch)?;
    }
    engine.restore_watermarks(ingested, newest);
    Ok((engine, globals, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmqjp_xml::parse_document;
    use mmqjp_xml::{DocId, Timestamp};

    fn doc(id: u64, ts: u64) -> Document {
        let mut d = parse_document("<a><b>x</b></a>").expect("valid doc");
        d.set_id(DocId(id));
        d.set_timestamp(Timestamp(ts));
        d
    }

    #[test]
    fn log_records_and_evicts_by_entry_max_ts() {
        let mut log = ReplayLog::default();
        log.record(vec![]);
        assert!(log.is_empty());
        log.record(vec![doc(1, 10), doc(2, 20)]);
        log.record(vec![doc(3, 30)]);
        log.record(vec![doc(4, 45)]);
        assert_eq!(log.len(), 3);
        assert_eq!(log.total_docs(), 4);
        // Bound 20 at watermark 45: cutoff 25 retires only the first entry
        // (max_ts 20); the entry with max_ts 30 survives whole.
        log.evict(45, Some(20));
        assert_eq!(log.len(), 2);
        assert_eq!(log.oldest_entry_max_ts(), Some(30));
        // Unbounded retention keeps everything.
        log.evict(1_000_000, None);
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn retention_bound_mirrors_engine_policy() {
        use mmqjp_xscl::parse_query;
        let q_win = |w: &str| {
            parse_query(&format!(
                "S//book->x1[.//author->x2] FOLLOWED BY{{x2=x5, {w}}} \
                 S//blog->x4[.//author->x5]"
            ))
            .expect("valid query")
        };
        let a = q_win("100");
        let b = q_win("500");
        assert_eq!(retention_bound([&a, &b].into_iter(), None), Some(500));
        assert_eq!(retention_bound([&a, &b].into_iter(), Some(200)), Some(200));
        let inf = q_win("INF");
        assert_eq!(retention_bound([&a, &inf].into_iter(), None), None);
        assert_eq!(
            retention_bound([&a, &inf].into_iter(), Some(800)),
            Some(800)
        );
        let count = q_win("COUNT 10");
        assert_eq!(retention_bound([&a, &count].into_iter(), None), None);
        let single = parse_query("S//book->x1[.//author->x2]").expect("valid query");
        assert_eq!(retention_bound([&single].into_iter(), None), Some(0));
        assert_eq!(retention_bound([].into_iter(), None), Some(0));
    }
}
