//! # mmqjp-core
//!
//! **Massively Multi-Query Join Processing** (MMQJP): the core contribution
//! of Hong et al., *"Massively Multi-Query Join Processing in
//! Publish/Subscribe Systems"*, SIGMOD 2007, reproduced as an embeddable Rust
//! library.
//!
//! The engine accepts a large number of continuous XSCL queries — each an
//! inter-document join of two XPath query blocks under a `FOLLOWED BY` or
//! `JOIN` window operator — and processes a stream of XML documents against
//! all of them using the paper's two-stage architecture:
//!
//! 1. **Stage 1 (XPath Evaluator, `mmqjp-xpath`)** evaluates the tree-pattern
//!    components of all registered queries once per document and emits
//!    witnesses, stored in the binary witness relations `RbinW`, `RdocW`,
//!    `RdocTSW` (current document) and `Rbin`, `Rdoc`, `RdocTS` (join state).
//! 2. **Stage 2 (Join Processor, this crate)** evaluates all value-join
//!    components *per query template* rather than per query: queries with
//!    isomorphic reduced join graphs share one relational conjunctive query
//!    `CQ_T`, evaluated set-at-a-time over the witness relations and the
//!    template's `RT` relation (Algorithms 1–3 of the paper). The optional
//!    view-materialization mode (Algorithms 4–5) additionally shares the
//!    value-join probing work *across* templates through the `RL`/`RR`
//!    intermediates and a string-keyed view cache.
//!
//! A naive **Sequential** mode (one conjunctive query per registered query
//! per document) is provided as the paper's baseline.
//!
//! For multi-core operation, [`ShardedEngine`] hash-partitions the query
//! population across `N` independent engine shards on worker threads and
//! merges the per-shard matches into a deterministic, canonically-ordered
//! result — identical to a single engine's output for every shard count and
//! inner mode. Two topologies are available: the replicated topology sends
//! every document batch to every shard (each shard re-runs Stage 1), while
//! the hybrid topology (`EngineConfig::front_pool >= 1`) parses and
//! pattern-matches each document exactly once in a document-parallel front
//! stage and routes only the witness rows ([`RoutedBatch`]) to the shards
//! that subscribed to them, pipelining Stage 1 of batch `k+1` with Stage 2
//! of batch `k`.
//!
//! # Quick start
//!
//! ```
//! use mmqjp_core::{EngineConfig, MmqjpEngine, ProcessingMode};
//! use mmqjp_xml::rss;
//!
//! let mut engine = MmqjpEngine::new(EngineConfig::default());
//!
//! // Q1 from the paper: a book announcement followed by a blog article by
//! // one of its authors with the same title.
//! let q1 = "S//book->x1[.//author->x2][.//title->x3] \
//!           FOLLOWED BY{x2=x5 AND x3=x6, 100} \
//!           S//blog->x4[.//author->x5][.//title->x6]";
//! engine.register_query_text(q1).unwrap();
//!
//! let d1 = rss::book_announcement(
//!     &["Danny Ayers", "Andrew Watt"],
//!     "Beginning RSS and Atom Programming",
//!     &["Scripting & Programming", "Web Site Development"],
//!     "Wrox", "0764579169");
//! let d2 = rss::blog_article(
//!     "Danny Ayers", "http://dannyayers.com/",
//!     "Beginning RSS and Atom Programming", "Book Announcement", "Just heard ...");
//!
//! assert!(engine.process_document(d1).unwrap().is_empty());
//! let matches = engine.process_document(d2).unwrap();
//! assert_eq!(matches.len(), 1);
//! assert_eq!(engine.stats().results_emitted, 1);
//! # let _ = ProcessingMode::Mmqjp;
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Hot paths return typed errors instead of panicking; the unit tests are
// free to unwrap.
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod audit;
mod config;
mod cqt;
mod engine;
mod error;
mod fault;
mod output;
mod recovery;
mod registry;
mod relations;
mod shard;
mod state;
mod stats;
mod view_cache;

pub use audit::AuditViolation;
pub use config::{EngineConfig, FaultPolicy, ProcessingMode};
pub use engine::MmqjpEngine;
pub use error::{CoreError, CoreResult};
pub use fault::{corrupt_bytes, FaultInjector, FaultKind, FaultPlan, QuarantineRecord};
pub use output::{sort_matches, Binding, MatchOutput};
pub use recovery::ReplayLog;
pub use registry::{QueryRuntime, Registry, TemplateRuntime};
pub use relations::{schemas, RoutedBatch, WitnessBatch};
pub use shard::{ShardedEngine, WitnessRouter};
pub use stats::{EngineStats, PhaseTimings};
pub use view_cache::{ViewCache, ViewCacheStats};

// Re-export the identifiers users interact with.
pub use mmqjp_xscl::{QueryId, TemplateId};
