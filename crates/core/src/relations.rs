//! Witness relations (Section 3.1 of the paper).
//!
//! The Stage-1 output for the current document (or document batch) is encoded
//! in three relations, and the accumulated join state in three more:
//!
//! | relation  | schema                                          | contents |
//! |-----------|--------------------------------------------------|----------|
//! | `RbinW`   | (docid, var1, var2, node1, node2)                | variable-pair bindings of the current document(s) |
//! | `RdocW`   | (docid, node, strVal)                            | string values of bound nodes of the current document(s) |
//! | `RdocTSW` | (docid, timestamp)                               | id + timestamp of the current document(s) |
//! | `Rbin`    | (docid, var1, var2, node1, node2)                | bindings of previous documents |
//! | `Rdoc`    | (docid, node, strVal)                            | string values from previous documents |
//! | `RdocTS`  | (docid, timestamp)                               | ids + timestamps of previous documents |
//!
//! Compared with the paper we add a `docid` column to the `*W` relations so
//! the same code path handles both single-document processing and the batched
//! processing the paper uses for its RSS throughput experiment (Section 6.3).
//!
//! Variable names and node string values are interned; node ids, document ids
//! and timestamps are integers.

use crate::error::{CoreError, CoreResult};
use mmqjp_relational::{Relation, RowRef, StringInterner, Symbol, Value};
use mmqjp_xml::{DocId, Document, NodeId, Timestamp};
use mmqjp_xpath::{binding_string_value, EdgeBinding, TreePattern};
use std::collections::HashSet;
use std::sync::Arc;

/// Schema constructors for the witness relations.
pub mod schemas {
    use mmqjp_relational::Schema;

    /// Schema of `RbinW` and `Rbin`: `(docid, var1, var2, node1, node2)`.
    pub fn bin() -> Schema {
        Schema::new(["docid", "var1", "var2", "node1", "node2"])
    }

    /// Schema of `RdocW` and `Rdoc`: `(docid, node, strVal)`.
    pub fn doc() -> Schema {
        Schema::new(["docid", "node", "strVal"])
    }

    /// Schema of `RdocTSW` and `RdocTS`: `(docid, timestamp)`.
    pub fn doc_ts() -> Schema {
        Schema::new(["docid", "timestamp"])
    }

    /// Schema of `RL`: `(docid, var1, var2, node1, node2, strVal)`.
    pub fn rl() -> Schema {
        Schema::new(["docid", "var1", "var2", "node1", "node2", "strVal"])
    }

    /// Schema of `RR`: `(docidW, var1, var2, node1, node2, strVal)`.
    pub fn rr() -> Schema {
        Schema::new(["docidW", "var1", "var2", "node1", "node2", "strVal"])
    }

    /// Schema of a template's `RT` relation with `m` meta-variables:
    /// `(qid, var1, ..., varm, wl)`.
    pub fn rt(meta_vars: usize) -> Schema {
        let mut cols = vec!["qid".to_owned()];
        for i in 0..meta_vars {
            cols.push(format!("var{}", i + 1));
        }
        cols.push("wl".to_owned());
        Schema::new(cols)
    }
}

/// Build one `RL`/`RR` row: an `Rbin`-shaped row extended with the join
/// string value.
pub(crate) fn rl_row(bin_row: RowRef<'_>, strval: Symbol) -> Vec<Value> {
    let mut row = Vec::with_capacity(bin_row.len() + 1);
    row.extend(bin_row.iter().cloned());
    row.push(Value::Sym(strval));
    row
}

/// The Stage-1 output for the current document or batch: the three `*W`
/// relations, ready to be joined against the engine's state.
#[derive(Debug, Clone)]
pub struct WitnessBatch {
    /// `RbinW(docid, var1, var2, node1, node2)`.
    pub rbin_w: Relation,
    /// `RdocW(docid, node, strVal)`.
    pub rdoc_w: Relation,
    /// `RdocTSW(docid, timestamp)`.
    pub rdoc_ts_w: Relation,
    /// Document ids contained in this batch, in arrival order.
    pub doc_ids: Vec<DocId>,
}

impl WitnessBatch {
    /// An empty batch.
    pub fn new() -> Self {
        WitnessBatch {
            rbin_w: Relation::new(schemas::bin()),
            rdoc_w: Relation::new(schemas::doc()),
            rdoc_ts_w: Relation::new(schemas::doc_ts()),
            doc_ids: Vec::new(),
        }
    }

    /// `true` when no document has been added.
    pub fn is_empty(&self) -> bool {
        self.doc_ids.is_empty()
    }

    /// Number of documents in the batch.
    pub fn num_documents(&self) -> usize {
        self.doc_ids.len()
    }

    /// Add one document's edge bindings to the batch.
    ///
    /// `bindings` is the Stage-1 output: for each matched (distinct) pattern,
    /// the edge bindings requested by the Join Processor. String values are
    /// interned through `interner`.
    pub fn add_document(
        &mut self,
        doc: &Document,
        bindings: &[(&TreePattern, Vec<EdgeBinding>)],
        interner: &Arc<StringInterner>,
    ) -> CoreResult<()> {
        let docid = Value::Int(doc.id().raw() as i64);
        self.doc_ids.push(doc.id());
        self.rdoc_ts_w.push_values(vec![
            docid.clone(),
            Value::Int(doc.timestamp().raw() as i64),
        ])?;

        // Track which (node) string values we already emitted for this doc so
        // RdocW stays duplicate-free, and which variable-pair bindings we
        // already emitted so RbinW stays duplicate-free (distinct patterns of
        // different queries frequently share canonical variables, and
        // duplicate witness tuples would multiply in the join processor).
        let mut emitted: HashSet<NodeId> = HashSet::new();
        let mut emitted_bins: HashSet<(u32, u32, u32, u32)> = HashSet::new();
        for (pattern, edge_bindings) in bindings {
            for b in edge_bindings {
                let var1 = interner.intern(&b.ancestor_var);
                let var2 = interner.intern(&b.descendant_var);
                if !emitted_bins.insert((
                    var1.raw(),
                    var2.raw(),
                    b.ancestor.raw(),
                    b.descendant.raw(),
                )) {
                    continue;
                }
                self.rbin_w.push_values(vec![
                    docid.clone(),
                    Value::Sym(var1),
                    Value::Sym(var2),
                    Value::Int(b.ancestor.raw() as i64),
                    Value::Int(b.descendant.raw() as i64),
                ])?;
                // The descendant endpoint is the one whose string value
                // participates in value joins (value joins attach to the
                // child position of structural edges; self-edges cover
                // single-node sides).
                if emitted.insert(b.descendant) {
                    let pattern_node = pattern.variable_node(&b.descendant_var).map_err(|_| {
                        CoreError::internal("edge binding variable exists in its pattern")
                    })?;
                    let sval = binding_string_value(doc, pattern, pattern_node, b.descendant);
                    let sym = interner.intern(&sval);
                    self.rdoc_w.push_values(vec![
                        docid.clone(),
                        Value::Int(b.descendant.raw() as i64),
                        Value::Sym(sym),
                    ])?;
                }
            }
        }
        Ok(())
    }

    /// Number of witness rows (`RbinW` + `RdocW`) in the batch. The
    /// retention-ledger rows (`RdocTSW`) are bookkeeping, not witnesses, so
    /// they are not counted.
    pub fn num_witness_rows(&self) -> usize {
        self.rbin_w.len() + self.rdoc_w.len()
    }

    /// Timestamp of a document in the batch.
    pub fn timestamp_of(&self, doc: DocId) -> Option<Timestamp> {
        let key = Value::Int(doc.raw() as i64);
        self.rdoc_ts_w
            .iter()
            .find(|t| t[0] == key)
            .and_then(|t| t[1].as_int())
            .map(|v| Timestamp(v as u64))
    }
}

impl Default for WitnessBatch {
    fn default() -> Self {
        WitnessBatch::new()
    }
}

/// A witness batch routed to one query shard by the hybrid
/// [`ShardedEngine`](crate::ShardedEngine) front stage, together with the
/// batch metadata the shard needs to run Stage 2 without re-parsing the
/// documents.
///
/// The witness rows in [`batch`](Self::batch) are the shard's
/// subscription-filtered subset of the front stage's Stage-1 output; the
/// ledger rows (`RdocTSW`) cover *every* document of the batch, because each
/// shard tracks all document timestamps for temporal filtering. Consumed by
/// [`MmqjpEngine::process_witness_batch`](crate::MmqjpEngine::process_witness_batch).
#[derive(Debug, Clone, Default)]
pub struct RoutedBatch {
    /// The routed witness rows.
    pub batch: WitnessBatch,
    /// `(document id, timestamp)` of every document of the batch, in
    /// arrival order. Ids and timestamps were assigned by the front stage.
    pub doc_meta: Vec<(DocId, u64)>,
    /// The full documents, shipped only when the shard retains documents
    /// (`EngineConfig::retain_documents`) for `SELECT *` output
    /// construction; empty otherwise.
    pub docs: Vec<Document>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmqjp_xml::rss;
    use mmqjp_xpath::{parse_pattern, PatternMatcher};

    fn interner() -> Arc<StringInterner> {
        Arc::new(StringInterner::new())
    }

    fn d1() -> Document {
        rss::book_announcement(
            &["Danny Ayers", "Andrew Watt"],
            "Beginning RSS and Atom Programming",
            &["Scripting & Programming", "Web Site Development"],
            "Wrox",
            "0764579169",
        )
        .with_id(DocId(1))
        .with_timestamp(Timestamp(10))
    }

    #[test]
    fn schemas_have_expected_arity() {
        assert_eq!(schemas::bin().arity(), 5);
        assert_eq!(schemas::doc().arity(), 3);
        assert_eq!(schemas::doc_ts().arity(), 2);
        assert_eq!(schemas::rl().arity(), 6);
        assert_eq!(schemas::rr().arity(), 6);
        assert_eq!(schemas::rt(6).arity(), 8);
        assert!(schemas::rt(3).contains("var3"));
        assert!(schemas::rt(3).contains("wl"));
    }

    #[test]
    fn batch_from_book_document_matches_table4() {
        // Using Q1's left block (plus category for Q2), the batch built from
        // d1 should mirror Table 4(b)/(c) of the paper: five bound leaves
        // with their string values and five variable-pair bindings.
        let mut pattern =
            parse_pattern("S//book->x1[.//author->x2][.//title->x3][.//category->x7]").unwrap();
        pattern.assign_canonical_variables();
        let matcher = PatternMatcher::new(&pattern);
        let doc = d1();
        let bindings = matcher.all_edge_bindings(&doc);
        assert_eq!(bindings.len(), 5);

        let interner = interner();
        let mut batch = WitnessBatch::new();
        batch
            .add_document(&doc, &[(&pattern, bindings)], &interner)
            .unwrap();

        assert_eq!(batch.num_documents(), 1);
        assert!(!batch.is_empty());
        assert_eq!(batch.rbin_w.len(), 5);
        assert_eq!(batch.rdoc_w.len(), 5);
        assert_eq!(batch.rdoc_ts_w.len(), 1);
        assert_eq!(batch.timestamp_of(DocId(1)), Some(Timestamp(10)));
        assert_eq!(batch.timestamp_of(DocId(9)), None);

        // All string values were interned; Danny Ayers appears among them.
        assert!(interner.get("Danny Ayers").is_some());
        assert!(interner.get("Wrox").is_none()); // publisher is not bound

        // Every RbinW tuple has the book root (node 0) as ancestor.
        for t in batch.rbin_w.iter() {
            assert_eq!(t[3], Value::Int(0));
        }
    }

    #[test]
    fn duplicate_string_values_are_not_repeated_per_node() {
        let mut pattern = parse_pattern("S//book->b[.//author->a]").unwrap();
        pattern.assign_canonical_variables();
        let matcher = PatternMatcher::new(&pattern);
        let doc = d1();
        // Request the same edge twice; RdocW must still contain one row per
        // bound node.
        let edges = vec![
            (
                pattern.variable_node("b").unwrap(),
                pattern.variable_node("a").unwrap(),
            ),
            (
                pattern.variable_node("b").unwrap(),
                pattern.variable_node("a").unwrap(),
            ),
        ];
        let bindings = matcher.edge_bindings(&doc, &edges);
        assert_eq!(bindings.len(), 4); // 2 authors x 2 requests
        let interner = interner();
        let mut batch = WitnessBatch::new();
        batch
            .add_document(&doc, &[(&pattern, bindings)], &interner)
            .unwrap();
        assert_eq!(batch.rdoc_w.len(), 2); // one row per author node

        // The duplicated edge request collapses to one RbinW row per author.
        assert_eq!(batch.rbin_w.len(), 2);
    }

    #[test]
    fn multi_document_batch() {
        let mut pattern = parse_pattern("S//book->b[.//title->t]").unwrap();
        pattern.assign_canonical_variables();
        let matcher = PatternMatcher::new(&pattern);
        let interner = interner();
        let mut batch = WitnessBatch::new();
        for i in 0..3u64 {
            let doc = d1().with_id(DocId(i)).with_timestamp(Timestamp(i * 10));
            let bindings = matcher.all_edge_bindings(&doc);
            batch
                .add_document(&doc, &[(&pattern, bindings)], &interner)
                .unwrap();
        }
        assert_eq!(batch.num_documents(), 3);
        assert_eq!(batch.rdoc_ts_w.len(), 3);
        assert_eq!(batch.rbin_w.len(), 3);
        assert_eq!(batch.doc_ids, vec![DocId(0), DocId(1), DocId(2)]);
    }

    #[test]
    fn empty_batch_defaults() {
        let batch = WitnessBatch::default();
        assert!(batch.is_empty());
        assert_eq!(batch.num_documents(), 0);
        assert_eq!(batch.rbin_w.len(), 0);
    }
}
