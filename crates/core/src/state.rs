//! Time-bucketed incremental join state.
//!
//! The engine's per-window join state (`Rbin`, `Rdoc`, the `RdocTS`
//! retention ledger, the document store and the secondary indexes backing
//! `RL`-slice computation) lives in a [`JoinState`]. Rows are partitioned
//! into coarse timestamp buckets (`timestamp / bucket_width`) held in
//! [`SegmentedRelation`]s, and the secondary indexes are *per-bucket*
//! segments addressing rows by their stable in-bucket offset.
//!
//! Window expiry therefore never rebuilds anything: an expired bucket is
//! dropped whole — rows, index segment and all — in time proportional to the
//! rows it holds, and the handles of every surviving row stay valid. This
//! replaces the seed implementation's retain-and-rebuild pruning (O(total
//! state) per batch, with a full view-cache clear) and is what keeps
//! steady-state throughput flat over unbounded streams.
//!
//! Bucket width is a pure granularity knob: expired rows may survive up to
//! one extra bucket, but the temporal filter of Algorithm 3 re-checks every
//! window, so results are bit-identical for any width.

use crate::audit::AuditViolation;
use crate::error::{CoreError, CoreResult};
use crate::relations::{rl_row, schemas, WitnessBatch};
use mmqjp_relational::{
    BucketId, FxHashMap, Relation, RowRef, SegmentedRelation, Symbol, Tuple, Value,
};
use mmqjp_xml::{DocId, Document};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Bucket width used when no window and no retention cap is known (nothing
/// can expire then, so the width only shapes the ledger's segmentation).
const DEFAULT_BUCKET_WIDTH: u64 = 1024;

/// Number of buckets a retention span is divided into when the width is
/// derived from the registered windows.
pub(crate) const BUCKETS_PER_WINDOW: u64 = 16;

/// Extract an integer index key from a state/witness row value, erroring
/// (and asserting in debug builds) instead of collapsing malformed rows onto
/// a sentinel key. Takes the already-indexed [`Value`] so both owned tuples
/// and borrowed [`RowRef`]s feed it the same way.
pub(crate) fn key_int(v: &Value, relation: &'static str, column: &'static str) -> CoreResult<i64> {
    match v.as_int() {
        Some(i) => Ok(i),
        None => {
            debug_assert!(false, "non-integer index key {relation}.{column}: {v:?}");
            Err(CoreError::CorruptStateRow {
                relation,
                column,
                value: format!("{v:?}"),
            })
        }
    }
}

/// Extract an interned-symbol index key from a state/witness row value.
pub(crate) fn key_sym(
    v: &Value,
    relation: &'static str,
    column: &'static str,
) -> CoreResult<Symbol> {
    match v.as_sym() {
        Some(s) => Ok(s),
        None => {
            debug_assert!(false, "non-symbol index key {relation}.{column}: {v:?}");
            Err(CoreError::CorruptStateRow {
                relation,
                column,
                value: format!("{v:?}"),
            })
        }
    }
}

/// Extract a document id from a state/witness row value. Document ids are
/// `u64` end-to-end ([`DocId`]); rows store them as non-negative
/// `Value::Int`s, and a negative value is corruption, not a key.
pub(crate) fn key_doc_id(
    v: &Value,
    relation: &'static str,
    column: &'static str,
) -> CoreResult<DocId> {
    let raw = key_int(v, relation, column)?;
    match u64::try_from(raw) {
        Ok(v) => Ok(DocId(v)),
        Err(_) => {
            debug_assert!(false, "negative document id in {relation}.{column}: {raw}");
            Err(CoreError::CorruptStateRow {
                relation,
                column,
                value: raw.to_string(),
            })
        }
    }
}

/// The newest timestamp a bucket of the given width can contain.
fn latest_ts_of_bucket(bucket: BucketId, width: u64) -> u64 {
    bucket
        .saturating_add(1)
        .saturating_mul(width)
        .saturating_sub(1)
}

/// Timestamp of a retention-ledger row (`RdocTS(docid, timestamp)`), from
/// its `timestamp` value.
fn ledger_ts(v: &Value) -> CoreResult<u64> {
    u64::try_from(key_int(v, "RdocTS", "timestamp")?).map_err(|_| CoreError::CorruptStateRow {
        relation: "RdocTS",
        column: "timestamp",
        value: format!("{v:?}"),
    })
}

/// Per-bucket secondary indexes over one timestamp bucket of the join state.
/// Offsets address rows *within the bucket's segment*, so they stay valid for
/// the bucket's whole lifetime and are dropped with it.
#[derive(Debug, Default, Clone)]
struct BucketIndex {
    /// `Rdoc` rows by string value: offsets into the bucket's `Rdoc` segment.
    rdoc_by_strval: FxHashMap<Symbol, Vec<u32>>,
    /// `Rbin` rows by `(docid, node2)`: offsets into the bucket's `Rbin`
    /// segment. A document's `Rdoc` and `Rbin` rows share its timestamp and
    /// therefore its bucket, so probes never cross buckets.
    rbin_by_docnode: FxHashMap<(i64, i64), Vec<u32>>,
}

/// Summary of one join-state eviction pass.
#[derive(Debug, Default)]
pub(crate) struct JoinEviction {
    /// Buckets dropped.
    pub buckets: usize,
    /// `Rbin` + `Rdoc` rows dropped.
    pub rows: usize,
    /// String values whose rows were (partly) dropped; the view cache
    /// invalidates exactly these slices.
    pub expired_strvals: HashSet<Symbol>,
}

/// The engine's windowed join state: bucketed relations, per-bucket indexes,
/// and the document-retention maps, with O(expired-rows) eviction.
#[derive(Debug)]
pub(crate) struct JoinState {
    /// `true` when join-state rows are partitioned by timestamp bucket
    /// (window pruning enabled); `false` collapses them into one bucket so
    /// the no-pruning configuration pays no per-bucket overhead.
    bucketed: bool,
    /// Set lazily before the first absorb (see [`JoinState::ensure_width`]).
    bucket_width: Option<u64>,
    /// `false` while the width is the fallback default (no finite window or
    /// cap was known yet); such a width is revised — with a one-time
    /// re-partition — when the first real retention bound appears.
    width_final: bool,
    /// Join state `Rbin(docid, var1, var2, node1, node2)`.
    rbin: SegmentedRelation,
    /// Join state `Rdoc(docid, node, strVal)`.
    rdoc: SegmentedRelation,
    /// Retention ledger `RdocTS(docid, timestamp)` — one row per processed
    /// document, always time-bucketed (document eviction works even when
    /// join-state pruning is off).
    ledger: SegmentedRelation,
    /// Per-bucket secondary indexes over `rbin` / `rdoc`.
    indexes: BTreeMap<BucketId, BucketIndex>,
    /// Resident `Rdoc` row count per string value, across all buckets —
    /// keeps [`JoinState::contains_strval`] O(1) on the per-document `STR`
    /// path instead of probing every bucket's index.
    strval_rows: FxHashMap<Symbol, usize>,
    /// Timestamps of retained documents (temporal filter of Algorithm 3).
    doc_timestamps: HashMap<DocId, u64>,
    /// Retained documents for output construction.
    doc_store: HashMap<DocId, Document>,
}

impl JoinState {
    /// Create an empty state. `bucketed` selects timestamp bucketing for the
    /// join relations (on when the engine prunes by window).
    pub fn new(bucketed: bool) -> Self {
        JoinState {
            bucketed,
            bucket_width: None,
            width_final: false,
            rbin: SegmentedRelation::new(schemas::bin()),
            rdoc: SegmentedRelation::new(schemas::doc()),
            ledger: SegmentedRelation::new(schemas::doc_ts()),
            indexes: BTreeMap::new(),
            strval_rows: FxHashMap::default(),
            doc_timestamps: HashMap::new(),
            doc_store: HashMap::new(),
        }
    }

    /// The current bucket width, once set (test observability).
    #[cfg(test)]
    pub fn bucket_width(&self) -> Option<u64> {
        self.bucket_width
    }

    /// Fix — or, while still provisional, revise — the bucket width.
    ///
    /// `derived` is the width derived from the currently known retention
    /// bound (`None` while no finite window or cap is registered). Without a
    /// bound a provisional fallback width is used; once a real bound appears
    /// — typically because windowed queries were registered after documents
    /// had already been processed — the width is revised and every resident
    /// row re-partitioned (a one-time O(resident state) pass), so eviction
    /// granularity always ends up matching the registered windows.
    pub fn ensure_width(&mut self, derived: Option<u64>) -> CoreResult<()> {
        match (self.bucket_width, derived) {
            (None, Some(w)) => {
                self.bucket_width = Some(w.max(1));
                self.width_final = true;
            }
            (None, None) => self.bucket_width = Some(DEFAULT_BUCKET_WIDTH),
            (Some(current), Some(w)) if !self.width_final => {
                self.width_final = true;
                if current != w.max(1) {
                    self.rebucket(w.max(1))?;
                }
            }
            _ => {}
        }
        Ok(())
    }

    /// Derive a bucket width from a retention bound.
    pub fn derive_width(bound: u64) -> u64 {
        (bound / BUCKETS_PER_WINDOW).max(1)
    }

    /// Tighten the bucket width after the registered retention bound shrank
    /// (the widest-window query unregistered). Without this, eviction would
    /// keep operating at the old, coarse granularity and resident state
    /// could outlive the new bound by up to one old-width bucket.
    ///
    /// The retention ledger is re-partitioned exactly (its rows carry their
    /// own timestamps). The join-state buckets are re-partitioned by
    /// document timestamp where the document is still retained; rows whose
    /// document already aged out of the retention maps land in the *latest*
    /// bucket their old bucket could span, so they are never evicted earlier
    /// than their true timestamp allows (results stay identical — the
    /// temporal filter re-checks every window anyway). One-time O(resident
    /// state); a no-op when the width would grow or is not yet set.
    pub fn tighten_width(&mut self, new_width: u64) -> CoreResult<()> {
        let new_width = new_width.max(1);
        let Some(current) = self.bucket_width else {
            return Ok(());
        };
        if new_width >= current {
            return Ok(());
        }
        self.bucket_width = Some(new_width);
        self.width_final = true;
        let old_ledger =
            std::mem::replace(&mut self.ledger, SegmentedRelation::new(schemas::doc_ts()));
        for row in old_ledger.iter() {
            let ts = ledger_ts(&row[1])?;
            self.insert_ledger_row(row.to_vec(), ts)?;
        }
        if self.bucketed {
            let old_rdoc =
                std::mem::replace(&mut self.rdoc, SegmentedRelation::new(schemas::doc()));
            let old_rbin =
                std::mem::replace(&mut self.rbin, SegmentedRelation::new(schemas::bin()));
            self.indexes.clear();
            self.strval_rows.clear();
            for (bucket, seg) in old_rdoc.buckets() {
                let fallback = latest_ts_of_bucket(bucket, current);
                for row in seg.iter() {
                    let ts = self.known_doc_ts(row).unwrap_or(fallback);
                    self.insert_rdoc_row(row.to_vec(), ts)?;
                }
            }
            for (bucket, seg) in old_rbin.buckets() {
                let fallback = latest_ts_of_bucket(bucket, current);
                for row in seg.iter() {
                    let ts = self.known_doc_ts(row).unwrap_or(fallback);
                    self.insert_rbin_row(row.to_vec(), ts)?;
                }
            }
        }
        Ok(())
    }

    /// Timestamp of a state row's document, when it is still retained.
    fn known_doc_ts(&self, row: RowRef<'_>) -> Option<u64> {
        let doc = row[0].as_int().and_then(|v| u64::try_from(v).ok())?;
        self.doc_timestamp(DocId(doc))
    }

    /// Re-partition every resident row under a new bucket width (only used
    /// while the width is provisional, i.e. before any eviction was
    /// possible, so `doc_timestamps` still covers every resident document).
    fn rebucket(&mut self, width: u64) -> CoreResult<()> {
        self.bucket_width = Some(width);
        let old_rdoc = std::mem::replace(&mut self.rdoc, SegmentedRelation::new(schemas::doc()));
        let old_rbin = std::mem::replace(&mut self.rbin, SegmentedRelation::new(schemas::bin()));
        let old_ledger =
            std::mem::replace(&mut self.ledger, SegmentedRelation::new(schemas::doc_ts()));
        self.indexes.clear();
        self.strval_rows.clear();
        for row in old_rdoc.iter() {
            let ts = self.resident_doc_ts(row, "Rdoc")?;
            self.insert_rdoc_row(row.to_vec(), ts)?;
        }
        for row in old_rbin.iter() {
            let ts = self.resident_doc_ts(row, "Rbin")?;
            self.insert_rbin_row(row.to_vec(), ts)?;
        }
        for row in old_ledger.iter() {
            let ts = ledger_ts(&row[1])?;
            self.insert_ledger_row(row.to_vec(), ts)?;
        }
        Ok(())
    }

    /// Timestamp of the resident document a state row belongs to.
    fn resident_doc_ts(&self, row: RowRef<'_>, relation: &'static str) -> CoreResult<u64> {
        let doc = key_doc_id(&row[0], relation, "docid")?;
        self.doc_timestamp(doc)
            .ok_or_else(|| CoreError::CorruptStateRow {
                relation,
                column: "docid",
                value: format!("{} (no retained timestamp)", doc.raw()),
            })
    }

    fn width(&self) -> u64 {
        // lint:allow ensure_width runs before every absorb/evict path; a
        // fallback of the provisional default keeps this total regardless
        self.bucket_width.unwrap_or(DEFAULT_BUCKET_WIDTH)
    }

    fn join_bucket(&self, ts: u64) -> BucketId {
        if self.bucketed {
            ts / self.width()
        } else {
            0
        }
    }

    /// Number of `Rbin` tuples.
    pub fn rbin_len(&self) -> usize {
        self.rbin.len()
    }

    /// Number of `Rdoc` tuples.
    pub fn rdoc_len(&self) -> usize {
        self.rdoc.len()
    }

    /// Number of resident join-state buckets.
    pub fn num_buckets(&self) -> usize {
        self.indexes.len()
    }

    /// Number of documents currently retained (timestamps; the document
    /// store holds at most this many).
    pub fn docs_retained(&self) -> usize {
        self.doc_timestamps.len()
    }

    /// Timestamp of a retained document.
    pub fn doc_timestamp(&self, doc: DocId) -> Option<u64> {
        self.doc_timestamps.get(&doc).copied()
    }

    /// A retained document, if still in the store.
    pub fn document(&self, doc: DocId) -> Option<&Document> {
        self.doc_store.get(&doc)
    }

    /// Absorb a processed batch into the state (Algorithm 2): move the
    /// witness rows whole into their timestamp buckets — the batch is
    /// consumed, so no per-value copies happen — maintain the per-bucket
    /// indexes and the retention ledger, and retain documents when asked to.
    #[cfg(test)]
    pub fn absorb(
        &mut self,
        batch: WitnessBatch,
        docs: &[Document],
        retain_documents: bool,
    ) -> CoreResult<()> {
        let meta: Vec<(DocId, u64)> = docs
            .iter()
            .map(|doc| (doc.id(), doc.timestamp().raw()))
            .collect();
        self.absorb_routed(batch, &meta, docs, retain_documents)
    }

    /// [`absorb`](Self::absorb) for a witness batch routed by the hybrid
    /// front stage, where the shard may not hold the documents themselves:
    /// the `(doc id, timestamp)` pairs come in as explicit metadata, and
    /// `docs` carries the full documents only when `retain_documents` is on
    /// (it may be empty otherwise).
    pub fn absorb_routed(
        &mut self,
        batch: WitnessBatch,
        meta: &[(DocId, u64)],
        docs: &[Document],
        retain_documents: bool,
    ) -> CoreResult<()> {
        let mut ts_of: HashMap<i64, u64> = HashMap::with_capacity(meta.len());
        for &(doc, ts) in meta {
            ts_of.insert(doc.raw() as i64, ts);
        }
        let doc_ts = |docid: i64, relation: &'static str| -> CoreResult<u64> {
            ts_of
                .get(&docid)
                .copied()
                .ok_or_else(|| CoreError::CorruptStateRow {
                    relation,
                    column: "docid",
                    value: format!("{docid} (not in the current batch)"),
                })
        };

        let WitnessBatch {
            rbin_w,
            rdoc_w,
            rdoc_ts_w,
            ..
        } = batch;
        for row in rdoc_w.into_rows() {
            let docid = key_int(&row[0], "RdocW", "docid")?;
            let ts = doc_ts(docid, "RdocW")?;
            self.insert_rdoc_row(row, ts)?;
        }
        for row in rbin_w.into_rows() {
            let docid = key_int(&row[0], "RbinW", "docid")?;
            let ts = doc_ts(docid, "RbinW")?;
            self.insert_rbin_row(row, ts)?;
        }
        for row in rdoc_ts_w.into_rows() {
            let doc = key_doc_id(&row[0], "RdocTSW", "docid")?;
            let ts = ledger_ts(&row[1])?;
            self.insert_ledger_row(row, ts)?;
            self.doc_timestamps.insert(doc, ts);
        }
        if retain_documents {
            for doc in docs {
                self.doc_store.insert(doc.id(), doc.clone());
            }
        }
        Ok(())
    }

    /// Insert one `Rdoc` row into its bucket, maintaining the per-bucket
    /// index and the global string-value row count.
    fn insert_rdoc_row(&mut self, row: Tuple, ts: u64) -> CoreResult<()> {
        let sym = key_sym(&row[2], "Rdoc", "strVal")?;
        let bucket = self.join_bucket(ts);
        let handle = self.rdoc.push(bucket, row)?;
        self.indexes
            .entry(bucket)
            .or_default()
            .rdoc_by_strval
            .entry(sym)
            .or_default()
            .push(handle.offset);
        *self.strval_rows.entry(sym).or_insert(0) += 1;
        Ok(())
    }

    /// Insert one `Rbin` row into its bucket, maintaining the per-bucket
    /// index.
    fn insert_rbin_row(&mut self, row: Tuple, ts: u64) -> CoreResult<()> {
        let docid = key_int(&row[0], "Rbin", "docid")?;
        let node2 = key_int(&row[4], "Rbin", "node2")?;
        let bucket = self.join_bucket(ts);
        let handle = self.rbin.push(bucket, row)?;
        self.indexes
            .entry(bucket)
            .or_default()
            .rbin_by_docnode
            .entry((docid, node2))
            .or_default()
            .push(handle.offset);
        Ok(())
    }

    /// Insert one retention-ledger row (always time-bucketed).
    fn insert_ledger_row(&mut self, row: Tuple, ts: u64) -> CoreResult<()> {
        let bucket = ts / self.width();
        self.ledger.push(bucket, row)?;
        Ok(())
    }

    /// `true` when some resident `Rdoc` row carries this string value.
    pub fn contains_strval(&self, sym: Symbol) -> bool {
        self.strval_rows.contains_key(&sym)
    }

    /// Compute one `RL` slice:
    /// `σ_strVal=s(Rdoc) ⋈_{docid, node=node2} Rbin`, probing only the
    /// buckets whose index mentions `s`.
    pub fn rl_slice(&self, s: Symbol) -> CoreResult<Relation> {
        let mut slice = Relation::new(schemas::rl());
        for (&bucket, index) in &self.indexes {
            let Some(doc_rows) = index.rdoc_by_strval.get(&s) else {
                continue;
            };
            let rdoc_seg = self
                .rdoc
                .bucket(bucket)
                .ok_or(CoreError::internal("indexed bucket has an Rdoc segment"))?;
            for &off in doc_rows {
                let row = rdoc_seg.row(off as usize);
                let docid = key_int(&row[0], "Rdoc", "docid")?;
                let node = key_int(&row[1], "Rdoc", "node")?;
                let Some(bin_rows) = index.rbin_by_docnode.get(&(docid, node)) else {
                    continue;
                };
                let rbin_seg = self
                    .rbin
                    .bucket(bucket)
                    .ok_or(CoreError::internal("indexed bucket has an Rbin segment"))?;
                for &boff in bin_rows {
                    let b = rbin_seg.row(boff as usize);
                    slice.push_values(rl_row(b, s))?;
                }
            }
        }
        Ok(slice)
    }

    /// Restrict the resident `Rdoc` state to the rows whose string value
    /// occurs in `strvals`, gathered through the per-bucket
    /// `rdoc_by_strval` indexes: O(buckets × |strvals| + matching rows)
    /// instead of a full state scan. Rows come out in bucket order, then
    /// ascending in-bucket offset — a deterministic subsequence of the full
    /// iteration order. Also returns the document ids the restricted rows
    /// mention (they feed [`JoinState::rbin_for_docids`]).
    ///
    /// Soundness: in every basic-template conjunctive query, each `Rdoc`
    /// atom's `strVal` variable is shared with an `RdocW` atom of the same
    /// value-join edge, so `Rdoc` rows whose string value is absent from the
    /// current batch's `RdocW` cannot contribute to any result.
    pub(crate) fn rdoc_for_strvals(
        &self,
        strvals: &[Symbol],
    ) -> CoreResult<(Relation, HashSet<i64>)> {
        let mut out = Relation::new(schemas::doc());
        let mut docids: HashSet<i64> = HashSet::new();
        let mut offs: Vec<u32> = Vec::new();
        for (&bucket, index) in &self.indexes {
            offs.clear();
            for s in strvals {
                if let Some(rows) = index.rdoc_by_strval.get(s) {
                    offs.extend_from_slice(rows);
                }
            }
            if offs.is_empty() {
                continue;
            }
            // Each row is indexed under exactly one string value, so the
            // gathered offsets are distinct; sorting restores scan order.
            offs.sort_unstable();
            let seg = self
                .rdoc
                .bucket(bucket)
                .ok_or(CoreError::internal("indexed bucket has an Rdoc segment"))?;
            for &off in &offs {
                let row = seg.row(off as usize);
                docids.insert(key_int(&row[0], "Rdoc", "docid")?);
                out.push_values(row.to_vec())?;
            }
        }
        Ok((out, docids))
    }

    /// Restrict the resident `Rbin` state to the rows of the given
    /// documents, gathered through the per-bucket `rbin_by_docnode` indexes.
    /// Row order matches [`JoinState::rdoc_for_strvals`]: bucket order, then
    /// ascending in-bucket offset.
    ///
    /// Soundness: every left-side atom of a basic-template conjunctive query
    /// shares the single stored-document variable, so `Rbin` rows of
    /// documents absent from the restricted `Rdoc` cannot join into any
    /// result.
    pub(crate) fn rbin_for_docids(&self, docids: &HashSet<i64>) -> CoreResult<Relation> {
        let mut out = Relation::new(schemas::bin());
        let mut offs: Vec<u32> = Vec::new();
        for (&bucket, index) in &self.indexes {
            offs.clear();
            for (&(docid, _), rows) in &index.rbin_by_docnode {
                if docids.contains(&docid) {
                    offs.extend_from_slice(rows);
                }
            }
            if offs.is_empty() {
                continue;
            }
            offs.sort_unstable();
            let seg = self
                .rbin
                .bucket(bucket)
                .ok_or(CoreError::internal("indexed bucket has an Rbin segment"))?;
            for &off in &offs {
                out.push_values(seg.row(off as usize).to_vec())?;
            }
        }
        Ok(out)
    }

    /// The segmented `Rbin` join state. Plan execution borrows it directly
    /// (via [`ChunkedRows`](mmqjp_relational::ChunkedRows)); nothing moves.
    pub fn rbin(&self) -> &SegmentedRelation {
        &self.rbin
    }

    /// The segmented `Rdoc` join state, borrowed for plan execution.
    pub fn rdoc(&self) -> &SegmentedRelation {
        &self.rdoc
    }

    /// Drop every join-state bucket that lies entirely before `cutoff_ts`
    /// (all of its rows are older than the cutoff) along with its index
    /// segment. O(expired rows); surviving buckets are untouched.
    pub fn evict_join_state(&mut self, cutoff_ts: u64) -> JoinEviction {
        let cutoff_bucket = cutoff_ts / self.width();
        let mut out = JoinEviction::default();
        let keep = self.indexes.split_off(&cutoff_bucket);
        let dropped = std::mem::replace(&mut self.indexes, keep);
        if dropped.is_empty() {
            return out;
        }
        for index in dropped.values() {
            for (sym, rows) in &index.rdoc_by_strval {
                out.expired_strvals.insert(*sym);
                if let Some(count) = self.strval_rows.get_mut(sym) {
                    *count = count.saturating_sub(rows.len());
                    if *count == 0 {
                        self.strval_rows.remove(sym);
                    }
                }
            }
        }
        out.buckets = dropped.len();
        for (_, seg) in self.rdoc.evict_below(cutoff_bucket) {
            out.rows += seg.len();
        }
        for (_, seg) in self.rbin.evict_below(cutoff_bucket) {
            out.rows += seg.len();
        }
        out
    }

    /// Cross-check the join state's secondary structures against its
    /// segmented relations, appending one [`AuditViolation`] per
    /// inconsistency: index offsets in range, indexed keys matching the
    /// resident rows, full index coverage, the global string-value counters,
    /// document store ⊆ retention map, single-bucket discipline when
    /// unbucketed, and the watermark bounding every retained timestamp.
    /// Read-only. See [`MmqjpEngine::audit`](crate::MmqjpEngine::audit).
    pub fn audit(&self, newest_timestamp: u64, out: &mut Vec<AuditViolation>) {
        let mut rdoc_indexed = 0usize;
        let mut rbin_indexed = 0usize;
        let mut strval_indexed: FxHashMap<Symbol, usize> = FxHashMap::default();
        for (&bucket, index) in &self.indexes {
            match self.rdoc.bucket(bucket) {
                None => {
                    if !index.rdoc_by_strval.is_empty() {
                        out.push(AuditViolation::MissingBucketIndex {
                            relation: "Rdoc",
                            bucket,
                        });
                    }
                }
                Some(seg) => {
                    for (&sym, offs) in &index.rdoc_by_strval {
                        *strval_indexed.entry(sym).or_insert(0) += offs.len();
                        for &off in offs {
                            if off as usize >= seg.len() {
                                out.push(AuditViolation::IndexOffsetOutOfRange {
                                    relation: "Rdoc",
                                    bucket,
                                    offset: off,
                                    rows: seg.len(),
                                });
                                continue;
                            }
                            rdoc_indexed += 1;
                            if seg.row(off as usize)[2] != Value::Sym(sym) {
                                out.push(AuditViolation::IndexKeyMismatch {
                                    relation: "Rdoc",
                                    bucket,
                                    offset: off,
                                });
                            }
                        }
                    }
                }
            }
            match self.rbin.bucket(bucket) {
                None => {
                    if !index.rbin_by_docnode.is_empty() {
                        out.push(AuditViolation::MissingBucketIndex {
                            relation: "Rbin",
                            bucket,
                        });
                    }
                }
                Some(seg) => {
                    for (&(docid, node2), offs) in &index.rbin_by_docnode {
                        for &off in offs {
                            if off as usize >= seg.len() {
                                out.push(AuditViolation::IndexOffsetOutOfRange {
                                    relation: "Rbin",
                                    bucket,
                                    offset: off,
                                    rows: seg.len(),
                                });
                                continue;
                            }
                            rbin_indexed += 1;
                            let row = seg.row(off as usize);
                            if row[0].as_int() != Some(docid) || row[4].as_int() != Some(node2) {
                                out.push(AuditViolation::IndexKeyMismatch {
                                    relation: "Rbin",
                                    bucket,
                                    offset: off,
                                });
                            }
                        }
                    }
                }
            }
        }
        // Every non-empty segment bucket is covered by an index segment, and
        // the indexes address exactly the resident rows.
        for (bucket, seg) in self.rdoc.buckets() {
            if !seg.is_empty() && !self.indexes.contains_key(&bucket) {
                out.push(AuditViolation::MissingBucketIndex {
                    relation: "Rdoc",
                    bucket,
                });
            }
        }
        for (bucket, seg) in self.rbin.buckets() {
            if !seg.is_empty() && !self.indexes.contains_key(&bucket) {
                out.push(AuditViolation::MissingBucketIndex {
                    relation: "Rbin",
                    bucket,
                });
            }
        }
        if rdoc_indexed != self.rdoc.len() {
            out.push(AuditViolation::IndexedRowCount {
                relation: "Rdoc",
                indexed: rdoc_indexed,
                resident: self.rdoc.len(),
            });
        }
        if rbin_indexed != self.rbin.len() {
            out.push(AuditViolation::IndexedRowCount {
                relation: "Rbin",
                indexed: rbin_indexed,
                resident: self.rbin.len(),
            });
        }
        // The global per-string counters equal the per-bucket index sums
        // (and in particular hold no zero entries, which the computed side
        // never produces).
        if self.strval_rows != strval_indexed {
            out.push(AuditViolation::StrvalRowCount {
                tracked: self.strval_rows.values().sum(),
                indexed: strval_indexed.values().sum(),
            });
        }
        // The document store is a subset of the retention-timestamp map.
        for doc in self.doc_store.keys() {
            if !self.doc_timestamps.contains_key(doc) {
                out.push(AuditViolation::OrphanStoredDocument { doc: doc.raw() });
            }
        }
        // An unbucketed state collapses its join rows into one bucket.
        if !self.bucketed && self.indexes.len() > 1 {
            out.push(AuditViolation::UnbucketedStateSpread {
                buckets: self.indexes.len(),
            });
        }
        // The watermark bounds every retained timestamp.
        if let Some(&observed) = self.doc_timestamps.values().max() {
            if observed > newest_timestamp {
                out.push(AuditViolation::WatermarkRegression {
                    newest: newest_timestamp,
                    observed,
                });
            }
        }
    }

    /// Drop every retention-ledger bucket entirely before `cutoff_ts`,
    /// evicting the corresponding documents and timestamps. Returns the
    /// number of documents evicted. O(expired documents).
    pub fn evict_documents(&mut self, cutoff_ts: u64) -> usize {
        let cutoff_bucket = cutoff_ts / self.width();
        let mut evicted = 0;
        for (_, seg) in self.ledger.evict_below(cutoff_bucket) {
            for row in seg.iter() {
                debug_assert!(row[0].as_int().is_some(), "ledger rows were validated");
                let Some(doc) = row[0].as_int().and_then(|v| u64::try_from(v).ok()) else {
                    continue;
                };
                let doc = DocId(doc);
                self.doc_timestamps.remove(&doc);
                self.doc_store.remove(&doc);
                evicted += 1;
            }
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmqjp_relational::StringInterner;
    use mmqjp_xml::Timestamp;
    use std::sync::Arc;

    /// A minimal batch: one document with one Rdoc / Rbin / ledger row.
    fn batch_for(doc: &Document, strval: &str, interner: &Arc<StringInterner>) -> WitnessBatch {
        let mut b = WitnessBatch::new();
        b.doc_ids.push(doc.id());
        let id = Value::Int(doc.id().raw() as i64);
        b.rdoc_w
            .push_values(vec![
                id.clone(),
                Value::Int(1),
                Value::Sym(interner.intern(strval)),
            ])
            .unwrap();
        b.rbin_w
            .push_values(vec![
                id.clone(),
                Value::Sym(interner.intern("v")),
                Value::Sym(interner.intern("v")),
                Value::Int(0),
                Value::Int(1),
            ])
            .unwrap();
        b.rdoc_ts_w
            .push_values(vec![id, Value::Int(doc.timestamp().raw() as i64)])
            .unwrap();
        b
    }

    fn doc(id: u64, ts: u64) -> Document {
        mmqjp_xml::DocumentBuilder::new("item")
            .finish()
            .with_id(DocId(id))
            .with_timestamp(Timestamp(ts))
    }

    fn state(width: u64) -> (JoinState, Arc<StringInterner>) {
        let mut s = JoinState::new(true);
        s.ensure_width(Some(width)).unwrap();
        (s, Arc::new(StringInterner::new()))
    }

    #[test]
    fn absorb_and_slice() {
        let (mut s, interner) = state(10);
        for i in 1..=5u64 {
            let d = doc(i, i * 7);
            s.absorb(batch_for(&d, "shared", &interner), &[d], true)
                .unwrap();
        }
        assert_eq!(s.rdoc_len(), 5);
        assert_eq!(s.rbin_len(), 5);
        assert_eq!(s.docs_retained(), 5);
        assert_eq!(s.doc_timestamp(DocId(3)), Some(21));
        assert!(s.document(DocId(3)).is_some());
        let sym = interner.get("shared").unwrap();
        assert!(s.contains_strval(sym));
        assert!(!s.contains_strval(interner.intern("absent")));
        // The RL slice joins every document's Rdoc row with its Rbin row.
        let slice = s.rl_slice(sym).unwrap();
        assert_eq!(slice.len(), 5);
        // Timestamps 7..35 at width 10 span buckets 0..3.
        assert_eq!(s.num_buckets(), 4);
    }

    #[test]
    fn eviction_is_whole_bucket_and_keeps_survivors() {
        let (mut s, interner) = state(10);
        for i in 1..=6u64 {
            let d = doc(i, i * 10);
            s.absorb(batch_for(&d, &format!("val{i}"), &interner), &[d], true)
                .unwrap();
        }
        // Cutoff 35: buckets 1 and 2 (ts 10, 20) lie entirely below it and
        // expire; the ts-30 bucket spans up to 39 and survives, as do
        // 40/50/60 — rows only ever outlive their window by < one bucket.
        let ev = s.evict_join_state(35);
        assert_eq!(ev.buckets, 2);
        assert_eq!(ev.rows, 4); // 2 Rdoc + 2 Rbin rows
        let expired: HashSet<Symbol> = ["val1", "val2"]
            .iter()
            .map(|v| interner.get(v).unwrap())
            .collect();
        assert_eq!(ev.expired_strvals, expired);
        assert_eq!(s.rdoc_len(), 4);
        assert!(!s.contains_strval(interner.get("val1").unwrap()));
        assert!(s.contains_strval(interner.get("val3").unwrap()));
        // Surviving slices are still computable after the drop (stable
        // offsets — nothing shifted).
        assert_eq!(s.rl_slice(interner.get("val5").unwrap()).unwrap().len(), 1);
        // Document eviction follows the ledger independently.
        assert_eq!(s.evict_documents(35), 2);
        assert_eq!(s.docs_retained(), 4);
        assert!(s.document(DocId(1)).is_none());
        assert!(s.document(DocId(3)).is_some());
        // Nothing further expires at the same cutoff.
        let ev = s.evict_join_state(35);
        assert_eq!(ev.buckets, 0);
        assert_eq!(s.evict_documents(35), 0);
    }

    #[test]
    fn unbucketed_state_keeps_one_bucket() {
        let mut s = JoinState::new(false);
        s.ensure_width(Some(10)).unwrap();
        let interner = Arc::new(StringInterner::new());
        for i in 1..=4u64 {
            let d = doc(i, i * 100);
            s.absorb(batch_for(&d, "x", &interner), &[d], false)
                .unwrap();
        }
        assert_eq!(s.num_buckets(), 1);
        // Documents are still evicted through the (always bucketed) ledger.
        assert_eq!(s.evict_documents(250), 2);
        assert_eq!(s.docs_retained(), 2);
        // Join state is untouched: this configuration never drops it.
        assert_eq!(s.rdoc_len(), 4);
    }

    #[test]
    fn join_state_is_borrowed_for_evaluation() {
        // The old take/restore round trip is gone: plan execution borrows
        // the segmented relations in place (via ChunkedRows) and the state
        // keeps serving slices throughout.
        let (mut s, interner) = state(10);
        let d = doc(1, 5);
        s.absorb(batch_for(&d, "t", &interner), &[d], false)
            .unwrap();
        let rbin = mmqjp_relational::ChunkedRows::from_segmented(s.rbin());
        let rdoc = mmqjp_relational::ChunkedRows::from_segmented(s.rdoc());
        assert_eq!(rbin.len(), 1);
        assert_eq!(rdoc.len(), 1);
        assert_eq!(s.rbin_len(), 1);
        assert_eq!(s.rl_slice(interner.get("t").unwrap()).unwrap().len(), 1);
    }

    #[test]
    fn derive_width_scales_with_bound() {
        assert_eq!(JoinState::derive_width(1600), 100);
        assert_eq!(JoinState::derive_width(5), 1);
        // Without a bound the width stays provisional at the default.
        let mut s = JoinState::new(true);
        s.ensure_width(None).unwrap();
        assert_eq!(s.bucket_width(), Some(DEFAULT_BUCKET_WIDTH));
        // A real bound appearing later revises it.
        s.ensure_width(Some(JoinState::derive_width(160))).unwrap();
        assert_eq!(s.bucket_width(), Some(10));
        // A final width never changes again.
        s.ensure_width(Some(99)).unwrap();
        assert_eq!(s.bucket_width(), Some(10));
    }

    #[test]
    fn provisional_width_rebuckets_resident_state() {
        // Documents absorbed before any window is known land in the
        // provisional (coarse) buckets; when the first bound appears, rows
        // are re-partitioned so eviction granularity matches the windows.
        let mut s = JoinState::new(true);
        let interner = Arc::new(StringInterner::new());
        s.ensure_width(None).unwrap();
        for i in 1..=4u64 {
            let d = doc(i, i * 10);
            s.absorb(batch_for(&d, &format!("val{i}"), &interner), &[d], true)
                .unwrap();
        }
        // Everything sits in one coarse provisional bucket.
        assert_eq!(s.num_buckets(), 1);
        // A window of 160 time units registers: width becomes 10.
        s.ensure_width(Some(JoinState::derive_width(160))).unwrap();
        assert_eq!(s.bucket_width(), Some(10));
        assert_eq!(s.num_buckets(), 4);
        assert_eq!(s.rdoc_len(), 4);
        // Slices and eviction now work at the revised granularity: cutoff
        // 35 drops the ts-10 and ts-20 buckets (the ts-30 bucket spans up
        // to 39 and survives).
        assert_eq!(s.rl_slice(interner.get("val2").unwrap()).unwrap().len(), 1);
        let ev = s.evict_join_state(35);
        assert_eq!(ev.buckets, 2);
        assert!(!s.contains_strval(interner.get("val1").unwrap()));
        assert!(s.contains_strval(interner.get("val3").unwrap()));
        assert_eq!(s.evict_documents(35), 2);
        assert_eq!(s.docs_retained(), 2);
    }

    #[test]
    fn tighten_width_repartitions_resident_state() {
        let (mut s, interner) = state(625);
        for i in 1..=5u64 {
            let d = doc(i, i * 40);
            s.absorb(batch_for(&d, &format!("val{i}"), &interner), &[d], true)
                .unwrap();
        }
        // All rows share the single coarse bucket: a cutoff of 100 evicts
        // nothing.
        assert_eq!(s.num_buckets(), 1);
        assert_eq!(s.evict_join_state(100).buckets, 0);
        assert_eq!(s.evict_documents(100), 0);

        // The retention bound tightened (widest window departed): width 10.
        s.tighten_width(10).unwrap();
        assert_eq!(s.bucket_width(), Some(10));
        assert_eq!(s.num_buckets(), 5);
        assert_eq!(s.rdoc_len(), 5);
        // Slices still work and eviction now operates at the new granularity.
        assert_eq!(s.rl_slice(interner.get("val3").unwrap()).unwrap().len(), 1);
        let ev = s.evict_join_state(100);
        assert_eq!(ev.buckets, 2); // ts 40 and 80
        assert_eq!(s.evict_documents(100), 2);
        assert_eq!(s.docs_retained(), 3);
        // Widening (or equal) requests are no-ops.
        s.tighten_width(10_000).unwrap();
        assert_eq!(s.bucket_width(), Some(10));
    }

    #[test]
    fn tighten_width_places_orphan_rows_conservatively() {
        // A join-state row whose document already left the retention maps
        // must land in the *latest* bucket its old bucket could span.
        let (mut s, interner) = state(100);
        let d = doc(1, 30);
        s.absorb(batch_for(&d, "v", &interner), &[d], true).unwrap();
        // Forget the document (as retention-cap eviction would) but keep the
        // join rows: evict via the ledger only.
        assert_eq!(s.evict_documents(200), 1);
        assert_eq!(s.rdoc_len(), 1);
        s.tighten_width(10).unwrap();
        // The orphan row sits in the last bucket of old bucket 0 (ts 99 →
        // bucket 9), surviving any cutoff its real timestamp could survive.
        let ev = s.evict_join_state(31);
        assert_eq!(ev.rows, 0);
        let ev = s.evict_join_state(100);
        assert_eq!(ev.rows, 2);
    }

    #[test]
    fn audit_is_clean_and_detects_seeded_violations() {
        let (mut s, interner) = state(10);
        for i in 1..=4u64 {
            let d = doc(i, i * 7);
            s.absorb(batch_for(&d, "shared", &interner), &[d], true)
                .unwrap();
        }
        s.evict_join_state(15);
        let mut out = Vec::new();
        s.audit(28, &mut out);
        assert!(out.is_empty(), "healthy state reported: {out:?}");

        // A watermark behind a retained timestamp is a violation.
        let mut out = Vec::new();
        s.audit(20, &mut out);
        assert!(out.iter().any(|v| matches!(
            v,
            AuditViolation::WatermarkRegression {
                newest: 20,
                observed: 28
            }
        )));

        // Seed a string-value counter drift.
        let sym = interner.get("shared").unwrap();
        *s.strval_rows.get_mut(&sym).unwrap() += 1;
        let mut out = Vec::new();
        s.audit(28, &mut out);
        assert!(out
            .iter()
            .any(|v| matches!(v, AuditViolation::StrvalRowCount { .. })));
        *s.strval_rows.get_mut(&sym).unwrap() -= 1;

        // Seed an out-of-range index offset.
        let bucket = *s.indexes.keys().next().unwrap();
        s.indexes
            .get_mut(&bucket)
            .unwrap()
            .rdoc_by_strval
            .get_mut(&sym)
            .unwrap()
            .push(10_000);
        let mut out = Vec::new();
        s.audit(28, &mut out);
        assert!(out.iter().any(|v| matches!(
            v,
            AuditViolation::IndexOffsetOutOfRange {
                relation: "Rdoc",
                ..
            }
        )));

        // An orphan stored document (no retention timestamp) is caught.
        let (mut s2, interner2) = state(10);
        let d = doc(9, 50);
        s2.absorb(
            batch_for(&d, "x", &interner2),
            std::slice::from_ref(&d),
            true,
        )
        .unwrap();
        s2.doc_timestamps.remove(&DocId(9));
        let mut out = Vec::new();
        s2.audit(50, &mut out);
        assert!(out
            .iter()
            .any(|v| matches!(v, AuditViolation::OrphanStoredDocument { doc: 9 })));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "non-integer index key")]
    fn malformed_key_asserts_in_debug() {
        let row = [Value::Null, Value::Int(1)];
        let _ = key_int(&row[0], "Rdoc", "docid");
    }

    #[test]
    fn key_helpers_accept_well_formed_rows() {
        let interner = StringInterner::new();
        let row = [
            Value::Int(7),
            Value::Sym(interner.intern("s")),
            Value::Int(-3),
        ];
        assert_eq!(key_int(&row[0], "R", "a").unwrap(), 7);
        assert_eq!(
            key_sym(&row[1], "R", "b").unwrap(),
            interner.get("s").unwrap()
        );
        assert_eq!(key_doc_id(&row[0], "R", "a").unwrap(), DocId(7));
    }

    #[test]
    fn batch_restriction_follows_the_indexes() {
        let (mut s, interner) = state(10);
        for i in 1..=6u64 {
            let d = doc(i, i * 7);
            let strval = if i % 2 == 0 { "even" } else { "odd" };
            s.absorb(batch_for(&d, strval, &interner), &[d], false)
                .unwrap();
        }
        let even = interner.get("even").unwrap();
        let (rdoc, docids) = s.rdoc_for_strvals(&[even]).unwrap();
        assert_eq!(rdoc.len(), 3);
        assert_eq!(docids, HashSet::from([2, 4, 6]));
        // Every restricted row carries the requested string value.
        assert!(rdoc.iter().all(|r| r[2] == Value::Sym(even)));
        let rbin = s.rbin_for_docids(&docids).unwrap();
        assert_eq!(rbin.len(), 3);
        assert!(rbin
            .iter()
            .all(|r| matches!(r[0].as_int(), Some(d) if d % 2 == 0)));
        // An absent string value restricts to nothing.
        let (empty, no_docs) = s.rdoc_for_strvals(&[interner.intern("absent")]).unwrap();
        assert!(empty.is_empty());
        assert!(no_docs.is_empty());
        assert!(s.rbin_for_docids(&no_docs).unwrap().is_empty());
    }
}
