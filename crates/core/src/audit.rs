//! Engine invariant auditing.
//!
//! [`MmqjpEngine::audit`](crate::MmqjpEngine::audit) and
//! [`ShardedEngine::audit`](crate::ShardedEngine::audit) cross-check the
//! engine's redundant bookkeeping structures against each other and report
//! every inconsistency as a typed [`AuditViolation`]. The checks cover:
//!
//! - **Registry refcounts** — the Stage-1 pattern index's per-pattern
//!   refcounts, the per-`(pattern, edge)` request refcounts and the
//!   canonical-variable refcounts must all equal what a recount over the
//!   live queries' registrations produces, and the deterministic
//!   requested-edge lists must mirror the refcount maps.
//! - **Catalog discipline** — tombstoned template slots are never referenced
//!   by a live registration, every template's `RT` relation holds exactly
//!   one tuple per live member orientation, and the `rid` resolution map is
//!   in one-to-one correspondence with the live orientations.
//! - **Window multiset** — the registered window multiset equals a recount
//!   over the live join queries (so retention bounds always tighten
//!   correctly on churn).
//! - **Join state** — every per-bucket secondary-index entry addresses a
//!   resident row whose key columns match the index key, the per-string
//!   row counts equal the per-bucket index sums, retained documents are a
//!   subset of the retention-timestamp map, and the watermark never lags a
//!   retained timestamp.
//! - **Stats identities** — documents are never counted more than the
//!   document sequence assigned, and (sharded) the per-shard live-query
//!   counts sum to the coordinator's total while hybrid shards never count
//!   documents themselves.
//!
//! An audit never mutates the engine; a healthy engine returns an empty
//! vector. Any violation indicates an engine bug (not a user error) — the
//! correctness suites run the auditor after every scenario.

use std::fmt;

/// One violated engine invariant, reported by an audit pass.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AuditViolation {
    /// The registry's live-query counter disagrees with a recount of the
    /// non-tombstoned query slots.
    LiveQueryCount {
        /// The maintained counter.
        tracked: usize,
        /// The recount.
        counted: usize,
    },
    /// The registry's live-template counter disagrees with a recount of the
    /// non-tombstoned template slots.
    LiveTemplateCount {
        /// The maintained counter.
        tracked: usize,
        /// The recount.
        counted: usize,
    },
    /// The template catalog's population differs from the live templates.
    CatalogSize {
        /// Entries in the isomorphism catalog.
        catalog: usize,
        /// Live (non-tombstoned) template runtimes.
        live_templates: usize,
    },
    /// A live registration points at a tombstoned (retired) template slot.
    RetiredTemplateReferenced {
        /// The referencing query id.
        query: u64,
        /// The retired template slot.
        template: usize,
    },
    /// A template's `RT` relation does not hold exactly one tuple per live
    /// member orientation.
    TemplateMembership {
        /// The template slot.
        template: usize,
        /// Tuples in the template's `RT` relation.
        rt_rows: usize,
        /// Live registrations referencing the template.
        registrations: usize,
    },
    /// A live orientation's `rid` has no tuple in its template's `RT`
    /// relation.
    MissingRtTuple {
        /// The template slot.
        template: usize,
        /// The registration id missing from `RT`.
        rid: i64,
    },
    /// The `rid` resolution map disagrees with the live orientations.
    RidMap {
        /// The offending registration id.
        rid: i64,
        /// What is wrong with its mapping.
        reason: &'static str,
    },
    /// A pattern's index refcount differs from the number of live
    /// registrations that registered it.
    PatternRefcount {
        /// The pattern id.
        pattern: u32,
        /// The pattern index's refcount.
        index_refs: usize,
        /// Live registrations of the pattern.
        expected: usize,
    },
    /// A `(pattern, edge)` request refcount differs from the number of live
    /// registrations requesting that edge.
    EdgeRefcount {
        /// The pattern id.
        pattern: u32,
        /// The edge, by its endpoint pattern nodes.
        edge: (u32, u32),
        /// The maintained refcount (`0` when the entry is missing).
        tracked: usize,
        /// Live registrations requesting the edge.
        expected: usize,
    },
    /// A pattern's deterministic requested-edge list does not mirror its
    /// refcount map (duplicate, missing or spurious entries).
    RequestedEdgeList {
        /// The pattern id.
        pattern: u32,
        /// What is wrong with the list.
        reason: &'static str,
    },
    /// A canonical variable's refcount differs from the number of distinct
    /// live patterns binding it.
    VariableRefcount {
        /// The variable name.
        variable: String,
        /// The maintained refcount (`0` when the entry is missing).
        tracked: usize,
        /// Distinct live patterns binding the variable.
        expected: usize,
    },
    /// The registered window multiset differs from a recount over the live
    /// join queries.
    WindowMultiset {
        /// What is wrong with the multiset.
        reason: &'static str,
    },
    /// A secondary-index entry addresses a row beyond its bucket segment.
    IndexOffsetOutOfRange {
        /// The indexed relation.
        relation: &'static str,
        /// The bucket holding the entry.
        bucket: u64,
        /// The out-of-range in-bucket offset.
        offset: u32,
        /// Rows resident in the bucket's segment.
        rows: usize,
    },
    /// A secondary-index entry addresses a row whose key columns do not
    /// match the index key it is filed under.
    IndexKeyMismatch {
        /// The indexed relation.
        relation: &'static str,
        /// The bucket holding the entry.
        bucket: u64,
        /// The in-bucket offset of the mismatched row.
        offset: u32,
    },
    /// The total number of indexed rows differs from the resident rows.
    IndexedRowCount {
        /// The indexed relation.
        relation: &'static str,
        /// Rows reachable through the per-bucket indexes.
        indexed: usize,
        /// Rows resident in the segmented relation.
        resident: usize,
    },
    /// A segment bucket has no secondary index (or an index addresses a
    /// bucket with no segment at all).
    MissingBucketIndex {
        /// The indexed relation.
        relation: &'static str,
        /// The uncovered bucket.
        bucket: u64,
    },
    /// The global per-string-value row count differs from the per-bucket
    /// index sums.
    StrvalRowCount {
        /// Sum of the maintained per-string counters.
        tracked: usize,
        /// Rows filed under string values across all bucket indexes.
        indexed: usize,
    },
    /// A stored document has no retention timestamp (the store must be a
    /// subset of the timestamp map).
    OrphanStoredDocument {
        /// The stored document id.
        doc: u64,
    },
    /// An unbucketed join state spread across more than one bucket.
    UnbucketedStateSpread {
        /// Resident buckets.
        buckets: usize,
    },
    /// The engine's high-water timestamp lags a retained document timestamp
    /// (the watermark must be monotone over everything absorbed).
    WatermarkRegression {
        /// The engine's newest-timestamp watermark.
        newest: u64,
        /// The retained timestamp above it.
        observed: u64,
    },
    /// More documents were counted as processed than document sequence
    /// numbers were assigned.
    DocumentAccounting {
        /// Documents counted as processed.
        documents_processed: usize,
        /// Document sequence numbers assigned.
        doc_seq: u64,
    },
    /// A violation reported by one shard of a [`ShardedEngine`]
    /// (shard-local audit, wrapped with the shard index).
    ///
    /// [`ShardedEngine`]: crate::ShardedEngine
    Shard {
        /// The reporting shard.
        shard: usize,
        /// The shard-local violation.
        violation: Box<AuditViolation>,
    },
    /// The coordinator's live-query total differs from the sum of its
    /// per-shard counts (or from the shards' own registries).
    QueriesPerShardSum {
        /// The coordinator's total.
        tracked: usize,
        /// The per-shard sum.
        summed: usize,
    },
    /// A hybrid-topology shard counted documents itself (only the front
    /// stage counts documents in hybrid mode).
    HybridShardCountsDocuments {
        /// The offending shard.
        shard: usize,
        /// Documents it counted.
        documents: usize,
    },
    /// The front stage's mirrored subscription state (master index, edge
    /// refcounts, requested-edge union or router table) disagrees with a
    /// recount over the live query footprints.
    FrontSubscription {
        /// The pattern id involved (`u32::MAX` for pattern-independent
        /// checks).
        pattern: u32,
        /// What is inconsistent.
        reason: &'static str,
    },
    /// The front stage's single-block subscription list disagrees with the
    /// live footprints.
    FrontSinglesCount {
        /// Entries in the front's single-block list.
        listed: usize,
        /// Live footprints with a single-block subscription.
        expected: usize,
    },
    /// The coordinator's retained-query ledger (kept for crash recovery)
    /// disagrees with the live-query count — a dead shard could not be
    /// rebuilt faithfully.
    RetainedQueryCount {
        /// Queries in the retained ledger.
        retained: usize,
        /// Live queries tracked by the coordinator.
        live: usize,
    },
    /// The replay log retains a batch that has aged beyond the retention
    /// bound (the log must stay bounded by the registered windows and cap).
    ReplayLogOverRetention {
        /// Newest timestamp of the oldest retained batch.
        oldest: u64,
        /// The eviction cutoff it should have been retired at.
        cutoff: u64,
    },
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditViolation::LiveQueryCount { tracked, counted } => write!(
                f,
                "live-query counter {tracked} != {counted} non-tombstoned query slots"
            ),
            AuditViolation::LiveTemplateCount { tracked, counted } => write!(
                f,
                "live-template counter {tracked} != {counted} non-tombstoned template slots"
            ),
            AuditViolation::CatalogSize {
                catalog,
                live_templates,
            } => write!(
                f,
                "template catalog holds {catalog} entries for {live_templates} live templates"
            ),
            AuditViolation::RetiredTemplateReferenced { query, template } => write!(
                f,
                "query {query} references retired template slot {template}"
            ),
            AuditViolation::TemplateMembership {
                template,
                rt_rows,
                registrations,
            } => write!(
                f,
                "template {template} holds {rt_rows} RT tuples for {registrations} live orientations"
            ),
            AuditViolation::MissingRtTuple { template, rid } => {
                write!(f, "template {template} has no RT tuple for rid {rid}")
            }
            AuditViolation::RidMap { rid, reason } => {
                write!(f, "rid map entry {rid}: {reason}")
            }
            AuditViolation::PatternRefcount {
                pattern,
                index_refs,
                expected,
            } => write!(
                f,
                "pattern {pattern} refcount {index_refs} != {expected} live registrations"
            ),
            AuditViolation::EdgeRefcount {
                pattern,
                edge,
                tracked,
                expected,
            } => write!(
                f,
                "pattern {pattern} edge ({}, {}) refcount {tracked} != {expected} live requests",
                edge.0, edge.1
            ),
            AuditViolation::RequestedEdgeList { pattern, reason } => {
                write!(f, "pattern {pattern} requested-edge list: {reason}")
            }
            AuditViolation::VariableRefcount {
                variable,
                tracked,
                expected,
            } => write!(
                f,
                "variable {variable:?} refcount {tracked} != {expected} live patterns binding it"
            ),
            AuditViolation::WindowMultiset { reason } => {
                write!(f, "window multiset: {reason}")
            }
            AuditViolation::IndexOffsetOutOfRange {
                relation,
                bucket,
                offset,
                rows,
            } => write!(
                f,
                "{relation} bucket {bucket} index offset {offset} out of range for {rows} rows"
            ),
            AuditViolation::IndexKeyMismatch {
                relation,
                bucket,
                offset,
            } => write!(
                f,
                "{relation} bucket {bucket} row {offset} does not match its index key"
            ),
            AuditViolation::IndexedRowCount {
                relation,
                indexed,
                resident,
            } => write!(
                f,
                "{relation} indexes address {indexed} rows but {resident} are resident"
            ),
            AuditViolation::MissingBucketIndex { relation, bucket } => {
                write!(f, "{relation} bucket {bucket} has no matching index segment")
            }
            AuditViolation::StrvalRowCount { tracked, indexed } => write!(
                f,
                "string-value row counters track {tracked} rows but indexes hold {indexed}"
            ),
            AuditViolation::OrphanStoredDocument { doc } => {
                write!(f, "stored document {doc} has no retention timestamp")
            }
            AuditViolation::UnbucketedStateSpread { buckets } => write!(
                f,
                "unbucketed join state spread across {buckets} buckets"
            ),
            AuditViolation::WatermarkRegression { newest, observed } => write!(
                f,
                "watermark {newest} lags retained timestamp {observed}"
            ),
            AuditViolation::DocumentAccounting {
                documents_processed,
                doc_seq,
            } => write!(
                f,
                "{documents_processed} documents counted against {doc_seq} assigned sequence numbers"
            ),
            AuditViolation::Shard { shard, violation } => {
                write!(f, "shard {shard}: {violation}")
            }
            AuditViolation::QueriesPerShardSum { tracked, summed } => write!(
                f,
                "coordinator tracks {tracked} live queries but shards hold {summed}"
            ),
            AuditViolation::HybridShardCountsDocuments { shard, documents } => write!(
                f,
                "hybrid shard {shard} counted {documents} documents itself"
            ),
            AuditViolation::FrontSubscription { pattern, reason } => {
                write!(f, "front subscription state (pattern {pattern}): {reason}")
            }
            AuditViolation::FrontSinglesCount { listed, expected } => write!(
                f,
                "front lists {listed} single-block subscriptions for {expected} live footprints"
            ),
            AuditViolation::RetainedQueryCount { retained, live } => write!(
                f,
                "recovery ledger retains {retained} queries for {live} live queries"
            ),
            AuditViolation::ReplayLogOverRetention { oldest, cutoff } => write!(
                f,
                "replay log retains a batch (newest ts {oldest}) beyond eviction cutoff {cutoff}"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violations_render_their_evidence() {
        let v = AuditViolation::PatternRefcount {
            pattern: 3,
            index_refs: 2,
            expected: 1,
        };
        assert!(v.to_string().contains("pattern 3"));
        assert!(v.to_string().contains("refcount 2"));
        let v = AuditViolation::Shard {
            shard: 1,
            violation: Box::new(AuditViolation::StrvalRowCount {
                tracked: 5,
                indexed: 4,
            }),
        };
        assert!(v.to_string().starts_with("shard 1:"));
        assert!(v.to_string().contains('5'));
        let v = AuditViolation::EdgeRefcount {
            pattern: 0,
            edge: (1, 2),
            tracked: 0,
            expected: 1,
        };
        assert!(v.to_string().contains("(1, 2)"));
        let v = AuditViolation::WatermarkRegression {
            newest: 10,
            observed: 11,
        };
        assert!(v.to_string().contains("lags"));
    }
}
